package cbar

import (
	"fmt"
	"strconv"
	"strings"

	"cbar/internal/routing"
	"cbar/internal/sim"
	"cbar/internal/topology"
)

// Algorithm identifies one of the seven routing mechanisms of the
// paper's evaluation.
type Algorithm int

// The mechanisms, in the paper's presentation order.
const (
	// MIN is oblivious hierarchical minimal routing.
	MIN Algorithm = iota
	// VAL is Valiant routing through a random intermediate node.
	VAL
	// PB is PiggyBacking, the source-routed congestion-based adaptive
	// baseline (Jiang et al., ISCA 2009).
	PB
	// OLM is Opportunistic Local Misrouting, the in-transit
	// congestion-based adaptive baseline (García et al., ICPP 2013).
	OLM
	// Base is the paper's contention-counter mechanism (§III-B).
	Base
	// Hybrid combines contention counters with credit occupancy
	// (§III-C).
	Hybrid
	// ECtN adds Explicit Contention Notification: group-wide combined
	// contention counters (§III-D).
	ECtN
	// BaseP is the statistical-trigger extension of §VI-C (described
	// but not evaluated by the paper): the misrouting probability grows
	// with the counter value, so the minimal path keeps a traffic
	// share.
	BaseP
)

// Algorithms returns all mechanisms in presentation order: the paper's
// evaluated seven followed by the §VI-C extension.
func Algorithms() []Algorithm {
	return []Algorithm{MIN, VAL, PB, OLM, Base, Hybrid, ECtN, BaseP}
}

// EvaluatedAlgorithms returns only the seven mechanisms of the paper's
// evaluation section.
func EvaluatedAlgorithms() []Algorithm {
	return []Algorithm{MIN, VAL, PB, OLM, Base, Hybrid, ECtN}
}

func (a Algorithm) internal() (routing.Algo, error) {
	switch a {
	case MIN:
		return routing.Min, nil
	case VAL:
		return routing.Valiant, nil
	case PB:
		return routing.PB, nil
	case OLM:
		return routing.OLM, nil
	case Base:
		return routing.Base, nil
	case Hybrid:
		return routing.Hybrid, nil
	case ECtN:
		return routing.ECtN, nil
	case BaseP:
		return routing.BaseProb, nil
	}
	return 0, fmt.Errorf("cbar: unknown algorithm %d", int(a))
}

// String returns the mechanism's canonical name ("MIN", "PB", "Base",
// ...), as ParseAlgorithm accepts and result CSVs print.
func (a Algorithm) String() string {
	in, err := a.internal()
	if err != nil {
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
	return in.String()
}

// ParseAlgorithm resolves a case-insensitive mechanism name
// ("min", "val", "pb", "olm", "base", "hybrid", "ectn").
func ParseAlgorithm(s string) (Algorithm, error) {
	in, err := routing.Parse(s)
	if err != nil {
		return 0, err
	}
	for _, a := range Algorithms() {
		if got, _ := a.internal(); got == in {
			return a, nil
		}
	}
	return 0, fmt.Errorf("cbar: unmapped algorithm %q", s)
}

// IsContentionBased reports whether the mechanism is one of the paper's
// contention-counter mechanisms.
func (a Algorithm) IsContentionBased() bool {
	in, err := a.internal()
	return err == nil && in.IsContentionBased()
}

// Scale selects a canned network size. The simulation model is identical
// at every scale; thresholds are rescaled per the paper's §VI-A
// analysis.
type Scale int

// Canned scales.
const (
	// Tiny is p=4,a=4,h=2: 9 groups, 36 routers, 144 nodes. For tests
	// and interactive exploration.
	Tiny Scale = iota
	// Small is p=4,a=8,h=4: 33 groups, 264 routers, 1056 nodes, with
	// the paper's balanced proportions (a=2h, p=h). The default for
	// figure regeneration on a laptop.
	Small
	// Paper is the exact Table I system: p=8,a=16,h=8, 129 groups,
	// 2064 routers with 31 ports, 16512 nodes.
	Paper
)

func (s Scale) internal() sim.Scale {
	switch s {
	case Small:
		return sim.Small
	case Paper:
		return sim.Paper
	default:
		return sim.Tiny
	}
}

// String returns the scale's canonical name ("tiny", "small",
// "paper"), as ParseScale accepts.
func (s Scale) String() string { return s.internal().String() }

// ParseScale resolves "tiny", "small" or "paper".
func ParseScale(v string) (Scale, error) {
	in, err := sim.ParseScale(v)
	if err != nil {
		return 0, err
	}
	switch in {
	case sim.Small:
		return Small, nil
	case sim.Paper:
		return Paper, nil
	default:
		return Tiny, nil
	}
}

// Config describes a simulation: topology, mechanism and every Table I
// micro-architecture and policy parameter. Zero-valued fields keep their
// Table I (or §VI-A-scaled) defaults; NewConfig fills everything in.
type Config struct {
	// Topology: nodes per router, routers per group, global links per
	// router. The network is the canonical maximum size, a*h+1 groups.
	P, A, H int

	// Algorithm is the routing mechanism.
	Algorithm Algorithm

	// Workers is the number of shard workers each simulated cycle fans
	// out over (the network is partitioned into contiguous blocks of
	// whole groups). Results are cycle-for-cycle identical at every
	// worker count. 0 (the default) lets the sweep entry points split
	// GOMAXPROCS between grid parallelism and intra-run sharding
	// automatically: wide load×seed grids keep runs sequential, narrow
	// grids (the common paper-scale case) shard each run across the
	// idle cores. 1 forces sequential stepping.
	Workers int

	// Congestion configures the optional congestion-management layer
	// (ECN-style marking, source notifications, AIMD injection
	// throttling, NIC shedding). The zero value leaves it off and
	// reproduces pre-congestion results bit-identically.
	Congestion Congestion

	// Faults configures the optional fault-injection plan (scheduled
	// link/router failures and repairs, random link-failure expansion,
	// source retransmission). The zero value schedules nothing and
	// reproduces pre-fault results bit-identically.
	Faults Faults

	// Micro-architecture (Table I defaults via NewConfig).
	PacketSize      int // phits per packet
	VCsInjection    int // virtual channels on the injection channel
	VCsLocal        int // VCs on local channels (VAL and PB are raised to 4 automatically)
	VCsGlobal       int // VCs on global channels
	BufInjection    int // injection buffer, phits per VC
	BufLocal        int // local-channel input buffer, phits per VC
	BufGlobal       int // global-channel input buffer, phits per VC
	BufOut          int // output buffer, phits per port
	LatencyLocal    int // local-link latency, cycles
	LatencyGlobal   int // global-link latency, cycles
	PipelineLatency int // router pipeline latency, cycles
	Speedup         int // internal router speedup (allocation passes per cycle)
	NICQueuePackets int // NIC source-queue capacity, packets

	// Policy thresholds (§VI-A-scaled defaults via NewConfig).
	BaseTh       int   // Base contention-counter misroute threshold
	HybridTh     int   // Hybrid contention threshold (counters consulted past it)
	CombinedTh   int   // ECtN combined local+remote counter threshold
	OLMRelPct    int   // OLM relative credit comparison margin, percent
	HybridRelPct int   // Hybrid relative credit comparison margin, percent
	PBSatPackets int   // PB saturation-flag queue threshold, packets
	ECtNPeriod   int64 // ECtN group combine/broadcast period, cycles
}

// NewConfig returns the fully populated Table I configuration for the
// scale and mechanism.
func NewConfig(s Scale, a Algorithm) Config {
	p := s.internal().Params()
	return NewConfigFor(p.P, p.A, p.H, a)
}

// NewConfigFor is NewConfig for an arbitrary topology (p nodes/router,
// a routers/group, h global links/router).
func NewConfigFor(p, a, h int, alg Algorithm) Config {
	tp := topology.Params{P: p, A: a, H: h}
	rc := sim.NewConfig(tp, routing.Min) // algorithm applied at build
	return Config{
		P: p, A: a, H: h,
		Algorithm:       alg,
		PacketSize:      rc.Router.PacketSize,
		VCsInjection:    rc.Router.VCsInjection,
		VCsLocal:        rc.Router.VCsLocal,
		VCsGlobal:       rc.Router.VCsGlobal,
		BufInjection:    rc.Router.BufInjection,
		BufLocal:        rc.Router.BufLocal,
		BufGlobal:       rc.Router.BufGlobal,
		BufOut:          rc.Router.BufOut,
		LatencyLocal:    rc.Router.LatencyLocal,
		LatencyGlobal:   rc.Router.LatencyGlobal,
		PipelineLatency: rc.Router.PipelineLatency,
		Speedup:         rc.Router.Speedup,
		NICQueuePackets: rc.Router.NICQueuePackets,
		BaseTh:          int(rc.Opts.BaseTh),
		HybridTh:        int(rc.Opts.HybridTh),
		CombinedTh:      int(rc.Opts.CombinedTh),
		OLMRelPct:       int(rc.Opts.OLMRelPct),
		HybridRelPct:    int(rc.Opts.HybridRelPct),
		PBSatPackets:    int(rc.Opts.PBSatPackets),
		ECtNPeriod:      rc.Opts.ECtNPeriod,
	}
}

// internal converts the public config to the simulation config,
// validating the algorithm.
func (c Config) internal() (sim.Config, error) {
	alg, err := c.Algorithm.internal()
	if err != nil {
		return sim.Config{}, err
	}
	tp := topology.Params{P: c.P, A: c.A, H: c.H}
	sc := sim.NewConfig(tp, alg)
	// Apply every explicit field; NewConfig pre-filled the struct, so
	// zero values here mean the caller built Config by hand — fall
	// back to defaults for those.
	setIf := func(dst *int, v int) {
		if v != 0 {
			*dst = v
		}
	}
	setIf(&sc.Router.PacketSize, c.PacketSize)
	setIf(&sc.Router.VCsInjection, c.VCsInjection)
	setIf(&sc.Router.VCsLocal, c.VCsLocal)
	setIf(&sc.Router.VCsGlobal, c.VCsGlobal)
	setIf(&sc.Router.BufInjection, c.BufInjection)
	setIf(&sc.Router.BufLocal, c.BufLocal)
	setIf(&sc.Router.BufGlobal, c.BufGlobal)
	setIf(&sc.Router.BufOut, c.BufOut)
	setIf(&sc.Router.LatencyLocal, c.LatencyLocal)
	setIf(&sc.Router.LatencyGlobal, c.LatencyGlobal)
	setIf(&sc.Router.PipelineLatency, c.PipelineLatency)
	setIf(&sc.Router.Speedup, c.Speedup)
	setIf(&sc.Router.NICQueuePackets, c.NICQueuePackets)
	sc.Router.Workers = c.Workers
	sc.Router.Congestion = c.Congestion.internal()
	sc.Router.Faults = c.Faults.internal()
	set32 := func(dst *int32, v int) {
		if v != 0 {
			*dst = int32(v)
		}
	}
	set32(&sc.Opts.BaseTh, c.BaseTh)
	set32(&sc.Opts.HybridTh, c.HybridTh)
	set32(&sc.Opts.CombinedTh, c.CombinedTh)
	set32(&sc.Opts.OLMRelPct, c.OLMRelPct)
	set32(&sc.Opts.HybridRelPct, c.HybridRelPct)
	set32(&sc.Opts.PBSatPackets, c.PBSatPackets)
	if c.ECtNPeriod != 0 {
		sc.Opts.ECtNPeriod = c.ECtNPeriod
	}
	return sc, nil
}

// Nodes returns the number of compute nodes of the configured topology.
func (c Config) Nodes() int { return (c.A*c.H + 1) * c.A * c.P }

// Routers returns the number of routers of the configured topology.
func (c Config) Routers() int { return (c.A*c.H + 1) * c.A }

// Groups returns the number of groups of the configured topology.
func (c Config) Groups() int { return c.A*c.H + 1 }

// Traffic is a declarative workload specification.
type Traffic struct {
	inner sim.Workload
}

// Uniform is the UN pattern: every packet targets a uniformly random
// node other than its source.
func Uniform() Traffic { return Traffic{sim.UN()} }

// Adversarial is ADV+offset: every node sends to a random node in the
// group `offset` positions away (§IV-A). ADV+1 saturates the minimal
// global link; ADV+h additionally saturates source-group local links.
func Adversarial(offset int) Traffic { return Traffic{sim.ADV(offset)} }

// Mixed blends uniformFrac uniform traffic with ADV+offset for the rest
// (the Figure 6 workload).
func Mixed(uniformFrac float64, offset int) Traffic {
	return Traffic{sim.MixUN(uniformFrac, offset)}
}

// Hotspot aims frac of the traffic at `hot` hot nodes (spread evenly
// over the node id space) and the rest uniformly — the classic
// over-subscribed-endpoint workload of the congestion-management
// literature.
func Hotspot(frac float64, hot int) Traffic {
	return Traffic{sim.HotspotUN(frac, hot)}
}

// ShiftPermutation is the fixed node permutation dest = (src+k) mod N:
// every node has exactly one destination, with no statistical smoothing
// across flows. k must not be a multiple of the node count.
func ShiftPermutation(k int) Traffic { return Traffic{sim.ShiftPerm(k)} }

// ComplementPermutation is the fixed permutation dest = N-1-src (the
// arbitrary-size analogue of bit-complement): every node pairs with its
// mirror at the far end of the id space.
func ComplementPermutation() Traffic { return Traffic{sim.ComplementPerm()} }

// Tornado is the group-tornado permutation: every node sends to the node
// at its own in-group position, floor(Groups/2) groups away — ADV-like
// pressure on one global link per group, but as a deterministic
// permutation.
func Tornado() Traffic { return Traffic{sim.TornadoPerm()} }

// WithBurst returns the traffic with a bursty on-off (Markov-modulated)
// arrival process instead of steady Bernoulli injection: geometrically
// distributed ON phases with mean onMean cycles alternate with silent
// OFF phases with mean offMean cycles. With peak == 0 the ON-phase rate
// is the offered load divided by the duty cycle; with peak > 0 the
// ON-phase load is fixed at peak phits/(node·cycle) and the OFF mean
// adapts so the aggregate still matches the offered load.
func (t Traffic) WithBurst(onMean, offMean, peak float64) Traffic {
	return Traffic{t.inner.WithBurst(onMean, offMean, peak)}
}

// WithSkew returns the traffic with heterogeneous per-node loads: frac
// of the nodes (evenly spread over the id space) generate share of the
// aggregate traffic, the rest generating the remainder.
func (t Traffic) WithSkew(frac, share float64) Traffic {
	return Traffic{t.inner.WithSkew(frac, share)}
}

// Name returns the paper's name for the workload (UN, ADV+1, ...),
// suffixed with the arrival process when not plain Bernoulli.
func (t Traffic) Name() string { return t.inner.Name() }

// ParseTraffic resolves a workload specification string:
//
//	"un"                       uniform random
//	"adv+3", "adv-1", "adv3"   adversarial with the given group offset
//	"mix:0.4,1"                40% uniform, 60% ADV+1
//	"hotspot:0.2,8"            20% of traffic at 8 hot nodes, rest uniform
//	"perm:shift+K"             fixed shift permutation (src+K mod N)
//	"perm:complement"          fixed complement permutation (N-1-src)
//	"tornado"                  group-tornado permutation
//	"burst:50,200"             uniform destinations, on-off bursty arrivals
//	                           (mean ON 50 cycles, mean OFF 200)
//	"burst:50,200,0.8"         as above with the ON-phase load fixed at
//	                           0.8 phits/(node·cycle)
//
// Any base pattern may carry arrival-process suffixes:
//
//	"adv+1+burst:50,200"       bursty adversarial traffic
//	"un+skew:0.1,0.5"          10% of the nodes generate 50% of the load
func ParseTraffic(s string) (Traffic, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	// Split off "+burst:..." / "+skew:..." arrival-process suffixes.
	base, mods, err := splitTrafficMods(ls)
	if err != nil {
		return Traffic{}, err
	}
	t, err := parseTrafficPattern(base, s)
	if err != nil {
		return Traffic{}, err
	}
	for _, m := range mods {
		t, err = applyTrafficMod(t, m, s)
		if err != nil {
			return Traffic{}, err
		}
	}
	return t, nil
}

// splitTrafficMods splits "base+burst:...+skew:..." into the base
// pattern spec and its arrival-process modifiers. Only the known
// modifier names split, so patterns like "adv+1" pass through intact.
func splitTrafficMods(ls string) (base string, mods []string, err error) {
	base = ls
	for {
		i := lastTrafficMod(base)
		if i < 0 {
			break
		}
		mods = append([]string{base[i+1:]}, mods...)
		base = base[:i]
	}
	if base == "" {
		return "", nil, fmt.Errorf("cbar: traffic spec %q has modifiers but no base pattern", ls)
	}
	return base, mods, nil
}

// lastTrafficMod returns the index of the '+' starting the rightmost
// arrival-process modifier, or -1.
func lastTrafficMod(s string) int {
	best := -1
	for _, name := range []string{"+burst:", "+skew:"} {
		if i := strings.LastIndex(s, name); i > best {
			best = i
		}
	}
	return best
}

func parseTrafficPattern(ls, orig string) (Traffic, error) {
	switch {
	case ls == "un" || ls == "uniform":
		return Uniform(), nil
	case ls == "tornado":
		return Tornado(), nil
	case ls == "perm:complement" || ls == "perm:comp":
		return ComplementPermutation(), nil
	case strings.HasPrefix(ls, "perm:shift"):
		rest := strings.TrimPrefix(ls, "perm:shift")
		rest = strings.TrimPrefix(rest, "+")
		k, err := strconv.Atoi(rest)
		if err != nil {
			return Traffic{}, fmt.Errorf("cbar: bad shift offset in %q: %v", orig, err)
		}
		return ShiftPermutation(k), nil
	case strings.HasPrefix(ls, "hotspot:"):
		frac, hot, err := parseFracInt(strings.TrimPrefix(ls, "hotspot:"))
		if err != nil {
			return Traffic{}, fmt.Errorf("cbar: hotspot traffic must be hotspot:FRAC,NODES, got %q: %v", orig, err)
		}
		return Hotspot(frac, hot), nil
	case strings.HasPrefix(ls, "burst:"):
		// A bare burst spec means uniform destinations with bursty
		// arrivals.
		return applyTrafficMod(Uniform(), ls, orig)
	case strings.HasPrefix(ls, "adv"):
		rest := strings.TrimPrefix(ls, "adv")
		rest = strings.TrimPrefix(rest, "+")
		off, err := strconv.Atoi(rest)
		if err != nil {
			return Traffic{}, fmt.Errorf("cbar: bad adversarial offset in %q: %v", orig, err)
		}
		return Adversarial(off), nil
	case strings.HasPrefix(ls, "mix:"):
		frac, off, err := parseFracInt(strings.TrimPrefix(ls, "mix:"))
		if err != nil {
			return Traffic{}, fmt.Errorf("cbar: mix traffic must be mix:FRAC,OFFSET, got %q: %v", orig, err)
		}
		return Mixed(frac, off), nil
	}
	return Traffic{}, fmt.Errorf("cbar: unknown traffic %q (un | adv+N | mix:F,N | hotspot:F,H | perm:shift+K | perm:complement | tornado | burst:ON,OFF[,PEAK] | +burst/+skew suffixes)", orig)
}

// applyTrafficMod applies one "burst:..." or "skew:..." modifier.
func applyTrafficMod(t Traffic, mod, orig string) (Traffic, error) {
	switch {
	case strings.HasPrefix(mod, "burst:"):
		parts := strings.Split(strings.TrimPrefix(mod, "burst:"), ",")
		if len(parts) != 2 && len(parts) != 3 {
			return Traffic{}, fmt.Errorf("cbar: burst must be burst:ON,OFF[,PEAK], got %q", orig)
		}
		var vals [3]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return Traffic{}, fmt.Errorf("cbar: bad burst parameter %q: %v", p, err)
			}
			vals[i] = v
		}
		return t.WithBurst(vals[0], vals[1], vals[2]), nil
	case strings.HasPrefix(mod, "skew:"):
		frac, share, err := parseFracFrac(strings.TrimPrefix(mod, "skew:"))
		if err != nil {
			return Traffic{}, fmt.Errorf("cbar: skew must be skew:FRAC,SHARE, got %q: %v", orig, err)
		}
		return t.WithSkew(frac, share), nil
	}
	return Traffic{}, fmt.Errorf("cbar: unknown traffic modifier %q in %q", mod, orig)
}

// parseFracInt parses "FLOAT,INT".
func parseFracInt(s string) (float64, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want two comma-separated values")
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return 0, 0, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	return f, n, nil
}

// parseFracFrac parses "FLOAT,FLOAT".
func parseFracFrac(s string) (float64, float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want two comma-separated values")
	}
	a, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}
