// Transient adaptation: trace how each adaptive mechanism reacts when
// the traffic pattern flips from uniform to adversarial — the paper's
// Figure 7 experiment, which is where contention counters shine: they
// detect the new hotspot from demand, not from queues filling up.
//
// Run with:
//
//	go run ./examples/transient [-load 0.35]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cbar"
)

func main() {
	load := flag.Float64("load", 0.35, "offered load in phits/(node*cycle)")
	flag.Parse()

	algos := []cbar.Algorithm{cbar.OLM, cbar.Base, cbar.ECtN}
	// Zero-valued options take the scale's validated transient budget
	// (for Tiny: 1200-cycle warmup, a 100/600-cycle trace window around
	// the switch, 20-cycle buckets, 3 seeds).
	opt := cbar.TransientOptions{}

	fmt.Printf("traffic switches UN -> ADV+1 at t=0, load %.2f\n", *load)
	fmt.Printf("%% of delivered packets that were globally misrouted:\n\n")

	traces := map[cbar.Algorithm]cbar.TransientResult{}
	for _, a := range algos {
		cfg := cbar.NewConfig(cbar.Tiny, a)
		r, err := cbar.RunTransient(cfg, cbar.Uniform(), cbar.Adversarial(1), *load, opt)
		if err != nil {
			log.Fatal(err)
		}
		traces[a] = r
	}

	// All traces share bucket geometry; print them side by side with a
	// crude bar for the contention-based mechanism.
	ref := traces[algos[0]]
	fmt.Printf("%8s  %6s  %6s  %6s\n", "cycle", "OLM", "Base", "ECtN")
	for i := range ref.Times {
		row := fmt.Sprintf("%8d", ref.Times[i])
		for _, a := range algos {
			tr := traces[a]
			v := 0.0
			if i < len(tr.MisroutedPct) {
				v = tr.MisroutedPct[i]
			}
			row += fmt.Sprintf("  %5.1f%%", v)
		}
		bars := int(traces[cbar.Base].MisroutedPct[min(i, len(traces[cbar.Base].MisroutedPct)-1)] / 5)
		fmt.Printf("%s  |%s\n", row, strings.Repeat("#", bars))
	}

	fmt.Println("\nExpected shape (paper Fig. 7b): Base and ECtN jump toward 100%")
	fmt.Println("within tens of cycles of the first adversarial deliveries, while")
	fmt.Println("credit-based OLM climbs slowly as queues fill.")
}
