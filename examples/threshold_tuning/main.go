// Threshold tuning: reproduce the paper's §VI-A trade-off (Figure 10).
// The Base misrouting threshold must sit between two bounds:
//
//   - high enough that saturated uniform traffic (whose counters hover
//     around the mean VC count per port) does not trigger false
//     misrouting, and
//   - low enough that adversarial traffic triggers misrouting directly
//     at the injection queues (counter reaches ~p, the injection ports).
//
// Run with:
//
//	go run ./examples/threshold_tuning
package main

import (
	"fmt"
	"log"

	"cbar"
)

func main() {
	base := cbar.NewConfig(cbar.Tiny, cbar.Base)
	fmt.Printf("router: %d injection ports, default threshold th=%d\n\n", base.P, base.BaseTh)

	opt := cbar.SteadyOptions{Warmup: 1200, Measure: 1200, Seeds: 2}

	fmt.Println("UN at load 0.5 (higher threshold = fewer false triggers = better):")
	fmt.Println("th   latency(cyc)  accepted  misrouted")
	for th := 1; th <= base.BaseTh+2; th++ {
		cfg := base
		cfg.BaseTh = th
		r, err := cbar.RunSteady(cfg, cbar.Uniform(), 0.5, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d   %9.1f     %.3f     %5.1f%%\n",
			th, r.AvgLatency, r.Accepted, 100*r.MisroutedGlobal)
	}

	fmt.Println("\nADV+1 at load 0.2 (lower threshold = faster diversion = better):")
	fmt.Println("th   latency(cyc)  accepted  misrouted")
	for th := 1; th <= base.BaseTh+4; th++ {
		cfg := base
		cfg.BaseTh = th
		r, err := cbar.RunSteady(cfg, cbar.Adversarial(1), 0.2, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d   %9.1f     %.3f     %5.1f%%\n",
			th, r.AvgLatency, r.Accepted, 100*r.MisroutedGlobal)
	}

	fmt.Println("\nPick the lowest threshold that does not hurt uniform traffic —")
	fmt.Println("the paper lands on th=6 for its 31-port router (§VI-A).")
}
