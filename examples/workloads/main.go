// Workloads: tour the workload engine — hotspot, permutation and
// tornado destination patterns plus bursty and skewed arrival processes
// — by comparing Base routing under each at the same offered load.
//
// Run with:
//
//	go run ./examples/workloads
package main

import (
	"fmt"
	"log"

	"cbar"
)

func main() {
	cfg := cbar.NewConfig(cbar.Tiny, cbar.Base)
	fmt.Printf("network: %d groups, %d routers, %d nodes; routing %s\n\n",
		cfg.Groups(), cfg.Routers(), cfg.Nodes(), cfg.Algorithm)

	const load = 0.25
	workloads := []cbar.Traffic{
		// The paper's baseline: steady Bernoulli uniform traffic.
		cbar.Uniform(),
		// 20% of all traffic aims at 8 hot nodes: the over-subscribed
		// endpoint regime of the congestion-management literature.
		cbar.Hotspot(0.2, 8),
		// Fixed permutations: every node has exactly one destination,
		// so single flows persist instead of averaging out.
		cbar.ShiftPermutation(16),
		cbar.Tornado(),
		// Steady uniform destinations but bursty arrivals: sources
		// alternate 40-cycle ON bursts with 120-cycle silences, at 4x
		// the mean rate while ON.
		cbar.Uniform().WithBurst(40, 120, 0),
		// Heterogeneous load: 10% of the nodes generate half the
		// traffic.
		cbar.Uniform().WithSkew(0.1, 0.5),
	}

	fmt.Printf("workload at offered load %.2f phits/(node·cycle):\n", load)
	fmt.Println("workload                        latency(cyc)    p99   accepted  misrouted")
	for _, w := range workloads {
		res, err := cbar.RunSteady(cfg, w, load, cbar.SteadyOptions{
			Warmup:  1500,
			Measure: 1500,
			Seeds:   2,
		})
		if err != nil {
			log.Fatal(err)
		}
		sat := ""
		if res.OverflowFrac > 0 {
			sat = fmt.Sprintf("  (p99 saturated: %.1f%% beyond cap)", 100*res.OverflowFrac)
		}
		fmt.Printf("%-30s  %9.1f   %6d   %.3f     %4.1f%%%s\n",
			w.Name(), res.AvgLatency, res.P99, res.Accepted, 100*res.MisroutedGlobal, sat)
	}

	fmt.Println("\nBursty arrivals carry the same mean load but a far heavier latency")
	fmt.Println("tail (queues build during ON bursts); tornado concentrates whole")
	fmt.Println("groups onto single global links, which contention-based misrouting")
	fmt.Println("must spread nonminimally.")
}
