// Adversarial showdown: every routing mechanism of the paper under the
// ADV+1 pattern that saturates a Dragonfly's minimal global links — the
// paper's Figure 5b scenario.
//
// Run with:
//
//	go run ./examples/adversarial [-load 0.2] [-scale tiny|small]
package main

import (
	"flag"
	"fmt"
	"log"

	"cbar"
)

func main() {
	load := flag.Float64("load", 0.2, "offered load in phits/(node*cycle)")
	scaleName := flag.String("scale", "tiny", "network scale: tiny|small|paper")
	seeds := flag.Int("seeds", 2, "independent repeats to average")
	flag.Parse()

	scale, err := cbar.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ADV+1 traffic at load %.2f — every node floods the single minimal\n", *load)
	fmt.Printf("global link toward the next group; adaptive mechanisms must detect\n")
	fmt.Printf("the hotspot and divert traffic through other groups.\n\n")
	fmt.Println("algo     latency(cyc)  accepted  misrouted  avg-hops")

	for _, alg := range cbar.Algorithms() {
		cfg := cbar.NewConfig(scale, alg)
		res, err := cbar.RunSteady(cfg, cbar.Adversarial(1), *load, cbar.SteadyOptions{
			Warmup:  1500,
			Measure: 1500,
			Seeds:   *seeds,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %9.1f     %.3f     %5.1f%%    %.2f\n",
			res.Algo, res.AvgLatency, res.Accepted, 100*res.MisroutedGlobal, res.AvgHops)
	}

	fmt.Println("\nExpected shape (paper Fig. 5b): MIN collapses at the single-link")
	fmt.Println("bound; VAL pays full Valiant latency; the contention mechanisms")
	fmt.Println("(Base/Hybrid/ECtN) match or beat the credit-based OLM and PB.")
}
