// Congestion management: drive a hotspot workload past its saturation
// knee with the congestion-control layer off and on, and compare what
// the fabric sustains. With 30% of all traffic aimed at 8 hot nodes,
// the ejection ports of the hot routers saturate long before the
// network does; the uncontrolled run lets the backlog fill every queue
// on the way there, while the controlled run marks packets crossing hot
// ports, notifies the sources, and throttles them at the NIC — trading
// source-side shedding for shorter queues and higher goodput.
//
// Run with:
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"

	"cbar"
)

func main() {
	cfg := cbar.NewConfig(cbar.Tiny, cbar.Base)
	traf := cbar.Hotspot(0.3, 8)
	opt := cbar.SteadyOptions{Warmup: 1200, Measure: 1200, Seeds: 3}

	fmt.Printf("network: %d nodes; traffic %s\n", cfg.Nodes(), traf.Name())
	fmt.Println("\nload   mode  latency(cyc)  accepted  marked  notified  throttled  shed")
	for _, load := range []float64{0.3, 0.5, 0.7} {
		for _, cong := range []string{"off", "on"} {
			c := cfg
			g, err := cbar.ParseCongestion(cong)
			if err != nil {
				log.Fatal(err)
			}
			c.Congestion = g
			res, err := cbar.RunSteady(c, traf, load, opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%.2f   %-4s  %10.1f    %.4f   %6d  %8d  %9d  %4d\n",
				load, cong, res.AvgLatency, res.Accepted,
				res.Marked, res.Notified, res.Throttled, res.Shed)
		}
	}
	fmt.Println("\nPast the knee the controlled run accepts at least as much as the")
	fmt.Println("uncontrolled one at lower latency: the AIMD throttle holds excess")
	fmt.Println("demand at the sources (throttled/shed) instead of parking it in")
	fmt.Println("the fabric's queues.")
}
