// Degraded fabric: fail 5% of the global cables mid-warmup and measure
// what each routing mechanism still delivers under 30% uniform load.
// The fault plan is deterministic — the same cables fail on every run
// and at every worker count — so the comparison across mechanisms is
// exact: every algorithm faces the same broken fabric.
//
// Minimal routing is hit hardest: a pair of groups whose only minimal
// global link is down must fall back to the router-level escape path
// (dead-port detours), which works but never load-balances. The
// adaptive mechanisms (OLM, Base, ECtN) treat dead links as
// non-candidates and misroute around the holes as part of their normal
// nonminimal decision, so their misrouted fraction rises where MIN's
// latency does.
//
// Run with:
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"

	"cbar"
)

func main() {
	cfg := cbar.NewConfig(cbar.Tiny, cbar.MIN)
	traf := cbar.Uniform()
	load := 0.3
	opt := cbar.SteadyOptions{Warmup: 1200, Measure: 1200, Seeds: 3}

	faults, err := cbar.ParseFaults("random:5%@600")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d nodes; traffic %s at load %.2f; faults %s\n",
		cfg.Nodes(), traf.Name(), load, faults)
	fmt.Println("\nalgo    latency(cyc)  accepted  delivered%  misrouted%  dropped  unroutable")
	for _, algo := range []cbar.Algorithm{cbar.MIN, cbar.VAL, cbar.PB, cbar.OLM, cbar.Base, cbar.Hybrid, cbar.ECtN} {
		c := cfg
		c.Algorithm = algo
		c.Faults = faults
		res, err := cbar.RunSteady(c, traf, load, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s  %12.1f    %.4f      %5.1f       %5.1f  %7d  %10d\n",
			res.Algo, res.AvgLatency, res.Accepted, 100*res.Accepted/load,
			100*res.MisroutedGlobal, res.Dropped, res.Unroutable)
	}
	fmt.Println("\nEvery adaptive mechanism (PB, OLM, Base, Hybrid, ECtN) still")
	fmt.Println("delivers >=90% of the offered load: they route around the dead")
	fmt.Println("links by misrouting (their misrouted% is the detour traffic),")
	fmt.Println("where MIN leans on the router-level escape path and pays in both")
	fmt.Println("latency and delivered throughput. VAL is the outlier for a")
	fmt.Println("fault-unrelated reason: at this tiny scale 30% uniform load is")
	fmt.Println("already past the Valiant saturation limit even on a pristine")
	fmt.Println("fabric. Packets already on a failing link were dropped and")
	fmt.Println("counted; none are unroutable because 5% of cables cannot")
	fmt.Println("partition this topology.")
}
