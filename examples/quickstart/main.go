// Quickstart: simulate a small Dragonfly under uniform traffic with the
// paper's Base contention-counter routing and print latency/throughput.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cbar"
)

func main() {
	// A tiny canonical Dragonfly: p=4 nodes/router, a=4 routers/group,
	// h=2 global links/router -> 9 groups, 36 routers, 144 nodes.
	cfg := cbar.NewConfig(cbar.Tiny, cbar.Base)
	fmt.Printf("network: %d groups, %d routers, %d nodes; routing %s (th=%d)\n",
		cfg.Groups(), cfg.Routers(), cfg.Nodes(), cfg.Algorithm, cfg.BaseTh)

	// Zero-valued options take the scale's validated measurement budget
	// (for Tiny: 1200-cycle warmup and measurement windows, 3 seeds);
	// any explicit field overrides just that knob.
	opt := cbar.SteadyOptions{}

	fmt.Println("\nuniform traffic, offered load sweep:")
	fmt.Println("load   latency(cyc)  p99   accepted  misrouted")
	for _, load := range []float64{0.1, 0.3, 0.5, 0.7} {
		res, err := cbar.RunSteady(cfg, cbar.Uniform(), load, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f   %8.1f   %5d   %.3f     %4.1f%%\n",
			load, res.AvgLatency, res.P99, res.Accepted, 100*res.MisroutedGlobal)
	}

	fmt.Println("\nthe same sweep under adversarial ADV+1 traffic:")
	fmt.Println("load   latency(cyc)  p99   accepted  misrouted")
	for _, load := range []float64{0.05, 0.1, 0.2} {
		res, err := cbar.RunSteady(cfg, cbar.Adversarial(1), load, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f   %8.1f   %5d   %.3f     %4.1f%%\n",
			load, res.AvgLatency, res.P99, res.Accepted, 100*res.MisroutedGlobal)
	}
	fmt.Println("\nNote how the contention counters leave uniform traffic on minimal")
	fmt.Println("paths (0% misrouted) but divert adversarial traffic nonminimally.")
}
