package cbar

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAlgorithmStringsRoundTrip(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if Algorithm(42).String() == "" {
		t.Error("unknown algorithm empty string")
	}
}

func TestContentionPredicate(t *testing.T) {
	want := map[Algorithm]bool{
		MIN: false, VAL: false, PB: false, OLM: false,
		Base: true, Hybrid: true, ECtN: true,
	}
	for a, w := range want {
		if a.IsContentionBased() != w {
			t.Errorf("%v IsContentionBased = %v", a, !w)
		}
	}
}

func TestScaleRoundTrip(t *testing.T) {
	for _, s := range []Scale{Tiny, Small, Paper} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScale(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestNewConfigTableI(t *testing.T) {
	c := NewConfig(Paper, Base)
	if c.P != 8 || c.A != 16 || c.H != 8 {
		t.Fatalf("topology %d/%d/%d", c.P, c.A, c.H)
	}
	if c.Nodes() != 16512 || c.Routers() != 2064 || c.Groups() != 129 {
		t.Fatalf("size %d/%d/%d", c.Nodes(), c.Routers(), c.Groups())
	}
	if c.PacketSize != 8 || c.BufGlobal != 256 || c.LatencyGlobal != 100 {
		t.Fatalf("micro-arch defaults %+v", c)
	}
	if c.BaseTh != 6 || c.HybridTh != 7 || c.CombinedTh != 10 || c.ECtNPeriod != 100 {
		t.Fatalf("thresholds %+v", c)
	}
}

func TestConfigInternalRejectsBadAlgo(t *testing.T) {
	c := NewConfig(Tiny, Algorithm(77))
	if _, err := RunSteady(c, Uniform(), 0.1, SteadyOptions{Warmup: 10, Measure: 10, Seeds: 1}); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

// TestNegativeOptionsRejected: zero-valued options take scale defaults,
// but explicitly negative windows/repeats must surface validation
// errors instead of being silently replaced (they used to default).
func TestNegativeOptionsRejected(t *testing.T) {
	c := NewConfig(Tiny, MIN)
	if _, err := RunSteady(c, Uniform(), 0.1, SteadyOptions{Warmup: -5, Measure: 100, Seeds: 1}); err == nil {
		t.Fatal("negative warmup accepted")
	}
	if _, err := RunSteady(c, Uniform(), 0.1, SteadyOptions{Measure: -100, Seeds: 1}); err == nil {
		t.Fatal("negative measure accepted")
	}
	if _, err := Sweep(c, Uniform(), []float64{0.1}, SteadyOptions{Warmup: 10, Measure: 10, Seeds: -1}); err == nil {
		t.Fatal("negative seeds accepted")
	}
	if _, err := RunSteady(c, Uniform(), 0.1, SteadyOptions{Warmup: 10, Measure: 10, Seeds: 1, Adaptive: true, CIRelWidth: 7}); err == nil {
		t.Fatal("CI target >= 1 accepted")
	}
	if _, err := RunTransient(c, Uniform(), Adversarial(1), 0.2, TransientOptions{Warmup: 500, Pre: 100, Post: 5, Bucket: 10, Seeds: 1}); err == nil {
		t.Fatal("bucket wider than post accepted")
	}
	if _, err := RunTransient(c, Uniform(), Adversarial(1), 0.2, TransientOptions{Warmup: 500, Pre: -2, Post: 200, Bucket: 10, Seeds: 1}); err == nil {
		t.Fatal("negative pre accepted")
	}
}

func TestTrafficNames(t *testing.T) {
	if Uniform().Name() != "UN" {
		t.Fatal("UN name")
	}
	if Adversarial(3).Name() != "ADV+3" {
		t.Fatal("ADV name")
	}
	if !strings.Contains(Mixed(0.5, 1).Name(), "UN") {
		t.Fatal("mix name missing UN component")
	}
}

func TestParseTraffic(t *testing.T) {
	cases := map[string]string{
		"un":                                     "UN",
		"UNIFORM":                                "UN",
		"adv+1":                                  "ADV+1",
		"adv3":                                   "ADV+3",
		"adv-2":                                  "ADV+-2",
		"mix:0.4,1":                              "mix(40%UN,ADV+1)",
		"hotspot:0.2,8":                          "hotspot(20%->8)",
		"perm:shift+5":                           "shift+5",
		"perm:shift-3":                           "shift+-3",
		"perm:complement":                        "complement",
		"perm:comp":                              "complement",
		"tornado":                                "tornado",
		"burst:50,200":                           "UN+burst(50,200)",
		"burst:50,200,0.8":                       "UN+burst(50,200,0.8)",
		"adv+1+burst:50,200":                     "ADV+1+burst(50,200)",
		"un+skew:0.1,0.5":                        "UN+skew(10%:50%)",
		"hotspot:0.2,8+burst:30,90+skew:0.1,0.5": "hotspot(20%->8)+burst(30,90)+skew(10%:50%)",
	}
	for in, want := range cases {
		tr, err := ParseTraffic(in)
		if err != nil {
			t.Errorf("ParseTraffic(%q): %v", in, err)
			continue
		}
		if tr.Name() != want {
			t.Errorf("ParseTraffic(%q).Name() = %q, want %q", in, tr.Name(), want)
		}
	}
	for _, bad := range []string{
		"", "advX", "mix:1", "mix:a,b", "hotspot",
		"hotspot:0.2", "hotspot:x,8", "perm:shiftX", "perm:rotate",
		"burst:50", "burst:a,b", "un+skew:0.1", "+burst:50,200",
	} {
		if _, err := ParseTraffic(bad); err == nil {
			t.Errorf("ParseTraffic(%q) accepted", bad)
		}
	}
}

// TestParseTrafficRunsEndToEnd: every parseable spec must also run (the
// parser and the pattern constructors agree on parameter ranges).
func TestParseTrafficRunsEndToEnd(t *testing.T) {
	t.Parallel()
	c := NewConfig(Tiny, Base)
	for _, spec := range []string{"hotspot:0.3,4", "tornado", "perm:shift+7", "burst:20,60", "un+skew:0.1,0.5"} {
		tr, err := ParseTraffic(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunSteady(c, tr, 0.1, SteadyOptions{Warmup: 300, Measure: 300, Seeds: 1})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if r.Delivered == 0 {
			t.Fatalf("%s: nothing delivered", spec)
		}
	}
}

// TestOverflowFracReported: a sane low-load run reports a zero overflow
// fraction (nothing near the histogram cap), and the field mirrors
// through the public result.
func TestOverflowFracReported(t *testing.T) {
	t.Parallel()
	c := NewConfig(Tiny, MIN)
	r, err := RunSteady(c, Uniform(), 0.1, SteadyOptions{Warmup: 300, Measure: 300, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.OverflowFrac != 0 {
		t.Fatalf("low-load OverflowFrac %v, want 0", r.OverflowFrac)
	}
}

func TestRunSteadySmoke(t *testing.T) {
	t.Parallel()
	c := NewConfig(Tiny, Base)
	r, err := RunSteady(c, Uniform(), 0.2, SteadyOptions{Warmup: 600, Measure: 600, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered == 0 || r.AvgLatency < 13 {
		t.Fatalf("bad result %+v", r)
	}
	if r.Algo != "Base" || r.Workload != "UN" || r.Load != 0.2 {
		t.Fatalf("metadata %+v", r)
	}
}

// TestWorkersIdenticalResults pins the public contract of
// Config.Workers: the same sweep at 1 and 3 shard workers per run must
// report identical measurements — the knob changes wall-clock time and
// nothing else.
func TestWorkersIdenticalResults(t *testing.T) {
	t.Parallel()
	opt := SteadyOptions{Warmup: 500, Measure: 500, Seeds: 2}
	run := func(workers int) []SteadyResult {
		c := NewConfig(Tiny, ECtN)
		c.Workers = workers
		rs, err := Sweep(c, Adversarial(1), []float64{0.2, 0.4}, opt)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	seq, par := run(1), run(3)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("load %v diverged:\n  workers=1 %+v\n  workers=3 %+v", seq[i].Load, seq[i], par[i])
		}
	}
}

func TestRunSteadyCustomTopology(t *testing.T) {
	t.Parallel()
	c := NewConfigFor(2, 4, 2, MIN) // 9 groups, 72 nodes
	if c.Nodes() != 72 {
		t.Fatalf("nodes %d", c.Nodes())
	}
	r, err := RunSteady(c, Uniform(), 0.15, SteadyOptions{Warmup: 500, Measure: 500, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestSweepOrderingAndMonotonicThroughput(t *testing.T) {
	t.Parallel()
	c := NewConfig(Tiny, MIN)
	loads := []float64{0.1, 0.3}
	rs, err := Sweep(c, Uniform(), loads, SteadyOptions{Warmup: 600, Measure: 600, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results", len(rs))
	}
	if rs[0].Load != 0.1 || rs[1].Load != 0.3 {
		t.Fatalf("order %v %v", rs[0].Load, rs[1].Load)
	}
	if rs[1].Accepted <= rs[0].Accepted {
		t.Fatalf("throughput not increasing below saturation: %.3f then %.3f",
			rs[0].Accepted, rs[1].Accepted)
	}
}

func TestSweepEmptyRejected(t *testing.T) {
	if _, err := Sweep(NewConfig(Tiny, MIN), Uniform(), nil, SteadyOptions{}); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestRunTransientSmoke(t *testing.T) {
	t.Parallel()
	c := NewConfig(Tiny, Base)
	r, err := RunTransient(c, Uniform(), Adversarial(1), 0.3,
		TransientOptions{Warmup: 800, Pre: 100, Post: 400, Bucket: 20, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Algo != "Base" || len(r.Times) == 0 {
		t.Fatalf("bad result %+v", r)
	}
	for i := range r.Times {
		if math.IsNaN(r.Latency[i]) || r.MisroutedPct[i] < 0 || r.MisroutedPct[i] > 100 {
			t.Fatalf("bad sample %d: %v %v", i, r.Latency[i], r.MisroutedPct[i])
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	figs := FigureIDs()
	wantFigs := []string{"fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "via"}
	if len(figs) != len(wantFigs) {
		t.Fatalf("figure ids %v", figs)
	}
	ids := ExperimentIDs()
	want := append(wantFigs, "abl-ectn-period", "abl-speedup", "abl-local-vcs", "abl-th-bounds", "abl-statistical")
	if len(ids) != len(want) {
		t.Fatalf("ids %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids %v", ids)
		}
		title, err := ExperimentTitle(id)
		if err != nil || title == "" {
			t.Fatalf("title(%s): %q, %v", id, title, err)
		}
	}
	if _, err := ExperimentTitle("fig99"); err == nil {
		t.Fatal("unknown title accepted")
	}
	if err := RunExperiment("fig99", Tiny, 1, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentVIA(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := RunExperiment("via", Tiny, 1, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mean_saturated_counter") ||
		!strings.Contains(out, "mean_vcs_per_port_estimate") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestSteadyOptionsDefaults(t *testing.T) {
	c := NewConfig(Tiny, MIN)
	b := SteadyOptions{}.budget(c)
	if b.Warmup <= 0 || b.Measure <= 0 || b.Seeds <= 0 {
		t.Fatalf("defaults not applied: %+v", b)
	}
	// Paper-scale configs get the paper budget.
	bp := SteadyOptions{}.budget(NewConfig(Paper, MIN))
	if bp.Measure < b.Measure {
		t.Fatalf("paper budget %d smaller than tiny %d", bp.Measure, b.Measure)
	}
}
