package cbar

import (
	"context"
	"fmt"
	"io"

	"cbar/internal/sim"
)

// SteadyOptions sizes a steady-state measurement. Zero values take the
// scale-appropriate defaults (the paper warms up, then measures 15000
// cycles averaged over 10 runs at full scale); explicitly negative
// windows or repeat counts are rejected with an error rather than
// silently replaced.
type SteadyOptions struct {
	// Warmup cycles before measurement starts. In adaptive mode this is
	// the cap of the MSER-detected warmup truncation instead.
	Warmup int64
	// Measure is the measurement window in cycles. In adaptive mode it
	// only sizes the default MaxMeasure cap (4x Measure).
	Measure int64
	// Seeds is the number of independent repeats (averaged; run in
	// parallel).
	Seeds int
	// Adaptive replaces the fixed windows with the adaptive measurement
	// engine: MSER warmup truncation, a batch-means CI stopping rule
	// (simulate until the 95% CI on mean latency and throughput is
	// within CIRelWidth of the mean) and a saturation short-circuit
	// that bails out of non-converging points early. The default fixed
	// mode reproduces pre-adaptive results bit-identically.
	Adaptive bool
	// CIRelWidth is the adaptive stopping target (0 = 0.05).
	CIRelWidth float64
	// MaxMeasure caps the adaptive measurement phase per seed, in
	// cycles (0 = 4x Measure).
	MaxMeasure int64
	// Ctx, when non-nil, cancels the run cooperatively: the cycle loops
	// check it every measurement bucket and the grid pool between
	// (load, seed) tasks, so an interrupted sweep stops mid-run.
	Ctx context.Context
}

// budget resolves the options against the config's scale defaults,
// leaving validation (negative windows, bad CI targets) to the
// simulation layer so every entry point reports the same errors.
func (o SteadyOptions) budget(c Config) sim.Budget {
	def := sim.DefaultBudget(scaleOf(c))
	b := sim.Budget{
		Warmup: o.Warmup, Measure: o.Measure, Seeds: o.Seeds,
		Adaptive: o.Adaptive, CIRelWidth: o.CIRelWidth, MaxMeasure: o.MaxMeasure,
		Ctx: o.Ctx,
	}
	if b.Warmup == 0 {
		b.Warmup = def.Warmup
	}
	if b.Measure == 0 {
		b.Measure = def.Measure
	}
	if b.Seeds == 0 {
		b.Seeds = def.Seeds
	}
	return b
}

// scaleOf classifies a config by node count, for defaulting budgets.
func scaleOf(c Config) sim.Scale {
	switch n := c.Nodes(); {
	case n <= 300:
		return sim.Tiny
	case n <= 4000:
		return sim.Small
	default:
		return sim.Paper
	}
}

// SteadyResult reports a steady-state measurement.
type SteadyResult struct {
	// Algo and Workload name the simulated mechanism and traffic pattern
	// (Algorithm.String and the ParseTraffic spec forms).
	Algo, Workload string
	// Load is the offered load in phits/(node·cycle); with 8-phit
	// packets and 10-byte phits at 1 GHz this is tenths of 10 GB/s.
	Load float64
	// AvgLatency is the mean packet latency in cycles, generation to
	// tail delivery (source queueing included).
	AvgLatency float64
	// P50 and P99 are latency percentiles in cycles.
	P50, P99 int64
	// Accepted is the delivered throughput in phits/(node·cycle).
	Accepted float64
	// MisroutedGlobal is the fraction of delivered packets that took a
	// nonminimal global hop; MisroutedLocal likewise for local hops.
	MisroutedGlobal, MisroutedLocal float64
	// AvgHops is the mean number of router-to-router hops.
	AvgHops float64
	// UtilLocal and UtilGlobal are the mean utilizations (0..1) of the
	// local and global links over the measurement window — useful for
	// spotting which tier saturates first (global links under ADV+1,
	// source-group local links under ADV+h).
	UtilLocal, UtilGlobal float64
	// OverflowFrac is the fraction of measured latencies at or above
	// the latency-histogram cap. Nonzero means the reported percentiles
	// are saturated at the cap (the true tail is worse) — typical when
	// the offered load exceeds the saturation throughput.
	OverflowFrac float64
	// Delivered counts packets measured across all seeds.
	Delivered uint64
	// Seeds is the number of averaged repeats.
	Seeds int
	// CIHalfLatency and CIHalfAccepted are the 95% confidence
	// half-widths of AvgLatency and Accepted from the adaptive engine's
	// batch-means estimator, combined across seeds (zero in fixed mode).
	CIHalfLatency, CIHalfAccepted float64
	// MeasuredCycles is the total number of measured cycles summed over
	// all seeds — Measure x Seeds in fixed mode, whatever the stopping
	// rule actually spent in adaptive mode.
	MeasuredCycles int64
	// WarmupCycles is the mean unmeasured warmup prefix per seed (the
	// MSER-truncated length in adaptive mode).
	WarmupCycles int64
	// Saturated reports that the adaptive saturation detector cut at
	// least one seed short: the point does not converge at this load
	// and its averages describe a growing transient.
	Saturated bool
	// Converged reports that every seed reached the relative-CI target
	// (adaptive mode only; always false in fixed mode).
	Converged bool
	// Congestion-management activity over the measurement windows,
	// summed across seeds; all zero unless Config.Congestion is enabled.
	// Marked counts delivered packets carrying ECN marks, Notified the
	// notifications replayed to sources, Throttled the injection
	// attempts deferred or suppressed by the AIMD throttle, and Shed the
	// injection attempts dropped at the NIC shed cap.
	Marked, Notified, Throttled, Shed uint64
	// Fault-injection activity over the measurement windows, summed
	// across seeds; all zero unless Config.Faults schedules faults.
	// Dropped counts packets killed on failing links or routers, Retried
	// the killed packets successfully re-injected by their sources, and
	// Unroutable the packets aimed at (or caught inside) a partitioned
	// region of the fabric.
	Dropped, Retried, Unroutable uint64
}

func fromSimSteady(r sim.SteadyResult) SteadyResult {
	return SteadyResult{
		Algo:            r.Algo,
		Workload:        r.Workload,
		Load:            r.Load,
		AvgLatency:      r.AvgLatency,
		P50:             r.P50,
		P99:             r.P99,
		Accepted:        r.Accepted,
		MisroutedGlobal: r.MisroutedGlobal,
		MisroutedLocal:  r.MisroutedLocal,
		AvgHops:         r.AvgHops,
		UtilLocal:       r.UtilLocal,
		UtilGlobal:      r.UtilGlobal,
		OverflowFrac:    r.OverflowFrac,
		Delivered:       r.Delivered,
		Seeds:           r.Seeds,
		CIHalfLatency:   r.CIHalfLatency,
		CIHalfAccepted:  r.CIHalfAccepted,
		MeasuredCycles:  r.MeasuredCycles,
		WarmupCycles:    r.WarmupCycles,
		Saturated:       r.Saturated,
		Converged:       r.Converged,
		Marked:          r.Marked,
		Notified:        r.Notified,
		Throttled:       r.Throttled,
		Shed:            r.Shed,
		Dropped:         r.Dropped,
		Retried:         r.Retried,
		Unroutable:      r.Unroutable,
	}
}

// RunSteady measures latency and throughput at one offered load
// (phits/(node·cycle), in [0,1]).
func RunSteady(c Config, t Traffic, load float64, opt SteadyOptions) (SteadyResult, error) {
	sc, err := c.internal()
	if err != nil {
		return SteadyResult{}, err
	}
	r, err := sim.RunSteadyBudget(sc, t.inner, load, opt.budget(c))
	if err != nil {
		return SteadyResult{}, err
	}
	return fromSimSteady(r), nil
}

// Sweep measures a whole load grid. Every (load, seed) point of the
// grid runs through one bounded worker pool (GOMAXPROCS workers) — a
// sweep of L loads no longer fans out into L independent seed pools.
// The returned slice is ordered like loads.
func Sweep(c Config, t Traffic, loads []float64, opt SteadyOptions) ([]SteadyResult, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("cbar: empty load grid")
	}
	sc, err := c.internal()
	if err != nil {
		return nil, err
	}
	rs, err := sim.SweepSteadyBudget(sc, t.inner, loads, opt.budget(c))
	if err != nil {
		return nil, err
	}
	out := make([]SteadyResult, len(rs))
	for i, r := range rs {
		out[i] = fromSimSteady(r)
	}
	return out, nil
}

// TransientOptions sizes a traffic-switch experiment.
type TransientOptions struct {
	// Warmup cycles under the pre-switch pattern (rounded up to a
	// multiple of the ECtN exchange period, matching the paper's
	// Figure 7 scenario).
	Warmup int64
	// Pre and Post bound the recorded trace around the switch.
	Pre, Post int64
	// Bucket is the trace averaging width in cycles.
	Bucket int64
	// Seeds is the number of averaged repeats.
	Seeds int
}

// withDefaults fills zero-valued windows from the scale defaults.
// Explicitly negative values pass through so the simulation layer's
// validation rejects them with a clear error instead of silently
// substituting a default.
func (o TransientOptions) withDefaults(c Config) TransientOptions {
	def := sim.DefaultBudget(scaleOf(c))
	if o.Warmup == 0 {
		o.Warmup = def.TransientWarmup
	}
	if o.Pre == 0 {
		o.Pre = def.Pre
	}
	if o.Post == 0 {
		o.Post = def.Post
	}
	if o.Bucket == 0 {
		o.Bucket = def.Bucket
	}
	if o.Seeds == 0 {
		o.Seeds = def.Seeds
	}
	return o
}

// TransientResult is a traced response to a traffic-pattern switch.
type TransientResult struct {
	// Algo names the traced mechanism (Algorithm.String form).
	Algo string
	// Times are bucket centers in cycles relative to the switch
	// (negative = before).
	Times []int64
	// Latency is the mean latency of packets delivered in each bucket.
	Latency []float64
	// MisroutedPct is the percentage (0-100) of packets delivered in
	// each bucket that had taken a nonminimal global hop.
	MisroutedPct []float64
}

// RunTransient warms the network under `before`, switches to `after` at
// t=0 and traces per-bucket delivery latency and misrouted percentage
// (the Figures 7-9 experiments).
func RunTransient(c Config, before, after Traffic, load float64, opt TransientOptions) (TransientResult, error) {
	sc, err := c.internal()
	if err != nil {
		return TransientResult{}, err
	}
	opt = opt.withDefaults(c)
	r, err := sim.RunTransient(sc, before.inner, after.inner, load,
		opt.Warmup, opt.Pre, opt.Post, opt.Bucket, opt.Seeds)
	if err != nil {
		return TransientResult{}, err
	}
	return TransientResult{
		Algo:         r.Algo,
		Times:        r.Times,
		Latency:      r.Latency,
		MisroutedPct: r.MisroutedPct,
	}, nil
}

// ExperimentIDs lists the paper's reproducible tables and figures —
// fig5a-fig5c, fig6, fig7, fig8, fig9, fig10a, fig10b and "via" (the
// §VI-A saturated-counter analysis) — followed by the ablation studies
// (abl-*).
func ExperimentIDs() []string {
	var ids []string
	for _, e := range sim.AllExperiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// FigureIDs lists only the paper's tables and figures (no ablations).
func FigureIDs() []string {
	var ids []string
	for _, e := range sim.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// ExperimentTitle returns the human description of an experiment ID.
func ExperimentTitle(id string) (string, error) {
	e, ok := sim.FindExperiment(id)
	if !ok {
		return "", fmt.Errorf("cbar: unknown experiment %q", id)
	}
	return e.Title, nil
}

// RunExperiment regenerates one of the paper's tables or figures at the
// given scale, writing CSV (with a leading comment line) to w. Seeds and
// windows follow the scale's default budget; pass seeds > 0 to override
// the repeat count.
func RunExperiment(id string, s Scale, seeds int, w io.Writer) error {
	return RunExperimentOpts(id, s, ExperimentOptions{Seeds: seeds}, w)
}

// ExperimentOptions overrides parts of an experiment's scale-default
// budget. Zero values keep the defaults.
type ExperimentOptions struct {
	// Seeds overrides the repeat count per plotted point.
	Seeds int
	// Workers is the per-simulation shard worker count (Config.Workers
	// semantics: 0 = automatic split between grid parallelism and
	// intra-run sharding, 1 = sequential stepping). Results are
	// identical at every worker count.
	Workers int
	// Adaptive runs the experiment's steady-state points under the
	// adaptive measurement engine (MSER warmup truncation, batch-means
	// CI stopping, saturation short-circuit) instead of the fixed
	// windows; transient traces keep their fixed windows. Numbers are
	// statistically equivalent but not bit-identical to fixed mode.
	Adaptive bool
	// CIRelWidth is the adaptive stopping target (0 = 0.05).
	CIRelWidth float64
	// MaxMeasure caps the adaptive measurement phase per seed, in
	// cycles (0 = 4x the scale's fixed measurement window).
	MaxMeasure int64
	// Congestion enables the congestion-management layer in every
	// simulation of the experiment. The zero value keeps it off,
	// reproducing pre-congestion figures bit-identically.
	Congestion Congestion
	// Faults schedules the fault-injection plan in every simulation of
	// the experiment. The zero value keeps it off, reproducing pre-fault
	// figures bit-identically.
	Faults Faults
	// Ctx, when non-nil, cancels the experiment cooperatively (checked
	// every measurement bucket and between grid tasks).
	Ctx context.Context
}

// RunExperimentOpts is RunExperiment with budget overrides.
func RunExperimentOpts(id string, s Scale, opt ExperimentOptions, w io.Writer) error {
	e, ok := sim.FindExperiment(id)
	if !ok {
		return fmt.Errorf("cbar: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	b := sim.DefaultBudget(s.internal())
	// 0 means scale default; anything else (negative included) reaches
	// the budget validation, matching RunSteady/Sweep.
	if opt.Seeds != 0 {
		b.Seeds = opt.Seeds
	}
	if opt.Seeds < 0 {
		// Some experiments (e.g. "via") never consume Seeds, so reject
		// here rather than rely on the experiment's own entry points.
		return fmt.Errorf("cbar: seeds %d must be >= 1 (0 = scale default)", opt.Seeds)
	}
	b.Workers = opt.Workers
	b.Congestion = opt.Congestion.internal()
	b.Faults = opt.Faults.internal()
	b.Ctx = opt.Ctx
	b.Adaptive = opt.Adaptive
	b.CIRelWidth = opt.CIRelWidth
	b.MaxMeasure = opt.MaxMeasure
	return e.Run(s.internal(), b, w)
}
