package cbar_test

import (
	"fmt"
	"log"
	"os"

	"cbar"
)

// Example_steadyState measures latency and throughput for the paper's
// Base mechanism under adversarial traffic.
func Example_steadyState() {
	cfg := cbar.NewConfig(cbar.Tiny, cbar.Base)
	res, err := cbar.RunSteady(cfg, cbar.Adversarial(1), 0.2, cbar.SteadyOptions{
		Warmup:  1000,
		Measure: 1000,
		Seeds:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s under %s: most packets misrouted = %v\n",
		res.Algo, res.Workload, res.MisroutedGlobal > 0.9)
	// Output: Base under ADV+1: most packets misrouted = true
}

// Example_comparingMechanisms sweeps one load across mechanisms — the
// core comparison of the paper's Figure 5b.
func Example_comparingMechanisms() {
	for _, alg := range []cbar.Algorithm{cbar.MIN, cbar.VAL, cbar.Base} {
		cfg := cbar.NewConfig(cbar.Tiny, alg)
		res, err := cbar.RunSteady(cfg, cbar.Adversarial(1), 0.2, cbar.SteadyOptions{
			Warmup: 1000, Measure: 1000, Seeds: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		// MIN saturates at the single minimal global link
		// (1/16 phits/node/cycle on this tiny network) while VAL and
		// Base sustain the offered 0.2.
		fmt.Printf("%-4s accepted >= 0.15: %v\n", res.Algo, res.Accepted >= 0.15)
	}
	// Output:
	// MIN  accepted >= 0.15: false
	// VAL  accepted >= 0.15: true
	// Base accepted >= 0.15: true
}

// Example_transient traces the adaptation to a traffic change, the
// experiment of the paper's Figure 7.
func Example_transient() {
	cfg := cbar.NewConfig(cbar.Tiny, cbar.Base)
	res, err := cbar.RunTransient(cfg, cbar.Uniform(), cbar.Adversarial(1), 0.35,
		cbar.TransientOptions{Warmup: 1200, Pre: 100, Post: 500, Bucket: 50, Seeds: 1})
	if err != nil {
		log.Fatal(err)
	}
	// Misrouting before the switch stays low; after the new pattern's
	// packets flow it approaches 100%.
	first, last := res.MisroutedPct[0], res.MisroutedPct[len(res.MisroutedPct)-1]
	fmt.Printf("misrouted: before %v, settled %v\n", first < 25, last > 75)
	// Output: misrouted: before true, settled true
}

// ExampleRunExperiment regenerates a paper artifact (here the §VI-A
// counter analysis) as CSV.
func ExampleRunExperiment() {
	err := cbar.RunExperiment("via", cbar.Tiny, 1, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
}
