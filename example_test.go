package cbar_test

import (
	"fmt"
	"log"
	"os"

	"cbar"
)

// Example_steadyState measures latency and throughput for the paper's
// Base mechanism under adversarial traffic.
func Example_steadyState() {
	cfg := cbar.NewConfig(cbar.Tiny, cbar.Base)
	res, err := cbar.RunSteady(cfg, cbar.Adversarial(1), 0.2, cbar.SteadyOptions{
		Warmup:  1000,
		Measure: 1000,
		Seeds:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s under %s: most packets misrouted = %v\n",
		res.Algo, res.Workload, res.MisroutedGlobal > 0.9)
	// Output: Base under ADV+1: most packets misrouted = true
}

// Example_comparingMechanisms sweeps one load across mechanisms — the
// core comparison of the paper's Figure 5b.
func Example_comparingMechanisms() {
	for _, alg := range []cbar.Algorithm{cbar.MIN, cbar.VAL, cbar.Base} {
		cfg := cbar.NewConfig(cbar.Tiny, alg)
		res, err := cbar.RunSteady(cfg, cbar.Adversarial(1), 0.2, cbar.SteadyOptions{
			Warmup: 1000, Measure: 1000, Seeds: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		// MIN saturates at the single minimal global link
		// (1/16 phits/node/cycle on this tiny network) while VAL and
		// Base sustain the offered 0.2.
		fmt.Printf("%-4s accepted >= 0.15: %v\n", res.Algo, res.Accepted >= 0.15)
	}
	// Output:
	// MIN  accepted >= 0.15: false
	// VAL  accepted >= 0.15: true
	// Base accepted >= 0.15: true
}

// Example_transient traces the adaptation to a traffic change, the
// experiment of the paper's Figure 7.
func Example_transient() {
	cfg := cbar.NewConfig(cbar.Tiny, cbar.Base)
	res, err := cbar.RunTransient(cfg, cbar.Uniform(), cbar.Adversarial(1), 0.35,
		cbar.TransientOptions{Warmup: 1200, Pre: 100, Post: 500, Bucket: 50, Seeds: 1})
	if err != nil {
		log.Fatal(err)
	}
	// Misrouting before the switch stays low; after the new pattern's
	// packets flow it approaches 100%.
	first, last := res.MisroutedPct[0], res.MisroutedPct[len(res.MisroutedPct)-1]
	fmt.Printf("misrouted: before %v, settled %v\n", first < 25, last > 75)
	// Output: misrouted: before true, settled true
}

// ExampleRunExperiment regenerates a paper artifact (here the §VI-A
// counter analysis) as CSV.
func ExampleRunExperiment() {
	err := cbar.RunExperiment("via", cbar.Tiny, 1, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
}

// ExampleParseCongestion resolves a congestion-management spec string —
// the same grammar cmd/sweep, cmd/figures and cmd/dfsim accept via
// -congestion. Unset keys keep their zero value and take the documented
// defaults when the network is built.
func ExampleParseCongestion() {
	g, err := cbar.ParseCongestion("on:mark=80,shed=8,min=20")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enabled=%v mark=%d%% shed=%d min=%d%% dec=%d (default at build)\n",
		g.Enabled, g.MarkPct, g.ShedCap, g.MinRatePct, g.DecreasePct)
	// Output: enabled=true mark=80% shed=8 min=20% dec=0 (default at build)
}

// ExampleParseFaults resolves a fault-plan spec string — clauses
// composed with '+' — and shows that Faults.String renders the plan
// back in the same canonical syntax.
func ExampleParseFaults() {
	f, err := cbar.ParseFaults("linkdown:12,5@1000+random:5%@2000,42+retry:3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events=%d retry=%d enabled=%v\n", len(f.Events), f.RetryLimit, f.Enabled())
	fmt.Println(f.String())
	// Output:
	// events=1 retry=3 enabled=true
	// linkdown:12,5@1000+random:5%@2000,42+retry:3
}

// ExampleConfig_workers pins the public parallelism contract: the same
// simulation stepped by one worker and by several shard workers is
// bit-identical — Config.Workers changes wall-clock time and nothing
// else.
func ExampleConfig_workers() {
	opt := cbar.SteadyOptions{Warmup: 600, Measure: 600, Seeds: 1}
	var results []cbar.SteadyResult
	for _, workers := range []int{1, 3} {
		cfg := cbar.NewConfig(cbar.Tiny, cbar.Base)
		cfg.Workers = workers
		res, err := cbar.RunSteady(cfg, cbar.Uniform(), 0.2, opt)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}
	fmt.Printf("identical across worker counts: %v\n",
		results[0].AvgLatency == results[1].AvgLatency &&
			results[0].Accepted == results[1].Accepted &&
			results[0].P99 == results[1].P99)
	// Output: identical across worker counts: true
}
