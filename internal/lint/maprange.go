package lint

import (
	"go/ast"
)

// MapRange forbids ranging over a map in the deterministic packages:
// map iteration order is randomized per run, so any map range whose
// visit order can reach simulation state (counters, schedules, RNG
// draws, output rows) breaks the bit-identical-trace contract. A range
// that provably normalizes the order carries a `//lint:ordered <reason>`
// annotation stating why the order does not escape.
var MapRange = &Analyzer{
	Name:  "maprange",
	Doc:   "forbid unordered map iteration in deterministic packages",
	Tests: true,
	Run:   runMapRange,
}

func runMapRange(pass *Pass) {
	pkg := pass.Pkg
	pass.files(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapType(pkg.Info.TypeOf(rs.X)) {
				return true
			}
			if pkg.orderedFor(f, rs) != nil {
				return true // annotated; the annotation analyzer vets the reason
			}
			pass.Reportf(rs.For,
				"range over map: iteration order is nondeterministic; sort the keys, or annotate the statement with `//lint:ordered <reason>` proving the order does not escape")
			return true
		})
	})
}
