package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FieldEnc enforces field encapsulation on the accounting state the
// determinism proofs lean on. The occupancy counter feeds the ECN
// watcher pipeline through Router.occDelta (a raw write would skip the
// watchers and desynchronize congestion notifications between runs);
// the credit/outFree counters are conserved quantities audited by
// CheckInvariants; the active-set slices carry a sortedLen watermark
// that is only valid while mutation goes through the set's own methods.
// Each registered field may be assigned (or ++/--'d) only inside its
// sanctioned writer functions from the Config registry.
//
// The analyzer covers assignment statements and IncDecStmt; composite
// literals constructing a whole value (outPort{...}) are treated as
// initialization, not mutation — constructors build values wholesale
// and the invariant checker validates the result.
//
// Tests are exempt: scenario builders assign these fields to set up
// states that would take thousands of cycles to reach organically.
var FieldEnc = &Analyzer{
	Name: "fieldenc",
	Doc:  "encapsulated accounting fields may only be written by their sanctioned mutators",
	Run:  runFieldEnc,
}

func runFieldEnc(pass *Pass) {
	if len(pass.Cfg.Fields) == 0 {
		return
	}
	pkg := pass.Pkg
	idx := newDeclIndex(pkg, false)

	pass.files(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					pass.checkFieldWrite(idx, lhs)
				}
			case *ast.IncDecStmt:
				pass.checkFieldWrite(idx, st.X)
			}
			return true
		})
	})
}

// checkFieldWrite vets one assignment target against the field registry.
func (pass *Pass) checkFieldWrite(idx *declIndex, lhs ast.Expr) {
	sel, rule := pass.fieldRuleFor(lhs)
	if rule == nil {
		return
	}
	writer := ""
	if d := idx.enclosing(lhs.Pos()); d != nil {
		writer = declKey(pass.Pkg.Info, d)
	}
	for _, w := range rule.Writers {
		if w == writer {
			return
		}
	}
	site := writer
	if site == "" {
		site = "a package-level initializer"
	}
	pass.Reportf(sel.Sel.Pos(),
		"write to %s.%s outside its sanctioned mutators: %s is not one of %s",
		rule.Type, rule.Field, site, strings.Join(rule.Writers, ", "))
}

// fieldRuleFor resolves an assignment target to a registered field rule:
// the target must be a selector (possibly through pointers, parens and
// index expressions: r.out[i].occ) whose field and owning named type
// match a FieldRule.
func (pass *Pass) fieldRuleFor(lhs ast.Expr) (*ast.SelectorExpr, *FieldRule) {
	e := ast.Unparen(lhs)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil, nil
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	ownerKey := namedTypeKey(selection.Recv())
	if ownerKey == "" {
		return nil, nil
	}
	for i := range pass.Cfg.Fields {
		rule := &pass.Cfg.Fields[i]
		if rule.Field == field.Name() && rule.Type == ownerKey {
			return sel, rule
		}
	}
	return nil, nil
}

// namedTypeKey renders the "<pkgpath>.<TypeName>" key of a (possibly
// pointer-wrapped) named type, or "" when the type is unnamed.
func namedTypeKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
