package lint

import "testing"

// BenchmarkDetlintSelf measures one full detlint invocation over the
// repository: a single load/type-check (the dominant cost) shared by the
// six per-package analyzers plus one Program build shared by the two
// whole-program analyzers. It exists to keep the suite's cost profile
// honest: an analyzer change that re-type-checks per analyzer, or a
// registry change that explodes the reachability frontier, shows up here
// long before the CI gate feels slow.
func BenchmarkDetlintSelf(b *testing.B) {
	for b.Loop() {
		diags, err := Run(moduleDir, DefaultConfig(), "./...")
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repository is not clean: %v", diags)
		}
	}
}
