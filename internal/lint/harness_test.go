package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness: each analyzer test points at a directory under
// testdata/src containing a small synthetic package whose lines carry
// `// want `regex`` comments on every line expected to produce a
// finding. The harness type-checks the fixture, runs one analyzer with
// a fixture-local Config, and fails on any unmatched finding or
// unsatisfied want.

// moduleDir is the repository root (tests run with the package directory
// as working directory).
const moduleDir = "../.."

// A want comment expects a finding on its own line; the optional signed
// offset (`// want-1 ...`) shifts the expected line, for findings that
// land on comment lines (the annotation analyzer reports on the
// //lint:ordered line itself, which cannot also hold a want).
var wantRe = regexp.MustCompile("// want([+-][0-9]+)? `([^`]+)`")

// runFixture applies one analyzer to testdata/src/<name> under cfg and
// diffs the findings against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, cfg *Config, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadFixture(moduleDir, dir)
	if err != nil {
		t.Fatal(err)
	}
	diffWants(t, dir, RunAnalyzers(pkg, cfg, []*Analyzer{a}))
}

// runProgramFixture applies one whole-program analyzer to a fixture
// package, treated as the entire program, and diffs the findings against
// the fixture's want comments. cfg.DeterministicPkgs must include the
// fixture path ("fixture/<name>") for the analyzer to look at it.
func runProgramFixture(t *testing.T, a *ProgramAnalyzer, cfg *Config, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadFixture(moduleDir, dir)
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg}, cfg)
	diffWants(t, dir, RunProgramAnalyzers(prog, cfg, []*ProgramAnalyzer{a}))
}

// diffWants fails on any finding without a matching want comment and any
// want comment without a matching finding.
func diffWants(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	wants := scanWants(t, dir)
	matched := make(map[wantKey]bool)
	for _, d := range diags {
		key := wantKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
		re, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding at %s:%d: %s", key.file, key.line, d.Message)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("finding at %s:%d does not match want %q: %s", key.file, key.line, re, d.Message)
			continue
		}
		matched[key] = true
	}
	for key, re := range wants {
		if !matched[key] {
			t.Errorf("missing finding at %s:%d matching %q", key.file, key.line, re)
		}
	}
}

type wantKey struct {
	file string
	line int
}

// scanWants collects the `// want` comments of every fixture file,
// keyed by (basename, line).
func scanWants(t *testing.T, dir string) map[wantKey]*regexp.Regexp {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[wantKey]*regexp.Regexp)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[2])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, m[2], err)
			}
			at := i + 1
			if m[1] != "" {
				off, err := strconv.Atoi(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want offset %q: %v", e.Name(), i+1, m[1], err)
				}
				at += off
			}
			wants[wantKey{file: e.Name(), line: at}] = re
		}
	}
	return wants
}

// fixtureConfig returns a minimal Config for fixtures: only the RNG
// package registration is shared with the real registry; the structural
// registries are built per test.
func fixtureConfig() *Config {
	return &Config{RNGPackage: "cbar/internal/rng"}
}
