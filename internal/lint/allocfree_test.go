package lint

import "testing"

// TestAllocFreeFixture drives the allocfree analyzer over a synthetic
// hot loop with the hot/cold/pooled registries populated fixture-locally.
func TestAllocFreeFixture(t *testing.T) {
	const p = "fixture/allocfree"
	cfg := fixtureConfig()
	cfg.DeterministicPkgs = []string{p}
	cfg.HotPath = []string{p + ".Engine.step"}
	cfg.HotPathMethods = []string{"Route"}
	cfg.ColdPath = []string{p + ".Engine.audit"}
	cfg.PooledSlices = []FieldRef{{Type: p + ".Engine", Field: "ring"}}
	runProgramFixture(t, AllocFree, cfg, "allocfree")
}
