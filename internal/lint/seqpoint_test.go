package lint

import "testing"

func TestSequentialPointDirect(t *testing.T) {
	const p = "fixture/seqpoint_direct"
	cfg := fixtureConfig()
	cfg.BarrierOnly = map[string][]string{
		p + ".Net.replay": {p + ".Net.Step"},
	}
	runFixture(t, SequentialPoint, cfg, "seqpoint_direct")
}

func TestSequentialPointReachability(t *testing.T) {
	const p = "fixture/seqpoint_reach"
	cfg := fixtureConfig()
	cfg.BarrierOnly = map[string][]string{
		p + ".Net.replay": {p + ".Net.Step"},
	}
	cfg.ParallelRoots = []string{p + ".Net.worker"}
	cfg.ParallelRootMethods = []string{"Route"}
	runFixture(t, SequentialPoint, cfg, "seqpoint_reach")
}
