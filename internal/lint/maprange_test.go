package lint

import "testing"

func TestMapRange(t *testing.T) {
	runFixture(t, MapRange, fixtureConfig(), "maprange")
}
