package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
)

// The whole-program layer. The per-package analyzers (lint.go) see one
// package at a time; the two dataflow analyzers added in detlint v2
// (shardisolation, allocfree) reason about reachability from the
// parallel roots and the hot-path roots across package boundaries —
// routing-algorithm hooks in cbar/internal/routing run inside
// cbar/internal/router's phase graphs, and core's counters are mutated
// from both. Program is the shared substrate: every module package of
// one Load, a funcKey-indexed declaration table, and the call graph over
// it. It is built once per detlint invocation and shared by every
// program analyzer, so the load/type-check cost is paid once.

// ProgramAnalyzer is one named check over a whole Program.
type ProgramAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ProgramPass)
}

// ProgramAnalyzers is the whole-program half of the detlint suite.
var ProgramAnalyzers = []*ProgramAnalyzer{
	ShardIsolation,
	AllocFree,
}

// ProgramPass carries one program analyzer run.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Cfg      *Config
	Prog     *Program
	diags    *[]Diagnostic
}

// Reportf records a finding at pos. All packages of one Load share one
// FileSet, so any position from any package resolves.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FuncInfo is one analyzable function body: a declared function or
// method, or a function literal registered as a parallel callback (an
// argument to a CallbackRegistrars function — it will be invoked from
// inside a parallel section, so it is analyzed as a root of its own,
// with every captured variable treated as non-local).
type FuncInfo struct {
	// Key is the funcKey of the declaration; callback literals get a
	// synthetic "<enclosing>$cbN" key.
	Key  string
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl // nil for callback literals
	Lit  *ast.FuncLit  // non-nil for callback literals
}

// Body returns the function's statement block.
func (fi *FuncInfo) Body() *ast.BlockStmt {
	if fi.Decl != nil {
		return fi.Decl.Body
	}
	return fi.Lit.Body
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Callee string
	Pos    token.Pos
}

// Program is the cross-package view shared by the program analyzers.
type Program struct {
	Fset *token.FileSet
	Cfg  *Config
	Pkgs []*Package

	// Funcs maps funcKey → declaration info for every function declared
	// in a loaded module package (test files excluded: tests run at
	// sequential points and poke state by design).
	Funcs map[string]*FuncInfo

	// Calls is the call graph: caller funcKey → resolved call sites.
	// Calls inside function literals attribute to the enclosing
	// declaration (a closure a function builds is work that function
	// causes), except callback literals, which own their edges under
	// their synthetic key.
	Calls map[string][]CallEdge

	// callbackRoots lists the synthetic keys of function literals passed
	// to CallbackRegistrars functions, in source order.
	callbackRoots []string
}

// NewProgram indexes the packages of one Load and builds the call graph.
func NewProgram(pkgs []*Package, cfg *Config) *Program {
	prog := &Program{
		Cfg:   cfg,
		Pkgs:  pkgs,
		Funcs: make(map[string]*FuncInfo),
		Calls: make(map[string][]CallEdge),
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	registrar := make(map[string]bool, len(cfg.CallbackRegistrars))
	for _, r := range cfg.CallbackRegistrars {
		registrar[r] = true
	}
	for _, pkg := range pkgs {
		for i, f := range pkg.Syntax {
			if pkg.TestFile[i] {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := declKey(pkg.Info, fd)
				if _, dup := prog.Funcs[key]; !dup {
					prog.Funcs[key] = &FuncInfo{Key: key, Pkg: pkg, File: f, Decl: fd}
				}
				prog.indexBody(pkg, f, key, fd.Body, registrar)
			}
		}
	}
	return prog
}

// indexBody records the call edges of one function body under owner,
// splitting off callback literals as roots of their own.
func (p *Program) indexBody(pkg *Package, f *ast.File, owner string, body ast.Node, registrar map[string]bool) {
	cb := 0
	callbackLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && callbackLits[lit] {
			return false // indexed separately below
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil {
			return true
		}
		key := funcKey(fn)
		p.Calls[owner] = append(p.Calls[owner], CallEdge{Callee: key, Pos: call.Pos()})
		if registrar[key] {
			for _, arg := range call.Args {
				lit, isLit := arg.(*ast.FuncLit)
				if !isLit {
					continue
				}
				litKey := owner + "$cb" + strconv.Itoa(cb)
				cb++
				callbackLits[lit] = true
				p.Funcs[litKey] = &FuncInfo{Key: litKey, Pkg: pkg, File: f, Lit: lit}
				p.callbackRoots = append(p.callbackRoots, litKey)
				p.indexBody(pkg, f, litKey, lit.Body, registrar)
			}
		}
		return true
	})
}

// parallelRootKeys resolves the configured parallel roots over the whole
// program: exact ParallelRoots keys, any declared method whose name is
// in ParallelRootMethods (in a deterministic package), and the callback
// literals registered through CallbackRegistrars.
func (p *Program) parallelRootKeys() []string {
	return p.rootKeys(p.Cfg.ParallelRoots, p.Cfg.ParallelRootMethods, true)
}

// hotRootKeys resolves the hot-path roots: exact HotPath keys plus any
// declared method whose name is in HotPathMethods. Callback literals are
// included too: occupancy watchers fire inside occDelta, on the hot
// path.
func (p *Program) hotRootKeys() []string {
	return p.rootKeys(p.Cfg.HotPath, p.Cfg.HotPathMethods, true)
}

func (p *Program) rootKeys(exact, methods []string, callbacks bool) []string {
	exactSet := make(map[string]bool, len(exact))
	for _, r := range exact {
		exactSet[r] = true
	}
	methodSet := make(map[string]bool, len(methods))
	for _, m := range methods {
		methodSet[m] = true
	}
	var roots []string
	for key, fi := range p.Funcs {
		if exactSet[key] {
			roots = append(roots, key)
			continue
		}
		if fi.Decl != nil && fi.Decl.Recv != nil && methodSet[fi.Decl.Name.Name] &&
			p.Cfg.IsDeterministic(fi.Pkg.Path) {
			roots = append(roots, key)
		}
	}
	if callbacks {
		roots = append(roots, p.callbackRoots...)
	}
	sort.Strings(roots)
	return roots
}

// reachable BFS-walks the call graph from roots, stopping at the keys in
// stop (reviewed cold or conduit boundaries). It returns, for every
// reached function key, the root it was first reached from (roots map to
// themselves) — the witness for diagnostics.
func (p *Program) reachable(roots []string, stop map[string]bool) map[string]string {
	via := make(map[string]string)
	queue := make([]string, 0, len(roots))
	for _, r := range roots {
		if _, seen := via[r]; !seen && !stop[r] {
			via[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, e := range p.Calls[key] {
			if _, seen := via[e.Callee]; seen || stop[e.Callee] {
				continue
			}
			via[e.Callee] = via[key]
			queue = append(queue, e.Callee)
		}
	}
	return via
}

// sortedReached orders a reachability result for deterministic output.
func sortedReached(via map[string]string) []string {
	keys := make([]string, 0, len(via))
	for k := range via {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RunProgramAnalyzers applies the given program analyzers to one
// program.
func RunProgramAnalyzers(prog *Program, cfg *Config, analyzers []*ProgramAnalyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &ProgramPass{Analyzer: a, Cfg: cfg, Prog: prog, diags: &diags}
		a.Run(pass)
	}
	sortDiagnostics(diags)
	return diags
}
