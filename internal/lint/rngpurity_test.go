package lint

import "testing"

func TestRNGPurity(t *testing.T) {
	runFixture(t, RNGPurity, fixtureConfig(), "rngpurity")
}
