package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// AllocFree is the static half of PR 1's zero-steady-state-allocation
// guarantee. The dynamic half — `cmd/bench -compare` allocation
// baselines — catches a regression after it ships; this analyzer makes
// the freelist/ring discipline reviewable at the source level. Every
// function reachable through the call graph from a hot-path root
// (Network.Step and the parallel coordinator, event handling, NIC drain,
// the routing/allocation/link phases, steady-state Inject, the
// per-cycle traffic driver, the Algorithm hook surface) is scanned for
// heap-allocating constructs:
//
//   - `make` and `new`;
//   - composite literals whose address escapes (&T{…}) and reference
//     literals (slice, map) — plain value literals (event{…}, a whole
//     struct overwrite through a freelist pointer) stay on the stack and
//     are exempt;
//   - `append` onto anything but a registered pooled backing slice
//     (PooledSlices) or a local derived from a `x[:0]` compaction
//     reslice — those reuse steady-state capacity;
//   - function literals (closure captures allocate);
//   - fmt.* calls, string concatenation and conversions to interface
//     types that box non-pointer values.
//
// Arguments of panic(...) are exempt wholesale: an invariant panic's
// message allocation is dead code on every healthy run. Other findings
// are suppressed by a `//lint:alloc <reason>` annotation on the
// construct's line (or the line above); the reason states why the
// allocation is not steady-state (warm-up freelist miss, amortized
// doubling, per-cycle coordinator cost measured in the baselines). A
// stale annotation — one suppressing nothing — is a finding, so the
// escape hatches cannot outlive the code they excuse. The ColdPath
// registry prunes reachability at reviewed cold boundaries (fault
// application, invariant sweeps) the same way conduits prune
// shardisolation.
var AllocFree = &ProgramAnalyzer{
	Name: "allocfree",
	Doc:  "hot-path functions must not heap-allocate in steady state",
	Run:  runAllocFree,
}

func runAllocFree(pp *ProgramPass) {
	cfg := pp.Cfg
	prog := pp.Prog
	cold := make(map[string]bool, len(cfg.ColdPath))
	for _, c := range cfg.ColdPath {
		cold[c] = true
	}
	via := prog.reachable(prog.hotRootKeys(), cold)

	used := make(map[*Annotation]bool)
	for _, key := range sortedReached(via) {
		fi := prog.Funcs[key]
		if fi == nil || !cfg.IsDeterministic(fi.Pkg.Path) {
			continue
		}
		aa := &allocAnalysis{pp: pp, fi: fi, root: via[key], used: used}
		aa.run()
	}
	reportStaleAnnotations(pp, directiveAlloc, used,
		"suppresses no hot-path allocation finding")
}

// allocAnalysis scans one hot-path-reachable function.
type allocAnalysis struct {
	pp   *ProgramPass
	fi   *FuncInfo
	root string
	used map[*Annotation]bool

	// compacted holds local slice variables bound from a `x[:0]` reslice
	// (and kept there by self-appends): appending to them reuses pooled
	// capacity.
	compacted map[types.Object]bool
}

func (aa *allocAnalysis) run() {
	aa.compacted = make(map[types.Object]bool)
	info := aa.fi.Pkg.Info

	// First pass: find the compaction-reslice locals.
	ast.Inspect(aa.fi.Body(), func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, lhs := range st.Lhs {
			id, isID := ast.Unparen(lhs).(*ast.Ident)
			if !isID {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(st.Rhs[i]).(type) {
			case *ast.SliceExpr:
				if isZeroReslice(info, rhs) {
					aa.compacted[obj] = true
				}
			case *ast.CallExpr:
				// v = append(v, …) keeps v in the compacted set.
				if fun, isID := ast.Unparen(rhs.Fun).(*ast.Ident); isID && fun.Name == "append" {
					if _, isB := info.Uses[fun].(*types.Builtin); isB && len(rhs.Args) > 0 {
						if src, isID := ast.Unparen(rhs.Args[0]).(*ast.Ident); isID {
							srcObj := info.Uses[src]
							if srcObj != nil && srcObj == obj {
								continue // self-append: membership unchanged
							}
						}
					}
				}
			}
		}
		return true
	})

	// Second pass: flag the allocating constructs, skipping panic
	// arguments.
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return m == n
			}
			if call, ok := m.(*ast.CallExpr); ok && isPanicCall(info, call) {
				return false // invariant panics are dead on healthy runs
			}
			aa.checkNode(m)
			return true
		})
	}
	walk(aa.fi.Body())
}

// checkNode vets one syntax node for hot-path allocation.
func (aa *allocAnalysis) checkNode(n ast.Node) {
	info := aa.fi.Pkg.Info
	switch x := n.(type) {
	case *ast.CallExpr:
		fun := ast.Unparen(x.Fun)
		if id, ok := fun.(*ast.Ident); ok {
			if _, isB := info.Uses[id].(*types.Builtin); isB {
				switch id.Name {
				case "make":
					aa.flag(x.Pos(), "make allocates")
				case "new":
					aa.flag(x.Pos(), "new allocates")
				case "append":
					aa.checkAppend(x)
				}
				return
			}
		}
		if fn := calleeFunc(info, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			aa.flag(x.Pos(), "fmt."+fn.Name()+" allocates (formatting, interface boxing)")
			return
		}
		aa.checkBoxing(x)
	case *ast.CompositeLit:
		// Reference literals always allocate; value literals only when
		// their address is taken — the UnaryExpr case catches those.
		if t := info.TypeOf(x); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				aa.flag(x.Pos(), "slice literal allocates")
			case *types.Map:
				aa.flag(x.Pos(), "map literal allocates")
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				aa.flag(lit.Pos(), "escaping composite literal (&T{…}) allocates")
			}
		}
	case *ast.FuncLit:
		aa.flag(x.Pos(), "function literal allocates (closure capture)")
	case *ast.BinaryExpr:
		if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
			aa.flag(x.Pos(), "string concatenation allocates")
		}
	case *ast.AssignStmt:
		if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info.TypeOf(x.Lhs[0])) {
			aa.flag(x.Pos(), "string concatenation allocates")
		}
	}
}

// checkAppend vets one append call: pooled backing slices and compaction
// reslices reuse steady-state capacity, anything else may grow.
func (aa *allocAnalysis) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	info := aa.fi.Pkg.Info
	dst := ast.Unparen(call.Args[0])

	// Strip index expressions: src.outbox[t] pools on (netShard, outbox).
	base := dst
	for {
		if ix, ok := base.(*ast.IndexExpr); ok {
			base = ast.Unparen(ix.X)
			continue
		}
		break
	}
	if owner, field, ok := selectorRef(info, base); ok &&
		fieldRefIn(aa.pp.Cfg.PooledSlices, owner, field) {
		return
	}
	if id, ok := base.(*ast.Ident); ok {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && aa.compacted[obj] {
			return
		}
	}
	if isZeroReslice(info, dst) {
		return // append(x[:0], …) reuses x's capacity
	}
	aa.flag(call.Pos(), "append onto a non-pooled slice may grow (register in PooledSlices or compact with [:0])")
}

// checkBoxing flags arguments boxed into interface parameters: passing a
// non-pointer concrete value where an interface is expected allocates.
func (aa *allocAnalysis) checkBoxing(call *ast.CallExpr) {
	info := aa.fi.Pkg.Info
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
			continue // pointer-shaped: no box
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		aa.flag(arg.Pos(), "interface conversion boxes a non-pointer value")
	}
}

// flag reports one hot-path allocation, unless a //lint:alloc annotation
// with a reason covers its line.
func (aa *allocAnalysis) flag(pos token.Pos, what string) {
	pkg := aa.fi.Pkg
	line := pkg.Fset.Position(pos).Line
	if a := pkg.annotationAt(aa.fi.File, line, directiveAlloc); a != nil && a.Reason != "" {
		aa.used[a] = true
		return
	}
	aa.pp.Reportf(pos,
		"%s in a hot-path function (reachable from %s); reuse pooled state or annotate //lint:alloc with why this is not steady-state",
		what, aa.root)
}

// isZeroReslice recognizes x[:0] (and x[0:0]): a compaction reslice that
// reuses x's backing array.
func isZeroReslice(info *types.Info, e ast.Expr) bool {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || se.High == nil {
		return false
	}
	if !isIntLiteral(info, se.High, 0) {
		return false
	}
	return se.Low == nil || isIntLiteral(info, se.Low, 0)
}

func isIntLiteral(info *types.Info, e ast.Expr, want int64) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v == want
}

// isStringType reports whether t's underlying type is a string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}
