package lint

import "testing"

func TestAnnotationCheck(t *testing.T) {
	runFixture(t, AnnotationCheck, fixtureConfig(), "annotation")
}
