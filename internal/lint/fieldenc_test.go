package lint

import "testing"

func TestFieldEnc(t *testing.T) {
	const p = "fixture/fieldenc"
	cfg := fixtureConfig()
	cfg.Fields = []FieldRule{
		{Type: p + ".Port", Field: "occ", Writers: []string{p + ".Router.occDelta"}},
		{Type: p + ".Port", Field: "credits", Writers: []string{p + ".newRouter"}},
	}
	runFixture(t, FieldEnc, cfg, "fieldenc")
}
