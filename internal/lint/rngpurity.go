package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// RNGPurity enforces the randomness contract of the deterministic
// packages: every random decision must come from the sanctioned PCG
// streams, seeded only from (run seed, entity id).
//
//   - math/rand and math/rand/v2 are banned outright: their global
//     generators are shared mutable state and their sequences are not
//     pinned across Go releases.
//   - time.Now/Since/Until are banned: wall-clock input makes two runs
//     of the same seed diverge.
//   - rng.New / (*rng.PCG).Seed calls are vetted: the seed argument must
//     be derived from a seed-named value (net.seed, cfg.Seed,
//     fc.RandomSeed, a `seed` parameter…), a constant, or another
//     sanctioned stream (Split-style derivation); neither argument may
//     contain calls other than conversions and rng-stream methods.
//   - seeding from inside an unordered map range is banned even when the
//     arguments look pure: the (iteration order → stream assignment)
//     coupling is exactly the bug class the contract exists for.
var RNGPurity = &Analyzer{
	Name:  "rngpurity",
	Doc:   "forbid wall-clock and unseeded/misseeded randomness in deterministic packages",
	Tests: true,
	Run:   runRNGPurity,
}

// bannedImports are rejected in deterministic packages.
var bannedImports = map[string]string{
	"math/rand":    "shared global generator, not reproducible across Go releases",
	"math/rand/v2": "process-seeded generator, not reproducible",
}

// bannedTimeFuncs are the wall-clock entry points rejected in
// deterministic packages.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runRNGPurity(pass *Pass) {
	pass.files(func(f *ast.File) {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := bannedImports[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s: %s; use %s streams instead", path, why, pass.Cfg.RNGPackage)
			}
		}
		pass.inspectUnordered(f, pass.checkRNGNode)
	})
}

// checkRNGNode vets one AST node: banned time calls, and seeding calls.
func (pass *Pass) checkRNGNode(n ast.Node, inUnorderedRange bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "time" && bannedTimeFuncs[fn.Name()]:
		pass.Reportf(call.Pos(), "call to time.%s: wall-clock input breaks run reproducibility", fn.Name())
	case fn.Pkg().Path() == pass.Cfg.RNGPackage && (fn.Name() == "New" || fn.Name() == "Seed"):
		if inUnorderedRange {
			pass.Reportf(call.Pos(), "%s.%s inside an unordered map range: stream assignment would depend on iteration order", fn.Pkg().Name(), fn.Name())
			return
		}
		if len(call.Args) >= 1 && !pass.seedDerived(call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(),
				"%s.%s seed argument %q is not derived from a seed value: derive every stream from (run seed, entity id) or an existing stream",
				fn.Pkg().Name(), fn.Name(), exprString(call.Args[0]))
		}
		if len(call.Args) >= 2 && !pass.pureStreamArg(call.Args[1]) {
			pass.Reportf(call.Args[1].Pos(),
				"%s.%s stream argument %q contains an impure call: use the entity id (and constants) only",
				fn.Pkg().Name(), fn.Name(), exprString(call.Args[1]))
		}
	}
}

// seedDerived reports whether e is acceptably seed-derived: a constant,
// a seed-named identifier/field, a sanctioned-stream method call
// (Split-style derivation), a conversion of one of those, or an
// arithmetic combination in which at least one operand is seed-derived
// and the rest are pure.
func (pass *Pass) seedDerived(e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return true // constant expression
	}
	switch v := e.(type) {
	case *ast.Ident:
		return hasSeedName(v.Name)
	case *ast.SelectorExpr:
		return hasSeedName(v.Sel.Name)
	case *ast.UnaryExpr:
		return pass.seedDerived(v.X)
	case *ast.BinaryExpr:
		return (pass.seedDerived(v.X) && pass.pureStreamArg(v.Y)) ||
			(pass.pureStreamArg(v.X) && pass.seedDerived(v.Y))
	case *ast.CallExpr:
		if pass.isConversion(v) && len(v.Args) == 1 {
			return pass.seedDerived(v.Args[0])
		}
		return pass.isRNGStreamCall(v)
	}
	return false
}

// pureStreamArg reports whether e is free of calls other than
// conversions and sanctioned-stream methods: identifiers (entity ids),
// constants, arithmetic over them.
func (pass *Pass) pureStreamArg(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.isConversion(call) || pass.isRNGStreamCall(call) {
			return true
		}
		pure = false
		return false
	})
	return pure
}

// isConversion reports whether call is a type conversion (uint64(x)).
func (pass *Pass) isConversion(call *ast.CallExpr) bool {
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// isRNGStreamCall reports whether call invokes a function or method of
// the sanctioned RNG package (p.Uint64(), p.Split(), rng.New(...)):
// deriving new streams from existing ones is the sanctioned pattern.
func (pass *Pass) isRNGStreamCall(call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pass.Cfg.RNGPackage
}

// exprString renders a short source form of e for diagnostics.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
