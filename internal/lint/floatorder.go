package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder flags floating-point accumulation inside loops whose
// iteration order is nondeterministic. Float addition is not
// associative: summing latencies over a map range produces
// run-dependent low bits, which the bit-identical-trace contract (and
// the CI regression gates comparing aggregate metrics) cannot absorb.
// Any compound float assignment (+=, -=, *=, /=) lexically inside an
// unannotated map or channel range is a finding; fix by accumulating
// over sorted keys, by summing into per-key slots reduced later in a
// fixed order, or by annotating the loop with `//lint:ordered <reason>`
// when the accumulation is provably order-free (e.g. integer-valued
// floats within exact range).
var FloatOrder = &Analyzer{
	Name:  "floatorder",
	Doc:   "no float accumulation in loops with nondeterministic iteration order",
	Tests: true,
	Run:   runFloatOrder,
}

// floatAccumOps are the compound assignment operators whose repeated
// application is order-sensitive on floats.
var floatAccumOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func runFloatOrder(pass *Pass) {
	pkg := pass.Pkg
	pass.files(func(f *ast.File) {
		pass.inspectUnordered(f, func(n ast.Node, inUnordered bool) {
			if !inUnordered {
				return
			}
			st, ok := n.(*ast.AssignStmt)
			if !ok || !floatAccumOps[st.Tok] || len(st.Lhs) != 1 {
				return
			}
			if !isFloatType(pkg.Info.TypeOf(st.Lhs[0])) {
				return
			}
			pass.Reportf(st.TokPos,
				"float %s inside a range with nondeterministic iteration order: accumulation order changes the result bits; sort the keys or reduce into per-key slots",
				st.Tok)
		})
	})
}

// isFloatType reports whether t's underlying type is a float or complex
// basic type.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
