package lint

import "testing"

func TestFloatOrder(t *testing.T) {
	runFixture(t, FloatOrder, fixtureConfig(), "floatorder")
}
