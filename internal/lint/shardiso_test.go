package lint

import "testing"

// TestShardIsolationFixture drives the shardisolation analyzer over a
// synthetic mini-engine with every registry populated fixture-locally.
func TestShardIsolationFixture(t *testing.T) {
	const p = "fixture/shardiso"
	cfg := fixtureConfig()
	cfg.DeterministicPkgs = []string{p}
	cfg.ParallelRoots = []string{p + ".Net.stepShard", p + ".Net.handle"}
	cfg.ParallelRootMethods = []string{"Route"}
	cfg.GlobalStateTypes = []string{p + ".Net"}
	cfg.ShardTables = []FieldRef{{Type: p + ".Net", Field: "routers"}}
	cfg.CrossShardFields = []FieldRef{{Type: p + ".Pkt", Field: "dst"}}
	cfg.ShardConduits = []string{p + ".Net.send"}
	cfg.CallbackRegistrars = []string{p + ".Net.watch"}
	cfg.IndexPreservingFuncs = []string{p + ".Topo.routerOf"}
	runProgramFixture(t, ShardIsolation, cfg, "shardiso")
}
