package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader. detlint cannot assume golang.org/x/tools is vendored (the
// module has no third-party dependencies and builds offline), so package
// loading is done with the standard library only:
//
//   - `go list -test -export -deps -json` enumerates every package the
//     requested patterns reach, including test-only dependencies, and —
//     thanks to -export — the compiler export-data file of each standard
//     library package (built into the local build cache, no network).
//   - Standard-library imports are resolved through go/importer's "gc"
//     importer reading those export files.
//   - Module-local packages are parsed and type-checked from source, so
//     the analyzers see full syntax plus go/types information for every
//     package in this repository, test files included.
//
// The result mirrors the relevant subset of golang.org/x/tools/go/
// packages: one Package per module package, carrying the fileset, syntax,
// *types.Package and *types.Info the analyzers need.

// Package is one type-checked module package presented to analyzers.
type Package struct {
	// Path is the import path ("cbar/internal/router").
	Path string
	// Fset positions every file of every package of this load.
	Fset *token.FileSet
	// Syntax holds the parsed files: GoFiles then TestGoFiles.
	Syntax []*ast.File
	// TestFile marks, per Syntax entry, whether it is a _test.go file.
	TestFile []bool
	// Types and Info are the type-checking results over Syntax.
	Types *types.Package
	Info  *types.Info

	// annotations maps file → source line → the //lint:<directive>
	// annotations found there (see annotations.go).
	annotations map[*ast.File]map[int][]*Annotation
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Standard     bool
	Export       string
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// loader resolves imports for one Load call.
type loader struct {
	dir  string
	fset *token.FileSet

	mu     sync.Mutex
	listed map[string]*listedPackage
	// bare caches module packages type-checked WITHOUT their test files —
	// the form other packages import (test files may create import cycles
	// that non-test compilation units cannot, so imports never see them).
	bare    map[string]*types.Package
	loading map[string]bool
	gc      types.Importer
}

// Load lists, parses and type-checks the packages matched by patterns,
// resolved relative to dir (the module root). It returns one Package per
// module package, test files included, sorted by import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld := &loader{
		dir:     dir,
		fset:    token.NewFileSet(),
		listed:  make(map[string]*listedPackage),
		bare:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)
	if err := ld.list(append([]string{"-test"}, patterns...)); err != nil {
		return nil, err
	}

	var roots []string
	for path, lp := range ld.listed {
		if lp.Standard || lp.ForTest != "" || strings.HasSuffix(path, ".test") {
			continue
		}
		if !ld.inPatterns(lp, patterns) {
			continue
		}
		roots = append(roots, path)
	}
	sort.Strings(roots)

	pkgs := make([]*Package, 0, len(roots))
	for _, path := range roots {
		p, err := ld.loadFull(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// inPatterns reports whether lp was matched by the requested patterns
// (rather than pulled in as a dependency). `go list -deps` marks
// dependency-only entries with DepOnly, but keeping the loader's JSON
// surface minimal, the test is recomputed here: a "..." pattern matches
// by directory prefix, other patterns by exact path.
func (ld *loader) inPatterns(lp *listedPackage, patterns []string) bool {
	rel, err := filepath.Rel(ld.dir, lp.Dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") ||
				lp.ImportPath == sub || strings.HasPrefix(lp.ImportPath, sub+"/") {
				return true
			}
			continue
		}
		if rel == pat || (pat == "." && rel == ".") || lp.ImportPath == pat {
			return true
		}
	}
	return false
}

// list runs `go list -export -deps -json <args>` and merges the result
// into ld.listed.
func (ld *loader) list(args []string) error {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-deps", "-json"}, args...)...)
	cmd.Dir = ld.dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return fmt.Errorf("lint: go list: %s", lp.Error.Err)
		}
		if _, ok := ld.listed[lp.ImportPath]; !ok {
			cp := lp
			ld.listed[lp.ImportPath] = &cp
		}
	}
	return nil
}

// lookedUp returns the listing for path, lazily go-listing it when the
// initial pattern closure did not reach it (a fixture importing a
// standard-library package the module itself never uses).
func (ld *loader) lookedUp(path string) (*listedPackage, error) {
	ld.mu.Lock()
	lp := ld.listed[path]
	ld.mu.Unlock()
	if lp != nil {
		return lp, nil
	}
	if err := ld.list([]string{path}); err != nil {
		return nil, err
	}
	ld.mu.Lock()
	lp = ld.listed[path]
	ld.mu.Unlock()
	if lp == nil {
		return nil, fmt.Errorf("lint: package %q not found", path)
	}
	return lp, nil
}

// lookupExport opens the compiler export data of a (standard library)
// package for the gc importer.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	lp, err := ld.lookedUp(path)
	if err != nil {
		return nil, err
	}
	if lp.Export == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(lp.Export)
}

// Import implements types.Importer: module-local packages are
// type-checked from source (without test files), everything else through
// compiler export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	lp, err := ld.lookedUp(path)
	if err != nil {
		return nil, err
	}
	if lp.Standard {
		return ld.gc.Import(path)
	}
	return ld.loadBare(lp)
}

// loadBare type-checks a module package from its non-test sources,
// memoized. Import cycles cannot occur among non-test compilation units
// (the go tool rejects them), but the guard turns any future surprise
// into an error instead of a hang.
func (ld *loader) loadBare(lp *listedPackage) (*types.Package, error) {
	ld.mu.Lock()
	if p, ok := ld.bare[lp.ImportPath]; ok {
		ld.mu.Unlock()
		return p, nil
	}
	if ld.loading[lp.ImportPath] {
		ld.mu.Unlock()
		return nil, fmt.Errorf("lint: import cycle through %q", lp.ImportPath)
	}
	ld.loading[lp.ImportPath] = true
	ld.mu.Unlock()

	files, err := ld.parseFiles(lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: ld}
	p, err := conf.Check(lp.ImportPath, ld.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	ld.mu.Lock()
	ld.bare[lp.ImportPath] = p
	delete(ld.loading, lp.ImportPath)
	ld.mu.Unlock()
	return p, nil
}

// loadFull type-checks a module package including its in-package test
// files, producing the Package analyzers run over.
func (ld *loader) loadFull(path string) (*Package, error) {
	lp, err := ld.lookedUp(path)
	if err != nil {
		return nil, err
	}
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("lint: %s uses cgo, unsupported", path)
	}
	files, err := ld.parseFiles(lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	testFile := make([]bool, len(files))
	testFiles, err := ld.parseFiles(lp.Dir, lp.TestGoFiles)
	if err != nil {
		return nil, err
	}
	for range testFiles {
		testFile = append(testFile, true)
	}
	files = append(files, testFiles...)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	tp, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s (with tests): %v", path, err)
	}
	pkg := &Package{
		Path:     path,
		Fset:     ld.fset,
		Syntax:   files,
		TestFile: testFile,
		Types:    tp,
		Info:     info,
	}
	pkg.scanAnnotations()

	// External (_test-package) test files form a separate compilation
	// unit importing the package under test; they are analyzed as part of
	// this Package load when present, type-checked against the
	// with-tests package so export_test.go helpers resolve.
	if len(lp.XTestGoFiles) > 0 {
		xfiles, err := ld.parseFiles(lp.Dir, lp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		xinfo := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		xconf := types.Config{Importer: &overrideImporter{ld: ld, path: path, pkg: tp}}
		if _, err := xconf.Check(path+"_test", ld.fset, xfiles, xinfo); err != nil {
			return nil, fmt.Errorf("lint: type-checking %s_test: %v", path, err)
		}
		// Fold the external test files into the same Package record: the
		// analyzers treat them as test files of the package under test.
		// Their identifiers resolve through the merged Info maps.
		for e, tv := range xinfo.Types {
			info.Types[e] = tv
		}
		for id, o := range xinfo.Defs {
			info.Defs[id] = o
		}
		for id, o := range xinfo.Uses {
			info.Uses[id] = o
		}
		for s, sel := range xinfo.Selections {
			info.Selections[s] = sel
		}
		for n, o := range xinfo.Implicits {
			info.Implicits[n] = o
		}
		for n, s := range xinfo.Scopes {
			info.Scopes[n] = s
		}
		for _, f := range xfiles {
			pkg.Syntax = append(pkg.Syntax, f)
			pkg.TestFile = append(pkg.TestFile, true)
		}
		pkg.scanAnnotations()
	}
	return pkg, nil
}

// overrideImporter resolves the package under test to its with-tests
// incarnation (so export_test.go symbols are visible to the external
// test package) and everything else through the regular loader.
type overrideImporter struct {
	ld   *loader
	path string
	pkg  *types.Package
}

func (o *overrideImporter) Import(path string) (*types.Package, error) {
	if path == o.path {
		return o.pkg, nil
	}
	return o.ld.Import(path)
}

func (ld *loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadFixture parses and type-checks a single fixture directory as one
// package (path = "fixture/<dirname>"), resolving its imports through a
// fresh loader rooted at moduleDir. The fixture harness (see
// harness_test.go) runs analyzers over the result.
func LoadFixture(moduleDir, fixtureDir string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", fixtureDir)
	}
	ld := &loader{
		dir:     moduleDir,
		fset:    token.NewFileSet(),
		listed:  make(map[string]*listedPackage),
		bare:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)
	files, err := ld.parseFiles(fixtureDir, names)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	path := "fixture/" + filepath.Base(fixtureDir)
	conf := types.Config{Importer: ld}
	tp, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %v", fixtureDir, err)
	}
	pkg := &Package{
		Path:     path,
		Fset:     ld.fset,
		Syntax:   files,
		TestFile: make([]bool, len(files)),
		Types:    tp,
		Info:     info,
	}
	pkg.scanAnnotations()
	return pkg, nil
}
