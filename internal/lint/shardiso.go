package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardIsolation turns PR 4's hand-written determinism argument —
// "within a parallel section no shard reads or writes another shard's
// state" — into a checked whole-program invariant. Every function
// reachable through the call graph from a parallel root (the shard
// worker bodies, the Algorithm hook surface, occupancy-watcher
// callbacks) is analyzed with a field-granular locality dataflow:
//
//   - The receiver and parameters start out assumed shard-local — that
//     is the caller's obligation — unless their type is registered
//     globally shared (GlobalStateTypes: Network, core.GroupDirty). The
//     assumption is then discharged interprocedurally: every reachable
//     call site re-evaluates its arguments under the caller's own
//     dataflow, and a parameter that is ever handed a non-local value is
//     demoted, cascading through the call graph to a fixpoint. At the
//     roots the obligation holds by construction — the shard scheduler
//     hands each worker only its own shard.
//   - Locality propagates structurally: fields and method results of
//     local values are local; indexing a registered shard table
//     (Network.Routers, Network.nics, …) with a locally-derived index is
//     local; a registered index-preserving topology accessor maps local
//     arguments to a local result; fresh values (composite literals,
//     new/make) are local.
//   - Reading a registered cross-shard field (Packet.DstRouter, an input
//     port's upstream coordinates, an output port's peer coordinates)
//     yields a non-local value: indexing a shard table with it reaches
//     another shard's router.
//
// A write (assignment, op-assignment, ++/--) whose target's container is
// not provably local is a finding, unless the enclosing function is a
// registered cross-shard conduit (ShardConduits — the mailbox append and
// the GroupDirty shard lanes, whose bodies are the reviewed cross-shard
// channels) or the write carries a `//lint:sharded <reason>` annotation.
// Function literals registered through CallbackRegistrars are analyzed
// as parallel roots of their own with every captured variable non-local
// (the closure fires on whatever shard trips it). Stale annotations
// (suppressing nothing) are findings themselves.
var ShardIsolation = &ProgramAnalyzer{
	Name: "shardisolation",
	Doc:  "writes reachable from a parallel root must target provably shard-local state",
	Run:  runShardIsolation,
}

func runShardIsolation(pp *ProgramPass) {
	cfg := pp.Cfg
	prog := pp.Prog
	conduit := make(map[string]bool, len(cfg.ShardConduits))
	for _, c := range cfg.ShardConduits {
		conduit[c] = true
	}
	// Conduits stop reachability too: the code a conduit body runs is
	// part of the reviewed cross-shard channel.
	via := prog.reachable(prog.parallelRootKeys(), conduit)

	iso := &shardIso{
		pp:   pp,
		envs: make(map[string]*shardAnalysis),
		used: make(map[*Annotation]bool),
	}
	keys := make([]string, 0, len(via))
	for _, key := range sortedReached(via) {
		fi := prog.Funcs[key]
		if fi == nil || !cfg.IsDeterministic(fi.Pkg.Path) {
			continue
		}
		sa := &shardAnalysis{pp: pp, fi: fi, root: via[key], used: iso.used}
		sa.seed()
		iso.envs[key] = sa
		keys = append(keys, key)
	}

	// Interprocedural fixpoint: solve each function's local dataflow,
	// demote callee parameters handed non-local arguments, re-solve the
	// demoted callees. Locality only ever decreases, so this terminates.
	queue := append([]string(nil), keys...)
	inQueue := make(map[string]bool, len(queue))
	for _, k := range queue {
		inQueue[k] = true
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		inQueue[key] = false
		sa := iso.envs[key]
		sa.solve()
		for _, demoted := range iso.propagate(sa) {
			if !inQueue[demoted] {
				inQueue[demoted] = true
				queue = append(queue, demoted)
			}
		}
	}

	for _, key := range keys {
		iso.envs[key].checkWrites()
	}
	reportStaleAnnotations(pp, directiveSharded, iso.used,
		"suppresses no shard-isolation finding")
}

// shardIso is the whole-program state of one shardisolation run.
type shardIso struct {
	pp   *ProgramPass
	envs map[string]*shardAnalysis
	used map[*Annotation]bool
}

// propagate re-evaluates every resolved call site of one solved function
// and demotes callee parameters handed non-local arguments, returning
// the keys of callees that changed.
func (iso *shardIso) propagate(sa *shardAnalysis) []string {
	info := sa.fi.Pkg.Info
	var changed []string
	ast.Inspect(sa.fi.Body(), func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		callee := iso.envs[funcKey(fn)]
		if callee == nil || callee == sa {
			return true
		}
		any := false
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if s, found := info.Selections[sel]; found && s.Kind() == types.MethodVal {
				if !sa.localExpr(sel.X) && callee.demoteRecv() {
					any = true
				}
			}
		}
		params := callee.paramObjs()
		for i, arg := range call.Args {
			j := i
			if j >= len(params) {
				j = len(params) - 1 // variadic tail
			}
			if j < 0 {
				break
			}
			if !sa.localExpr(arg) && callee.demote(params[j]) {
				any = true
			}
		}
		if any {
			changed = append(changed, callee.fi.Key)
		}
		return true
	})
	return changed
}

// reportStaleAnnotations flags every annotation of the directive, in a
// deterministic package's non-test files, that did not suppress a
// finding, plus annotations with no reason. Shared by shardisolation and
// allocfree.
func reportStaleAnnotations(pp *ProgramPass, directive string, used map[*Annotation]bool, why string) {
	for _, pkg := range pp.Prog.Pkgs {
		if !pp.Cfg.IsDeterministic(pkg.Path) {
			continue
		}
		for i, f := range pkg.Syntax {
			if pkg.TestFile[i] {
				continue
			}
			for _, anns := range pkg.annotations[f] {
				for _, a := range anns {
					if a.Directive != directive {
						continue
					}
					if a.Reason == "" {
						pp.Reportf(a.Pos, "//lint:%s annotation without a reason: a reviewed escape hatch must say why", directive)
						continue
					}
					if !used[a] {
						pp.Reportf(a.Pos, "stale //lint:%s annotation: %s", directive, why)
					}
				}
			}
		}
	}
}

// shardAnalysis is the per-function locality dataflow.
type shardAnalysis struct {
	pp   *ProgramPass
	fi   *FuncInfo
	root string
	used map[*Annotation]bool

	// local maps a function-scope variable object to its locality:
	// present and true = provably shard-local; present and false =
	// tainted non-local; absent = never bound (treated non-local).
	local map[types.Object]bool

	recv   types.Object
	params []types.Object
}

// seed installs the optimistic parameter assumptions.
func (sa *shardAnalysis) seed() {
	sa.local = make(map[types.Object]bool)
	info := sa.fi.Pkg.Info
	cfg := sa.pp.Cfg

	seedList := func(fields *ast.FieldList, collect *[]types.Object) {
		if fields == nil {
			return
		}
		for _, fld := range fields.List {
			for _, name := range fld.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				sa.local[obj] = !isGlobalStateType(cfg, obj.Type())
				if collect != nil {
					*collect = append(*collect, obj)
				}
			}
		}
	}
	if sa.fi.Decl != nil {
		var recvs []types.Object
		seedList(sa.fi.Decl.Recv, &recvs)
		if len(recvs) > 0 {
			sa.recv = recvs[0]
		}
		seedList(sa.fi.Decl.Type.Params, &sa.params)
		seedList(sa.fi.Decl.Type.Results, nil)
	} else {
		// Callback literal: parameters seed like a declaration's, but
		// captured variables are absent from the map — non-local. The
		// closure runs on whatever shard fires it; only what it is handed
		// per invocation is its own.
		seedList(sa.fi.Lit.Type.Params, &sa.params)
	}
}

// paramObjs exposes the declared parameter objects in order.
func (sa *shardAnalysis) paramObjs() []types.Object { return sa.params }

// demote marks a parameter non-local, reporting whether that changed
// anything.
func (sa *shardAnalysis) demote(obj types.Object) bool {
	if obj == nil || !sa.local[obj] {
		return false
	}
	sa.local[obj] = false
	return true
}

// demoteRecv demotes the receiver.
func (sa *shardAnalysis) demoteRecv() bool { return sa.demote(sa.recv) }

// solve runs the intraprocedural fixpoint over the bindings: a variable
// is local only while every binding assigns it a local value.
// Loop-carried taint converges in a few rounds (monotone: locality only
// decreases after the first binding).
func (sa *shardAnalysis) solve() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(sa.fi.Body(), func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				changed = sa.bindAssign(st) || changed
			case *ast.ValueSpec:
				for i, name := range st.Names {
					loc := false
					if len(st.Values) == len(st.Names) {
						loc = sa.localExpr(st.Values[i])
					} else if len(st.Values) == 1 {
						loc = sa.localExpr(st.Values[0])
					} else {
						// var x T — zero value, fresh.
						loc = true
					}
					changed = sa.bindIdent(name, loc) || changed
				}
			case *ast.RangeStmt:
				loc := sa.localExpr(st.X)
				for _, e := range []ast.Expr{st.Key, st.Value} {
					if id, ok := e.(*ast.Ident); ok && id != nil {
						changed = sa.bindIdent(id, loc) || changed
					}
				}
			}
			return true
		})
	}
}

// bindAssign folds one assignment statement into the locality map,
// reporting whether anything changed.
func (sa *shardAnalysis) bindAssign(st *ast.AssignStmt) bool {
	changed := false
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				changed = sa.bindIdent(id, sa.localExpr(st.Rhs[i])) || changed
			}
		}
		return changed
	}
	// a, b := f() — every target inherits the call's locality.
	loc := false
	if len(st.Rhs) == 1 {
		loc = sa.localExpr(st.Rhs[0])
	}
	for _, lhs := range st.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			changed = sa.bindIdent(id, loc) || changed
		}
	}
	return changed
}

// bindIdent merges one binding: first sight sets, later sights AND.
func (sa *shardAnalysis) bindIdent(id *ast.Ident, loc bool) bool {
	if id.Name == "_" {
		return false
	}
	info := sa.fi.Pkg.Info
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	old, seen := sa.local[obj]
	now := loc
	if seen {
		now = old && loc
	}
	if !seen || now != old {
		sa.local[obj] = now
		return true
	}
	return false
}

// localExpr reports whether an expression provably denotes (or indexes
// into) this shard's own state.
func (sa *shardAnalysis) localExpr(e ast.Expr) bool {
	info := sa.fi.Pkg.Info
	cfg := sa.pp.Cfg
	switch x := e.(type) {
	case *ast.ParenExpr:
		return sa.localExpr(x.X)
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			return sa.local[obj]
		}
		return false
	case *ast.SelectorExpr:
		sel, ok := info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return false
		}
		if !sa.localExpr(x.X) {
			return false
		}
		owner := namedTypeKey(sel.Recv())
		if fieldRefIn(cfg.CrossShardFields, owner, x.Sel.Name) {
			// The field's value points across the shard boundary
			// (upstream/peer coordinates, a packet's destination).
			return false
		}
		if isGlobalStateType(cfg, sel.Obj().Type()) {
			// e.g. a back-pointer to the Network.
			return false
		}
		return true
	case *ast.IndexExpr:
		if owner, field, ok := selectorRef(info, x.X); ok &&
			fieldRefIn(cfg.ShardTables, owner, field) {
			// A shard table: the element is local exactly when the index
			// is derived from this shard's own ids.
			return sa.localExpr(x.Index)
		}
		return sa.localExpr(x.X)
	case *ast.StarExpr:
		return sa.localExpr(x.X)
	case *ast.UnaryExpr:
		return sa.localExpr(x.X)
	case *ast.BinaryExpr:
		return sa.localExpr(x.X) && sa.localExpr(x.Y)
	case *ast.SliceExpr:
		return sa.localExpr(x.X)
	case *ast.TypeAssertExpr:
		return sa.localExpr(x.X)
	case *ast.CompositeLit:
		// A fresh value: nobody else holds a reference yet.
		return true
	case *ast.CallExpr:
		return sa.localCall(x)
	}
	return false
}

// localCall classifies a call expression's result locality.
func (sa *shardAnalysis) localCall(call *ast.CallExpr) bool {
	info := sa.fi.Pkg.Info
	cfg := sa.pp.Cfg
	fun := ast.Unparen(call.Fun)

	// Type conversion: locality of the operand.
	if tv, ok := info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return sa.localExpr(call.Args[0])
	}
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "new", "make":
				return true // fresh
			case "append", "len", "cap", "min", "max":
				if len(call.Args) > 0 {
					return sa.localExpr(call.Args[0])
				}
			}
			return false
		}
	}
	if fn := calleeFunc(info, call); fn != nil {
		if funcKeyIn(cfg.IndexPreservingFuncs, funcKey(fn)) {
			// Registered topology accessor: local arguments in, local
			// index out.
			for _, a := range call.Args {
				if !sa.localExpr(a) {
					return false
				}
			}
			return true
		}
	}
	// A method called on a local receiver hands back that receiver's own
	// state (pop from an owned queue, the owned active set's id slice).
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return sa.localExpr(sel.X)
		}
	}
	return false
}

// checkWrites flags every write whose target container is not provably
// local.
func (sa *shardAnalysis) checkWrites() {
	registrar := make(map[string]bool, len(sa.pp.Cfg.CallbackRegistrars))
	for _, r := range sa.pp.Cfg.CallbackRegistrars {
		registrar[r] = true
	}
	ast.Inspect(sa.fi.Body(), func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			// Callback literals passed to registrars are analyzed as
			// roots of their own — skip them here.
			if fn := calleeFunc(sa.fi.Pkg.Info, st); fn != nil && registrar[funcKey(fn)] {
				for _, arg := range st.Args {
					if _, isLit := arg.(*ast.FuncLit); isLit {
						return false
					}
				}
			}
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				sa.checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			sa.checkTarget(st.X)
		}
		return true
	})
}

// checkTarget vets one assignment target.
func (sa *shardAnalysis) checkTarget(lhs ast.Expr) {
	e := ast.Unparen(lhs)
	info := sa.fi.Pkg.Info
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			sa.flag(e, "package-level variable "+v.Name())
		}
		return
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if !sa.localExpr(x.X) {
				sa.flag(e, exprString(e))
			}
		}
		return
	case *ast.IndexExpr:
		if !sa.localExpr(x) {
			sa.flag(e, exprString(e))
		}
		return
	case *ast.StarExpr:
		if !sa.localExpr(x.X) {
			sa.flag(e, exprString(e))
		}
		return
	}
}

// flag reports one non-local write, unless a //lint:sharded annotation
// with a reason covers its line.
func (sa *shardAnalysis) flag(e ast.Expr, target string) {
	pkg := sa.fi.Pkg
	line := pkg.Fset.Position(e.Pos()).Line
	if a := pkg.annotationAt(sa.fi.File, line, directiveSharded); a != nil && a.Reason != "" {
		sa.used[a] = true
		return
	}
	sa.pp.Reportf(e.Pos(),
		"write to %s is not provably shard-local inside a parallel section (reachable from %s); derive the target from the shard's own state, route it through a registered conduit, or annotate //lint:sharded with the ownership argument",
		target, sa.root)
}

// --- registry lookup helpers ---

// FieldRef names one field of a named type for the shard registries.
type FieldRef struct {
	// Type is the owning named type's key: "<pkgpath>.<TypeName>".
	Type string
	// Field is the field name.
	Field string
}

func fieldRefIn(refs []FieldRef, owner, field string) bool {
	for _, r := range refs {
		if r.Type == owner && r.Field == field {
			return true
		}
	}
	return false
}

func funcKeyIn(keys []string, key string) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

// selectorRef resolves an expression to (owning type key, field name)
// when it is a field selection.
func selectorRef(info *types.Info, e ast.Expr) (owner, field string, ok bool) {
	sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return "", "", false
	}
	return namedTypeKey(s.Recv()), sel.Sel.Name, true
}

// isGlobalStateType reports whether t (possibly pointer-wrapped) is a
// registered globally-shared type.
func isGlobalStateType(cfg *Config, t types.Type) bool {
	key := namedTypeKey(t)
	if key == "" {
		return false
	}
	for _, g := range cfg.GlobalStateTypes {
		if g == key {
			return true
		}
	}
	return false
}
