// Package lint implements detlint, a static-analysis suite that
// mechanically enforces the engine's determinism contracts.
//
// The simulator's headline promise — bit-identical traces at every
// worker count and across commits — is guarded dynamically by the
// equivalence tests and CheckInvariants sweeps. Those catch a violation
// after it happens, on some input. The analyzers here enforce the
// ordering rules at the source level instead, so a violation is a build
// break:
//
//   - maprange: no `range` over a map in the deterministic packages
//     unless the statement carries a `//lint:ordered <reason>`
//     annotation proving the iteration order does not escape.
//   - rngpurity: no math/rand, no time.Now, no rng seeding whose seed
//     argument is not derived from (run seed, entity id), and no
//     seeding from inside an unordered map iteration.
//   - sequentialpoint: the registered barrier-only functions (fault
//     event application, Alg.BeginCycle, delivery/notification replay)
//     may only be called from their registered sequential-point call
//     sites, never from inside the parallel phase call graphs.
//   - fieldenc: the accounting fields (occ, credit counters, active-set
//     membership, ecnHot, …) may only be assigned by their sanctioned
//     mutator functions.
//   - floatorder: no floating-point `+=` accumulation inside a loop
//     whose iteration order is not provably deterministic (map range,
//     channel range).
//   - annotation: every `//lint:ordered` annotation must carry a reason
//     and must be attached to a map or channel range statement — stale
//     annotations are findings, not dead weight.
//
// Two whole-program dataflow analyzers (see program.go) extend the suite
// across package boundaries:
//
//   - shardisolation: no write reachable from a parallel root may target
//     state that is not provably shard-local, unless it flows through a
//     registered cross-shard conduit or carries `//lint:sharded`.
//   - allocfree: no function reachable from a hot-path root may
//     heap-allocate in steady state, unless the construct is pooled or
//     carries `//lint:alloc`.
//
// The suite is configuration-driven (Config) so the fixture tests can
// point the same analyzers at small synthetic packages, and so the
// deterministic-package set can grow (the multi-topology backends will
// join it) without touching analyzer code. cmd/detlint runs the suite
// over the repository and is a hard CI gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// Tests reports whether the analyzer also covers _test.go files.
	// The structural analyzers (sequentialpoint, fieldenc) cover only
	// non-test code: tests run at sequential points by construction and
	// routinely poke state to build scenarios.
	Tests bool
	Run   func(*Pass)
}

// Analyzers is the detlint suite, in execution order.
var Analyzers = []*Analyzer{
	MapRange,
	RNGPurity,
	SequentialPoint,
	FieldEnc,
	FloatOrder,
	AnnotationCheck,
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Cfg      *Config
	Pkg      *Package
	diags    *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// files yields the syntax trees the analyzer covers (skipping test files
// unless the analyzer opts in).
func (p *Pass) files(fn func(f *ast.File)) {
	for i, f := range p.Pkg.Syntax {
		if p.Pkg.TestFile[i] && !p.Analyzer.Tests {
			continue
		}
		fn(f)
	}
}

// Config parameterizes the suite. DefaultConfig returns the repository's
// real contract registry; fixture tests build small ones of their own.
type Config struct {
	// DeterministicPkgs lists the import paths whose source must obey
	// the determinism contracts. Only these packages are analyzed.
	DeterministicPkgs []string

	// RNGPackage is the import path of the sanctioned generator package
	// (its New/Seed entry points are the seeding calls rngpurity vets).
	RNGPackage string

	// BarrierOnly maps a function key (see funcKey) to the keys of its
	// sanctioned callers. Any other call site — and in particular any
	// call reachable from a parallel phase — is a finding.
	BarrierOnly map[string][]string

	// ParallelRoots lists the function keys whose call graphs form the
	// parallel sections: nothing reachable from them may call a
	// barrier-only function.
	ParallelRoots []string

	// ParallelRootMethods lists method *names* treated as parallel roots
	// on any receiver type (the Algorithm hook surface: Route, OnHead,
	// …). New algorithm implementations inherit the rule without a
	// config edit.
	ParallelRootMethods []string

	// Fields lists the encapsulated accounting fields and their
	// sanctioned writer functions.
	Fields []FieldRule

	// --- shardisolation registries (see shardiso.go) ---

	// GlobalStateTypes lists named types ("<pkgpath>.<TypeName>") that
	// are globally shared across shards: a receiver or parameter of such
	// a type is never assumed shard-local.
	GlobalStateTypes []string

	// ShardTables lists slice/array fields partitioned by the shard id
	// ranges (Network.Routers, Network.nics, …): indexing one with a
	// locally-derived index yields shard-local state.
	ShardTables []FieldRef

	// CrossShardFields lists fields whose values point across the shard
	// boundary (a packet's destination router, an input port's upstream
	// coordinates): indexing a shard table with one reaches another
	// shard.
	CrossShardFields []FieldRef

	// ShardConduits lists the reviewed cross-shard channels (the mailbox
	// append, the GroupDirty shard lanes): their bodies are exempt from
	// the write check and stop parallel-root reachability.
	ShardConduits []string

	// IndexPreservingFuncs lists pure index-mapping functions (topology
	// accessors): local arguments in, local result out.
	IndexPreservingFuncs []string

	// CallbackRegistrars lists functions whose function-literal arguments
	// are invoked from inside parallel sections (occupancy watchers):
	// each such literal is analyzed as a parallel root of its own, with
	// captured variables treated as non-local.
	CallbackRegistrars []string

	// --- allocfree registries (see allocfree.go) ---

	// HotPath lists the function keys forming the zero-steady-state-
	// allocation hot path; everything reachable from them is scanned.
	HotPath []string

	// HotPathMethods lists method names treated as hot-path roots on any
	// receiver declared in a deterministic package (the Algorithm hook
	// surface plus BeginCycle) — new algorithm implementations inherit
	// the rule without a config edit.
	HotPathMethods []string

	// ColdPath lists reviewed cold boundaries (fault application,
	// invariant sweeps): hot-path reachability stops there.
	ColdPath []string

	// PooledSlices lists slice fields with pooled backing arrays:
	// appending to them reuses steady-state capacity and is exempt.
	PooledSlices []FieldRef
}

// FieldRule declares one encapsulated field: assignments to
// Type.Field are only sanctioned inside the Writers functions.
type FieldRule struct {
	// Type is the owning named type's key: "<pkgpath>.<TypeName>".
	Type string
	// Field is the field name.
	Field string
	// Writers are the funcKey()s of the sanctioned mutators.
	Writers []string
}

// IsDeterministic reports whether pkg path is under contract.
func (c *Config) IsDeterministic(path string) bool {
	for _, p := range c.DeterministicPkgs {
		if path == p {
			return true
		}
	}
	return false
}

// DefaultConfig returns the registry of determinism contracts for this
// repository. It is the single place the contracts live; doc.go's
// "Determinism contracts" section documents each entry.
func DefaultConfig() *Config {
	const (
		router  = "cbar/internal/router"
		routing = "cbar/internal/routing"
		traffic = "cbar/internal/traffic"
		core    = "cbar/internal/core"
		topo    = "cbar/internal/topology"
	)
	return &Config{
		DeterministicPkgs: []string{
			"cbar/internal/router",
			"cbar/internal/routing",
			"cbar/internal/sim",
			"cbar/internal/traffic",
			"cbar/internal/core",
			"cbar/internal/topology",
		},
		RNGPackage: "cbar/internal/rng",
		// The sequential-point registry. Keys and callers are funcKey()
		// strings: "<pkgpath>.<Recv>.<method>" / "<pkgpath>.<func>".
		//
		// The replay/apply family runs at the handle barrier of Step —
		// Step (sequential) and stepParallel (coordinator, workers
		// parked) are the only sanctioned call sites; BeginCycle is the
		// interface method hosting the group-wide exchanges at the same
		// barrier; mergeOutboxes is the cycle barrier itself. Calling any
		// of them from the parallel phase graphs (ParallelRoots below)
		// would race or reorder cross-shard effects.
		BarrierOnly: map[string][]string{
			router + ".Network.replayDeliveries":    {router + ".Network.Step", router + ".Network.stepParallel"},
			router + ".Network.replayNotifications": {router + ".Network.Step", router + ".Network.stepParallel"},
			router + ".Network.applyFaults":         {router + ".Network.Step", router + ".Network.stepParallel"},
			router + ".Network.applyFaultEvent":     {router + ".Network.applyFaults"},
			router + ".Network.mergeOutboxes":       {router + ".Network.stepParallel"},
			router + ".Algorithm.BeginCycle":        {router + ".Network.Step", router + ".Network.stepParallel"},
			// Quiet-cycle elision (elide.go) runs between Steps, with all
			// workers quiescent: the horizon queries read cross-shard
			// state (rings, active sets, the injector RNG) and ElideTo
			// moves the clock itself. Their only sanctioned call sites
			// are the elision-aware cycle loops.
			router + ".Network.ElideTo":      {router + ".Network.Run", router + ".Network.Drain", "cbar/internal/sim.elideStep"},
			router + ".Network.ElideHorizon": {router + ".Network.Run", router + ".Network.Drain", "cbar/internal/sim.elideStep"},
			router + ".Network.NextEventCycle": {router + ".Network.ElideHorizon"},
			router + ".Network.Quiet":          {router + ".Network.ElideHorizon"},
			traffic + ".Injector.NextArrival":  {"cbar/internal/sim.elideStep"},
			// Algorithm implementations: their BeginCycle bodies are
			// reached only through the interface dispatch above, never
			// called directly inside package routing.
			routing + ".pbAlg.BeginCycle":       {},
			routing + ".ectnAlg.BeginCycle":     {},
			routing + ".baseProbAlg.BeginCycle": {},
		},
		ParallelRoots: []string{
			router + ".Network.handle",
			router + ".Network.handleShardBucket",
			router + ".Network.stepShard",
			router + ".Network.nicDrain",
			router + ".Router.routePhase",
			router + ".Router.allocate",
			router + ".Router.grant",
			router + ".Router.linkPhase",
			router + ".Router.faultAdjust",
			router + ".Router.escapeVC",
		},
		// Any method with one of these names is a parallel root wherever
		// it is declared: the Algorithm hook surface runs inside the
		// phase graphs, so future algorithm implementations inherit the
		// rule with no config edit.
		ParallelRootMethods: []string{"Route", "OnHead", "OnArrive", "OnDequeue", "OnGrant"},
		// The accounting fields and their sanctioned mutators. occ is
		// written only by occDelta (the watcher-firing mutation point);
		// credits/outFree only by the grant path, the event handler and
		// the fault kill-reversal sweep; ecnHot only by the watcher Build
		// registers; active-set membership only by the set's own methods.
		Fields: []FieldRule{
			{Type: router + ".outPort", Field: "occ",
				Writers: []string{router + ".Router.occDelta"}},
			{Type: router + ".outPort", Field: "occCap",
				Writers: []string{router + ".newRouter"}},
			{Type: router + ".outPort", Field: "credits",
				Writers: []string{router + ".newRouter", router + ".Router.grant", router + ".Network.handle",
					router + ".Network.killStagedQueue", router + ".Network.faultScanEvent"}},
			{Type: router + ".outPort", Field: "outFree",
				Writers: []string{router + ".newRouter", router + ".Router.grant", router + ".Network.handle",
					router + ".Network.killStagedQueue", router + ".Network.faultScanEvent"}},
			{Type: router + ".outPort", Field: "ecnHot",
				Writers: []string{router + ".Build"}},
			{Type: router + ".outPort", Field: "markTh",
				Writers: []string{router + ".newRouter", router + ".Build"}},
			{Type: router + ".activeSet", Field: "ids",
				Writers: []string{router + ".activeSet.add", router + ".activeSet.setLive"}},
			{Type: router + ".activeSet", Field: "in",
				Writers: []string{router + ".activeSet.add", router + ".activeSet.drop"}},
			{Type: router + ".activeSet", Field: "sortedLen",
				Writers: []string{router + ".activeSet.sorted", router + ".activeSet.setLive"}},
		},

		// --- shardisolation (see shardiso.go) ---

		// The Network (one instance, back-pointed from every router) and
		// the GroupDirty mark aggregator (one instance, written from every
		// shard through its per-shard lanes) are the globally shared
		// types: holding one never proves locality.
		GlobalStateTypes: []string{
			router + ".Network",
			core + ".GroupDirty",
		},
		// The id-partitioned tables: shards own contiguous router, node
		// and group ranges, so indexing with a locally-derived id lands
		// in the executing shard.
		ShardTables: []FieldRef{
			{Type: router + ".Network", Field: "Routers"},
			{Type: router + ".Network", Field: "nics"},
			{Type: router + ".Network", Field: "groups"},
			{Type: router + ".Network", Field: "shards"},
		},
		// Values that point across the shard boundary: a packet's
		// endpoints and the fixed upstream/peer coordinates of ports.
		// Indexing a shard table with one of these is exactly the
		// cross-shard touch the parallel sections must not make.
		CrossShardFields: []FieldRef{
			{Type: router + ".Packet", Field: "Src"},
			{Type: router + ".Packet", Field: "Dst"},
			{Type: router + ".Packet", Field: "DstRouter"},
			{Type: router + ".Packet", Field: "Inter"},
			{Type: router + ".inPort", Field: "upRouter"},
			{Type: router + ".inPort", Field: "upPort"},
			{Type: router + ".outPort", Field: "peerRouter"},
			{Type: router + ".outPort", Field: "peerPort"},
		},
		// The reviewed cross-shard channels. scheduleFrom routes a
		// cross-shard event into the per-(src,dst) mailbox drained at the
		// cycle barrier; GroupDirty.Mark appends to the marking shard's
		// own lane (see core.GroupDirty.Shard). Direction-1 topology
		// backends must register their equivalents here.
		ShardConduits: []string{
			router + ".Network.scheduleFrom",
			core + ".GroupDirty.Mark",
		},
		// Pure id arithmetic: these map a shard-local id to another id of
		// the same component (a node's router, a router's group, …),
		// never leaving the owning shard (shards hold whole groups).
		IndexPreservingFuncs: []string{
			topo + ".Dragonfly.RouterOfNode",
			topo + ".Dragonfly.ChannelOfNode",
			topo + ".Dragonfly.NodeID",
			topo + ".Dragonfly.GroupOf",
			topo + ".Dragonfly.GroupOfNode",
			topo + ".Dragonfly.PosOf",
			topo + ".Dragonfly.RouterID",
		},
		// Occupancy watchers fire inside occDelta, on the owning shard's
		// parallel phases: every literal registered here is a parallel
		// root whose captures are non-local until reviewed.
		CallbackRegistrars: []string{
			router + ".Network.WatchOccupancy",
		},

		// --- allocfree (see allocfree.go) ---

		// The zero-steady-state-allocation roots: the cycle steppers
		// (everything per-cycle hangs off Step), steady-state injection,
		// and the per-cycle traffic driver.
		HotPath: []string{
			router + ".Network.Step",
			router + ".Network.inject",
			traffic + ".Injector.Cycle",
			// The elision horizon queries run once per quiet span (or
			// measurement bucket) on the stepping path; they must stay
			// allocation-free like the steppers they stand in for.
			router + ".Network.ElideHorizon",
			router + ".Network.NextEventCycle",
			traffic + ".Injector.NextArrival",
		},
		// The Algorithm hook surface runs per-packet/per-cycle inside the
		// phase graphs; BeginCycle hosts the per-cycle group exchanges and
		// NextAlgCycle is the per-span elision horizon query.
		HotPathMethods: []string{"Route", "OnHead", "OnArrive", "OnDequeue", "OnGrant", "BeginCycle", "NextAlgCycle"},
		// Reviewed cold boundaries: fault application runs only when a
		// plan event or kill is due, and the invariant sweeps are
		// debug/test machinery.
		ColdPath: []string{
			router + ".Network.applyFaults",
			router + ".Network.CheckInvariants",
		},
		// Slice fields with pooled backing arrays: appends reuse
		// steady-state capacity (each is compacted with [:0] or popped at
		// its drain point, never reallocated per cycle).
		PooledSlices: []FieldRef{
			{Type: router + ".netShard", Field: "ring"},
			{Type: router + ".netShard", Field: "outbox"},
			{Type: router + ".netShard", Field: "delivered"},
			{Type: router + ".netShard", Field: "notified"},
			{Type: router + ".netShard", Field: "pendingKills"},
			{Type: router + ".netShard", Field: "allocList"},
			{Type: router + ".Network", Field: "freePkts"},
			{Type: router + ".Network", Field: "notifyScratch"},
			{Type: router + ".Router", Field: "reqPorts"},
			{Type: router + ".Router", Field: "stagedPorts"},
			{Type: router + ".Router", Field: "dirtyOut"},
			{Type: router + ".activeSet", Field: "ids"},
			{Type: router + ".fifo", Field: "buf"},
			{Type: core + ".GroupDirty", Field: "lanes"},
			{Type: core + ".GroupDirty", Field: "drain"},
			{Type: traffic + ".retransmitter", Field: "heap"},
			{Type: traffic + ".calendar", Field: "heap"},
		},
	}
}

// Run loads the packages matched by patterns under dir and applies the
// full suite — the per-package analyzers to each deterministic package
// and the whole-program analyzers to the cross-package call graph —
// returning the findings sorted by position. Packages are loaded and
// type-checked exactly once, shared by all analyzers; the Program is
// built once and shared by all program analyzers.
func Run(dir string, cfg *Config, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !cfg.IsDeterministic(pkg.Path) {
			continue
		}
		diags = append(diags, RunAnalyzers(pkg, cfg, Analyzers)...)
	}
	prog := NewProgram(pkgs, cfg)
	diags = append(diags, RunProgramAnalyzers(prog, cfg, ProgramAnalyzers)...)
	sortDiagnostics(diags)
	return diags, nil
}

// RunAnalyzers applies the given analyzers to one package.
func RunAnalyzers(pkg *Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Cfg: cfg, Pkg: pkg, diags: &diags}
		a.Run(pass)
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// --- shared helpers ---

// funcKey canonicalizes a function or method for the Config registries:
// "<pkgpath>.<func>" for package functions, "<pkgpath>.<Recv>.<method>"
// for methods (pointer receivers are stripped; interface methods use the
// interface type's name).
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			obj := named.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name()
			}
			return obj.Name() + "." + fn.Name()
		}
		// Receiver is not a named type (e.g. an unnamed interface).
		if fn.Pkg() != nil {
			return fn.Pkg().Path() + ".?." + fn.Name()
		}
		return "?." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// calleeFunc resolves the *types.Func a call expression invokes (package
// function, method, or interface method), or nil for indirect calls
// through function values, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// declIndex locates the FuncDecl lexically enclosing a position, per
// file. Function literals attribute to their enclosing declaration.
type declIndex struct {
	fset  *token.FileSet
	decls []*ast.FuncDecl
}

func newDeclIndex(pkg *Package, testsToo bool) *declIndex {
	idx := &declIndex{fset: pkg.Fset}
	for i, f := range pkg.Syntax {
		if pkg.TestFile[i] && !testsToo {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				idx.decls = append(idx.decls, fd)
			}
		}
	}
	return idx
}

// enclosing returns the FuncDecl containing pos, or nil (package-level
// initializer expressions).
func (idx *declIndex) enclosing(pos token.Pos) *ast.FuncDecl {
	for _, d := range idx.decls {
		if d.Pos() <= pos && pos <= d.End() {
			return d
		}
	}
	return nil
}

// declKey returns funcKey for a declaration, via its Defs entry.
func declKey(info *types.Info, d *ast.FuncDecl) string {
	if fn, ok := info.Defs[d.Name].(*types.Func); ok {
		return funcKey(fn)
	}
	return d.Name.Name
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// hasSeedName reports whether an identifier names a seed by convention
// (contains "seed", case-insensitive): net.seed, fc.RandomSeed, seed.
func hasSeedName(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// inspectUnordered walks a file and calls visit for every node, telling
// it whether the node lies inside a range statement whose iteration
// order is nondeterministic — a range over a map or a channel that does
// not carry a //lint:ordered annotation. Shared by rngpurity and
// floatorder, which both taint effects by enclosing iteration order.
func (p *Pass) inspectUnordered(f *ast.File, visit func(n ast.Node, inUnordered bool)) {
	pkg := p.Pkg
	var walk func(n ast.Node, inUnordered bool)
	walk = func(n ast.Node, inUnordered bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return m == n
			}
			if rs, ok := m.(*ast.RangeStmt); ok {
				inner := inUnordered
				t := pkg.Info.TypeOf(rs.X)
				if (isMapType(t) || isChanType(t)) && pkg.orderedFor(f, rs) == nil {
					inner = true
				}
				visit(rs, inUnordered)
				walk(rs, inner)
				return false
			}
			visit(m, inUnordered)
			return true
		})
	}
	walk(f, false)
}
