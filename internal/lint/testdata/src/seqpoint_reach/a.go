// Package seqpoint_reach exercises the sequentialpoint analyzer's
// reachability check: nothing in the sequential-point set (barrier-only
// functions and their sanctioned callers) may be reachable through the
// call graph from a parallel root — here Net.worker (registered by key)
// and any method named Route (registered by name).
package seqpoint_reach

type Net struct {
	events  []int
	applied int
}

// replay is registered barrier-only with sanctioned caller Net.Step.
func (n *Net) replay() {
	n.applied += len(n.events)
	n.events = n.events[:0]
}

// Step is a sanctioned caller, so this call passes the direct check —
// but Step is reachable from worker below, which taints the whole
// chain; the reachability check reports here too.
func (n *Net) Step() {
	n.replay() // want `reachable from a parallel root`
}

// worker is a registered parallel root.
func (n *Net) worker() {
	n.Step() // want `reachable from a parallel root`
	n.hop()
}

// hop is an innocent-looking helper on the path root -> hop -> replay.
func (n *Net) hop() {
	n.replay() // want `sequential point`
}

type alg struct{ n *Net }

// Route is a parallel root by method name (the Algorithm hook surface).
func (a alg) Route(flit int) int {
	a.n.hop() // hop is already tainted via worker; edge itself is clean
	return flit
}

// quiet is NOT reachable from any root and calls nothing barrier-only.
func (n *Net) quiet() int {
	return n.applied
}
