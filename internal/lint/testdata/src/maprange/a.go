// Package maprange exercises the maprange analyzer: unannotated map
// ranges are findings, annotated ones and slice/array/string ranges are
// not.
package maprange

import "sort"

func bad(m map[int]int) int {
	s := 0
	for k := range m { // want `range over map`
		s += k
	}
	return s
}

func badCollect(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map`
		out = append(out, k)
	}
	return out
}

func annotatedTrailing(m map[int]int) int {
	s := 0
	for k := range m { //lint:ordered commutative integer sum; order does not escape
		s += k
	}
	return s
}

func annotatedLeading(m map[string]int) []string {
	var out []string
	//lint:ordered keys are sorted before use below
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func namedMapType(m mapAlias) int {
	n := 0
	for range m { // want `range over map`
		n++
	}
	return n
}

type mapAlias map[int]bool
