// Package annotation exercises the annotation analyzer: every
// //lint:ordered must carry a reason and must guard an actual map or
// channel range statement.
package annotation

func good(m map[int]int) int {
	s := 0
	//lint:ordered commutative integer sum; order does not escape
	for _, v := range m {
		s += v
	}
	return s
}

func goodTrailing(m map[int]int) int {
	n := 0
	for range m { //lint:ordered counting only; order does not escape
		n++
	}
	return n
}

func missingReason(m map[int]int) int {
	s := 0
	//lint:ordered
	for _, v := range m { // want-1 `without a reason`
		s += v
	}
	return s
}

func stale(xs []int) int {
	s := 0
	//lint:ordered left behind by a refactor
	for _, v := range xs { // want-1 `stale`
		s += v
	}
	return s
}

func staleNowhere() int {
	x := 1
	//lint:ordered not even near a loop
	x++ // want-1 `stale`
	return x
}
