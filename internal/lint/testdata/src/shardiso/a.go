// Package shardiso exercises the shardisolation analyzer: every write
// reachable from a parallel root must target provably shard-local state,
// flow through a registered conduit, or carry a reviewed //lint:sharded
// annotation. The fixture config (shardiso_test.go) registers Net as
// globally shared, Net.routers as a shard table, Pkt.dst as a
// cross-shard field, Net.send as the conduit, Net.watch as the callback
// registrar and Topo.routerOf as index-preserving.
package shardiso

// Pkt is an in-flight packet; dst points across the shard boundary.
type Pkt struct {
	dst  int
	hops int
}

// Shard is one worker's own state.
type Shard struct {
	id    int
	queue []*Pkt
}

// Router is an element of the Net.routers shard table.
type Router struct {
	occ int
}

// Topo provides the registered index-preserving accessor.
type Topo struct{ radix int }

func (t Topo) routerOf(node int) int { return node / t.radix }

// Net is the registered globally-shared type.
type Net struct {
	routers []*Router
	total   int
	cb      func(v int)
}

var dropped int

// stepShard is a parallel root: sh and id are the worker's own.
func (n *Net) stepShard(sh *Shard, id int) {
	sh.queue = sh.queue[:0] // ok: shard-local receiver state
	r := n.routers[id]      // ok: shard table indexed by the shard's own id
	r.occ++
	n.total++ // want `write to n\.total is not provably shard-local`
	dropped++ // want `write to package-level variable dropped is not provably shard-local`
	n.count()
}

// handle is a parallel root handed one of this shard's packets.
func (n *Net) handle(sh *Shard, p *Pkt, t Topo) {
	p.hops++ // ok: the packet is shard-owned
	mine := n.routers[t.routerOf(sh.id)]
	mine.occ++ // ok: index-preserving accessor over the shard's own id
	peer := n.routers[p.dst]
	peer.occ++ // want `write to peer\.occ is not provably shard-local`
	n.send(p.dst)
	n.leak(p.dst)
}

// send is the registered cross-shard conduit: its body is the reviewed
// channel and is not analyzed.
func (n *Net) send(dst int) {
	n.routers[dst].occ++
}

// leak launders a cross-shard index through an innocent-looking
// parameter: the call site in handle demotes dst interprocedurally.
func (n *Net) leak(dst int) {
	n.routers[dst].occ++ // want `write to n\.routers\[dst\]\.occ is not provably shard-local`
}

// count is reachable from stepShard; its annotation has no reason, so it
// suppresses nothing and is itself flagged.
func (n *Net) count() {
	// want+1 `//lint:sharded annotation without a reason`
	//lint:sharded
	n.total++ // want `write to n\.total is not provably shard-local`
}

// tidy is shard-local through and through; its annotation is stale.
func (n *Net) tidy(sh *Shard) {
	// want+1 `stale //lint:sharded annotation`
	//lint:sharded the queue is owned by this worker
	sh.queue = sh.queue[:0]
}

// watch is the registered callback registrar: fn fires inside parallel
// sections on whatever shard trips it.
func (n *Net) watch(fn func(v int)) { n.cb = fn }

// setup runs at a sequential point, but the literals it registers do
// not: their captures are non-local.
func (n *Net) setup(r *Router, lanes []bool) {
	n.watch(func(v int) {
		r.occ = v // want `write to r\.occ is not provably shard-local`
	})
	n.watch(func(v int) {
		sat := lanes
		sat[0] = v > 0 // want `write to sat\[0\] is not provably shard-local`
	})
	//lint:sharded the watcher fires on the shard that owns r's port
	n.watch(func(v int) { r.occ = v }) // ok: reviewed annotation
}

// alg's Route is a parallel root by method name (ParallelRootMethods).
type alg struct{ state int }

func (a *alg) Route(n *Net, p *Pkt) int {
	a.state++              // ok: the algorithm instance rides with the shard
	n.routers[p.dst].occ++ // want `write to n\.routers\[p\.dst\]\.occ is not provably shard-local`
	return p.dst
}
