// Package allocfree exercises the allocfree analyzer: functions
// reachable from a hot-path root must not heap-allocate in steady state.
// The fixture config (allocfree_test.go) registers Engine.step as the
// hot root, Route as a hot root method, Engine.audit as the reviewed
// cold boundary and Engine.ring as a pooled backing slice.
package allocfree

import "fmt"

// Pkt is a freelist-managed packet.
type Pkt struct {
	id   int
	next *Pkt
}

// Engine is the mini hot loop.
type Engine struct {
	ring  []*Pkt
	seen  []int
	free  *Pkt
	name  string
	count int
}

// step is the hot-path root.
func (e *Engine) step(now int) {
	if now < 0 {
		panic(fmt.Sprintf("negative cycle %d", now)) // ok: panic arguments are exempt
	}
	p := e.pop()
	*p = Pkt{id: now}                // ok: value overwrite through a freelist pointer
	e.ring = append(e.ring, p)       // ok: registered pooled slice
	tmp := e.seen[:0]                // compaction reslice: tmp reuses seen's capacity
	tmp = append(tmp, now)           // ok: compacted local
	e.seen = append(e.seen[:0], now) // ok: direct append onto a compaction reslice
	_ = tmp
	buf := make([]int, 4) // want `make allocates`
	_ = buf
	e.grow(now)
	e.audit() // the cold boundary: audit's body is exempt
}

// pop is hot via step; its warm-up miss is a reviewed escape hatch.
func (e *Engine) pop() *Pkt {
	p := e.free
	if p == nil {
		//lint:alloc freelist miss happens only during warm-up
		return new(Pkt) // ok: annotated with a reason
	}
	e.free = p.next
	return p
}

// grow is reachable from step, so every construct below is hot.
func (e *Engine) grow(now int) {
	e.count = e.count + 1 // ok: arithmetic, not allocation
	s := []int{now}       // want `slice literal allocates`
	m := map[int]int{}    // want `map literal allocates`
	q := new(Pkt)         // want `new allocates`
	q.id = s[0] + m[now]
	e.free = &Pkt{id: now}         // want `escaping composite literal`
	e.seen = append(e.seen, now)   // want `append onto a non-pooled slice`
	f := func() int { return now } // want `function literal allocates`
	_ = f
	e.describe("cycle", now)
}

// describe formats and boxes on the hot path.
func (e *Engine) describe(what string, v int) {
	e.name = what + "!" // want `string concatenation allocates`
	e.name += "."       // want `string concatenation allocates`
	e.sink(what, v)     // want `interface conversion boxes a non-pointer value`
	fmt.Println(e.name) // want `fmt\.Println allocates`
	// want+1 `//lint:alloc annotation without a reason`
	//lint:alloc
	e.seen = append(e.seen, v) // want `append onto a non-pooled slice`
}

// sink accepts anything; pointer-shaped arguments do not box.
func (e *Engine) sink(what string, v any) {
	if v == nil {
		e.name = what
	}
}

// audit is the registered cold path: invariant sweeps may allocate.
func (e *Engine) audit() {
	all := make(map[int]bool)
	for _, id := range e.seen {
		all[id] = true
	}
}

// idle is not hot; its annotation suppresses nothing and is stale.
func (e *Engine) idle() {
	// want+1 `stale //lint:alloc annotation`
	//lint:alloc believed to allocate, but does not
	e.count++
}

// alg's Route is a hot root by method name (HotPathMethods).
type alg struct{ scratch []int }

func (a *alg) Route(e *Engine, p *Pkt) int {
	a.scratch = append(a.scratch[:0], p.id) // ok: compaction reslice
	hops := []int{p.id}                     // want `slice literal allocates`
	return hops[0]
}
