// Package floatorder exercises the floatorder analyzer: compound float
// assignment inside an unannotated map (or channel) range is a finding;
// integer accumulation, ordered loops, and annotated ranges are not.
package floatorder

import "sort"

func badSum(lat map[int]float64) float64 {
	total := 0.0
	for _, v := range lat {
		total += v // want `float \+= inside a range`
	}
	return total
}

func badNested(groups map[string][]float64) float64 {
	total := 0.0
	for _, vs := range groups {
		for _, v := range vs {
			total += v // want `float \+= inside a range`
		}
	}
	return total
}

func badChan(ch chan float64) float64 {
	total := 0.0
	for v := range ch {
		total *= v // want `float \*= inside a range`
	}
	return total
}

func goodIntCount(lat map[int]float64) int {
	n := 0
	for range lat {
		n++
	}
	return n
}

func goodIntSum(counts map[int]int) int {
	s := 0
	for _, c := range counts {
		s += c
	}
	return s
}

func goodSorted(lat map[int]float64) float64 {
	keys := make([]int, 0, len(lat))
	//lint:ordered collecting keys for sorting; values untouched
	for k := range lat {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	total := 0.0
	for _, k := range keys {
		total += lat[k]
	}
	return total
}

func goodAnnotated(bins map[int]float64) float64 {
	total := 0.0
	//lint:ordered bin values are exact small integers; addition is associative in range
	for _, v := range bins {
		total += v
	}
	return total
}
