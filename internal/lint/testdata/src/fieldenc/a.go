// Package fieldenc exercises the fieldenc analyzer: the registered
// accounting fields (Port.occ, Port.credits) may only be assigned
// inside their sanctioned mutators; other fields are unrestricted.
package fieldenc

type Port struct {
	occ     int
	credits int
	watch   func(int)
	label   string
}

type Router struct {
	out []Port
}

// occDelta is the sanctioned mutator of occ.
func (r *Router) occDelta(p int, d int) {
	r.out[p].occ += d
	if r.out[p].watch != nil {
		r.out[p].watch(r.out[p].occ)
	}
}

// newRouter is a sanctioned writer of credits.
func newRouter(ports, credit int) *Router {
	r := &Router{out: make([]Port, ports)}
	for i := range r.out {
		r.out[i].credits = credit
	}
	return r
}

func (r *Router) badDirect(p int) {
	r.out[p].occ = 0 // want `write to fixture/fieldenc.Port.occ`
}

func (r *Router) badCompound(p int) {
	r.out[p].occ += 2 // want `write to fixture/fieldenc.Port.occ`
}

func (r *Router) badIncDec(p int) {
	r.out[p].credits++ // want `write to fixture/fieldenc.Port.credits`
}

func badPointer(pt *Port) {
	pt.occ = 7 // want `write to fixture/fieldenc.Port.occ`
}

func badMulti(pt *Port) {
	pt.label, pt.credits = "x", 3 // want `write to fixture/fieldenc.Port.credits`
}

func okOtherFields(pt *Port) {
	pt.label = "east"
	pt.watch = nil
}

func okRead(pt *Port) int {
	return pt.occ + pt.credits
}
