// Package rngpurity exercises the rngpurity analyzer: banned imports,
// wall-clock calls, and seeding whose arguments are not derived from
// (seed, entity id).
package rngpurity

import (
	"math/rand" // want `import of math/rand`
	"time"

	"cbar/internal/rng"
)

func badGlobalRand() int {
	return rand.Int()
}

func badWallClock() int64 {
	return time.Now().Unix() // want `call to time.Now`
}

func badElapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time.Since`
}

func badSeed(x uint64) *rng.PCG {
	return rng.New(x, 1) // want `seed argument`
}

func goodSeedParam(seed, id uint64) *rng.PCG {
	return rng.New(seed, id)
}

func goodSeedArith(seed, id uint64) *rng.PCG {
	return rng.New(seed^0x9E3779B9, id+1)
}

type cfg struct {
	RandomSeed uint64
	nodes      uint64
}

func goodSeedField(c cfg) *rng.PCG {
	return rng.New(c.RandomSeed, c.nodes)
}

func goodSeedConst() *rng.PCG {
	return rng.New(12345, 0)
}

func goodSplitDerived(p *rng.PCG, id uint64) *rng.PCG {
	return rng.New(p.Uint64(), id)
}

func badStreamCall(seed uint64, pick func() uint64) *rng.PCG {
	return rng.New(seed, pick()) // want `stream argument`
}

func badSeedInMapRange(seed uint64, live map[int]bool) []*rng.PCG {
	var out []*rng.PCG
	for id := range live {
		out = append(out, rng.New(seed, uint64(id))) // want `inside an unordered map range`
	}
	return out
}

func goodSeedInOrderedRange(seed uint64, live map[int]bool) []*rng.PCG {
	var out []*rng.PCG
	//lint:ordered streams are keyed by id, not by visit order
	for id := range live {
		out = append(out, rng.New(seed, uint64(id)))
	}
	return out
}

func goodReseed(p *rng.PCG, seed, id uint64) {
	p.Seed(seed, id)
}

func badReseed(p *rng.PCG, x, id uint64) {
	p.Seed(x, id) // want `seed argument`
}
