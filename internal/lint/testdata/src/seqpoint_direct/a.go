// Package seqpoint_direct exercises the sequentialpoint analyzer's
// direct-call and escaping-reference checks: a barrier-only method may
// be called only from its sanctioned callers, and never taken as a
// value. (No parallel roots are registered for this fixture; the
// reachability check is exercised by seqpoint_reach.)
package seqpoint_direct

type Net struct {
	events  []int
	applied int
}

// replay is registered barrier-only with sanctioned caller Net.Step.
func (n *Net) replay() {
	n.applied += len(n.events)
	n.events = n.events[:0]
}

func (n *Net) Step() {
	n.replay()
}

func (n *Net) debugFlush() {
	n.replay() // want `not a sanctioned call site`
}

func flushAll(nets []*Net) {
	for _, n := range nets {
		n.replay() // want `not a sanctioned call site`
	}
}

func escapes(n *Net) func() {
	return n.replay // want `taking it as a value`
}
