package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The `//lint:ordered <reason>` annotation is the suite's escape hatch:
// it asserts that a map (or channel) range statement's iteration order
// does not escape into simulation state — the body normalizes the order
// (sorts, reduces commutatively into per-key slots, or only asserts
// per-key facts) — and it must say why. The annotation attaches to the
// range statement it precedes (its own line immediately above the `for`)
// or trails (same line as the `for`).

// orderedDirective is the comment prefix of the annotation.
const orderedDirective = "//lint:ordered"

// Annotation is one parsed //lint:ordered comment.
type Annotation struct {
	Pos    token.Pos
	Line   int
	Reason string
}

// scanAnnotations indexes every //lint:ordered comment per file by line.
// Called after Syntax is complete (re-run when external test files are
// folded in).
func (p *Package) scanAnnotations() {
	if p.annotations == nil {
		p.annotations = make(map[*ast.File]map[int]*Annotation)
	}
	for _, f := range p.Syntax {
		if p.annotations[f] != nil {
			continue
		}
		byLine := make(map[int]*Annotation)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, orderedDirective)
				if !ok {
					continue
				}
				// Require end-of-token after the directive: reject
				// "//lint:orderedish".
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				byLine[line] = &Annotation{
					Pos:    c.Pos(),
					Line:   line,
					Reason: strings.TrimSpace(text),
				}
			}
		}
		p.annotations[f] = byLine
	}
}

// orderedFor returns the annotation attached to a range statement: one
// on the `for` keyword's own line (trailing comment) or on the line
// directly above (leading comment).
func (p *Package) orderedFor(f *ast.File, rs *ast.RangeStmt) *Annotation {
	byLine := p.annotations[f]
	if byLine == nil {
		return nil
	}
	line := p.Fset.Position(rs.For).Line
	if a := byLine[line]; a != nil {
		return a
	}
	return byLine[line-1]
}
