package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The `//lint:<directive> <reason>` annotations are the suite's escape
// hatches. Each one is a reviewed assertion and must say why:
//
//   - `//lint:ordered` on a map/chan range: the iteration order does not
//     escape into simulation state (the body normalizes the order).
//   - `//lint:alloc` on a hot-path allocating construct: the allocation
//     is not steady-state (freelist warm-up, amortized growth, one-off
//     per-cycle coordinator cost already accounted in the baselines).
//   - `//lint:sharded` on a write the shard-isolation dataflow cannot
//     prove local: the receiver is in fact owned by the executing shard
//     (a per-shard lane, a group-indexed slot where groups never span
//     shards).
//
// An annotation attaches to the construct it precedes (its own line
// immediately above) or trails (same line as the construct).

// The recognized directives.
const (
	directiveOrdered = "ordered"
	directiveAlloc   = "alloc"
	directiveSharded = "sharded"
)

// Annotation is one parsed //lint:<directive> comment.
type Annotation struct {
	Pos       token.Pos
	Line      int
	Directive string
	Reason    string
}

// scanAnnotations indexes every //lint: comment per file by line.
// Called after Syntax is complete (re-run when external test files are
// folded in).
func (p *Package) scanAnnotations() {
	if p.annotations == nil {
		p.annotations = make(map[*ast.File]map[int][]*Annotation)
	}
	for _, f := range p.Syntax {
		if p.annotations[f] != nil {
			continue
		}
		byLine := make(map[int][]*Annotation)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				directive, reason, _ := strings.Cut(text, " ")
				directive = strings.TrimSpace(directive)
				switch directive {
				case directiveOrdered, directiveAlloc, directiveSharded:
				default:
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				byLine[line] = append(byLine[line], &Annotation{
					Pos:       c.Pos(),
					Line:      line,
					Directive: directive,
					Reason:    strings.TrimSpace(reason),
				})
			}
		}
		p.annotations[f] = byLine
	}
}

// annotationAt returns the directive's annotation attached to a
// construct on the given line: one on the line itself (trailing comment)
// or on the line directly above (leading comment).
func (p *Package) annotationAt(f *ast.File, line int, directive string) *Annotation {
	byLine := p.annotations[f]
	if byLine == nil {
		return nil
	}
	for _, a := range byLine[line] {
		if a.Directive == directive {
			return a
		}
	}
	for _, a := range byLine[line-1] {
		if a.Directive == directive {
			return a
		}
	}
	return nil
}

// orderedFor returns the //lint:ordered annotation attached to a range
// statement.
func (p *Package) orderedFor(f *ast.File, rs *ast.RangeStmt) *Annotation {
	return p.annotationAt(f, p.Fset.Position(rs.For).Line, directiveOrdered)
}
