package lint

import "testing"

// TestRepositoryIsClean is the meta-test behind the CI gate: the full
// suite, under the real contract registry, must produce zero findings
// over the repository. Any analyzer change that would newly flag
// existing engine code (or any engine change violating a contract)
// fails here before it fails in CI.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	diags, err := Run(moduleDir, DefaultConfig(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDefaultConfigIsCoherent guards the registry against editing
// accidents: every sanctioned caller of a barrier-only function, every
// parallel root and every field writer must live in a deterministic
// package — a typoed path would silently disable its rule.
func TestDefaultConfigIsCoherent(t *testing.T) {
	cfg := DefaultConfig()
	inDet := func(key string) bool {
		for _, p := range cfg.DeterministicPkgs {
			if len(key) > len(p) && key[:len(p)] == p && key[len(p)] == '.' {
				return true
			}
		}
		return false
	}
	for barrier, callers := range cfg.BarrierOnly {
		if !inDet(barrier) {
			t.Errorf("barrier-only %q is not in a deterministic package", barrier)
		}
		for _, c := range callers {
			if !inDet(c) {
				t.Errorf("sanctioned caller %q of %q is not in a deterministic package", c, barrier)
			}
		}
	}
	for _, r := range cfg.ParallelRoots {
		if !inDet(r) {
			t.Errorf("parallel root %q is not in a deterministic package", r)
		}
	}
	for _, f := range cfg.Fields {
		if !inDet(f.Type) {
			t.Errorf("field rule type %q is not in a deterministic package", f.Type)
		}
		if len(f.Writers) == 0 {
			t.Errorf("field rule %s.%s has no sanctioned writers", f.Type, f.Field)
		}
		for _, w := range f.Writers {
			if !inDet(w) {
				t.Errorf("writer %q of %s.%s is not in a deterministic package", w, f.Type, f.Field)
			}
		}
	}

	// The whole-program registries: every key must resolve inside a
	// deterministic package, or its rule silently never fires.
	keyed := map[string][]string{
		"GlobalStateTypes":     cfg.GlobalStateTypes,
		"ShardConduits":        cfg.ShardConduits,
		"IndexPreservingFuncs": cfg.IndexPreservingFuncs,
		"CallbackRegistrars":   cfg.CallbackRegistrars,
		"HotPath":              cfg.HotPath,
		"ColdPath":             cfg.ColdPath,
	}
	for reg, keys := range keyed {
		if len(keys) == 0 {
			t.Errorf("%s registry is empty", reg)
		}
		for _, k := range keys {
			if !inDet(k) {
				t.Errorf("%s entry %q is not in a deterministic package", reg, k)
			}
		}
	}
	fields := map[string][]FieldRef{
		"ShardTables":      cfg.ShardTables,
		"CrossShardFields": cfg.CrossShardFields,
		"PooledSlices":     cfg.PooledSlices,
	}
	for reg, refs := range fields {
		if len(refs) == 0 {
			t.Errorf("%s registry is empty", reg)
		}
		for _, r := range refs {
			if !inDet(r.Type) {
				t.Errorf("%s entry %q is not in a deterministic package", reg, r.Type)
			}
			if r.Field == "" {
				t.Errorf("%s entry %q has an empty field name", reg, r.Type)
			}
		}
	}
	// Root-method registries hold bare method names, matched per
	// declaration: a fully-qualified key here would never match anything.
	for reg, names := range map[string][]string{
		"ParallelRootMethods": cfg.ParallelRootMethods,
		"HotPathMethods":      cfg.HotPathMethods,
	} {
		for _, m := range names {
			for i := 0; i < len(m); i++ {
				if m[i] == '.' {
					t.Errorf("%s entry %q must be a bare method name, not a qualified key", reg, m)
					break
				}
			}
		}
	}
}
