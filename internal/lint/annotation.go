package lint

import (
	"go/ast"
)

// AnnotationCheck keeps the escape hatch honest. `//lint:ordered` is a
// reviewed assertion, so a bare annotation with no reason is rejected,
// and an annotation that is not attached to a map or channel range
// statement — left behind by a refactor, or placed on the wrong line —
// is a finding rather than silent dead weight. Without this check an
// orphaned annotation would sit in the file until someone introduced a
// new map range near it and inherited an exemption nobody reviewed.
var AnnotationCheck = &Analyzer{
	Name:  "annotation",
	Doc:   "every //lint:ordered annotation carries a reason and guards a real map/chan range",
	Tests: true,
	Run:   runAnnotationCheck,
}

func runAnnotationCheck(pass *Pass) {
	pkg := pass.Pkg
	pass.files(func(f *ast.File) {
		// Lines from which an annotation legitimately guards a map/chan
		// range: the `for` keyword's line (trailing comment) and the line
		// above it (leading comment).
		guarded := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(rs.X)
			if !isMapType(t) && !isChanType(t) {
				return true
			}
			line := pkg.Fset.Position(rs.For).Line
			guarded[line] = true
			guarded[line-1] = true
			return true
		})
		for _, anns := range pkg.annotations[f] {
			for _, a := range anns {
				if a.Directive != directiveOrdered {
					// alloc/sharded annotations are vetted by their own
					// program analyzers, which know reachability.
					continue
				}
				if a.Reason == "" {
					pass.Reportf(a.Pos, "//lint:ordered annotation without a reason: state why the iteration order does not escape")
				}
				if !guarded[a.Line] {
					pass.Reportf(a.Pos, "stale //lint:ordered annotation: not attached to a map or channel range statement")
				}
			}
		}
	})
}
