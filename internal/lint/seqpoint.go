package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SequentialPoint enforces the barrier placement of the engine's
// sequential points. The parallel step interleaves two fork/join
// sections (handle+route, link+merge); between them — all workers
// parked — the coordinator replays deliveries and notifications,
// applies fault events and runs Alg.BeginCycle. Those functions mutate
// cross-shard state with no synchronization of their own, so the source
// must guarantee they execute only at their registered call sites:
//
//   - a direct call to a barrier-only function from any function other
//     than its sanctioned callers is a finding;
//   - a barrier-only function used as a value (method expression, method
//     value, assignment to a variable) is a finding — the reference
//     could escape to an arbitrary call site;
//   - any sanctioned caller or barrier-only function reachable through
//     the intra-package call graph from a parallel root (the shard
//     worker bodies and the Algorithm hook surface) is a finding, even
//     when every individual edge looks sanctioned.
//
// Tests are exempt: they run single-goroutine at sequential points by
// construction, and the scenario builders poke these functions on
// purpose.
var SequentialPoint = &Analyzer{
	Name: "sequentialpoint",
	Doc:  "barrier-only functions may only run at their registered sequential points",
	Run:  runSequentialPoint,
}

func runSequentialPoint(pass *Pass) {
	cfg := pass.Cfg
	if len(cfg.BarrierOnly) == 0 {
		return
	}
	pkg := pass.Pkg
	idx := newDeclIndex(pkg, false)

	allowed := func(barrier, caller string) bool {
		for _, ok := range cfg.BarrierOnly[barrier] {
			if ok == caller {
				return true
			}
		}
		return false
	}

	// sequentialOnly is every function that must not run inside a
	// parallel section: the barrier-only functions and their sanctioned
	// callers (reaching Network.Step from routePhase is as fatal as
	// reaching replayDeliveries directly).
	sequentialOnly := make(map[string]bool)
	for barrier, callers := range cfg.BarrierOnly {
		sequentialOnly[barrier] = true
		for _, c := range callers {
			sequentialOnly[c] = true
		}
	}

	type edge struct {
		callee string
		pos    token.Pos
	}
	graph := make(map[string][]edge)

	// calleeIdents collects the identifiers that appear in call position,
	// so any *other* use of a barrier-only function is an escaping
	// reference.
	calleeIdents := make(map[*ast.Ident]bool)

	pass.files(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				calleeIdents[fun] = true
			case *ast.SelectorExpr:
				calleeIdents[fun.Sel] = true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil {
				return true
			}
			key := funcKey(fn)
			caller := ""
			if d := idx.enclosing(call.Pos()); d != nil {
				caller = declKey(pkg.Info, d)
			}
			graph[caller] = append(graph[caller], edge{callee: key, pos: call.Pos()})
			if _, isBarrier := cfg.BarrierOnly[key]; isBarrier && !allowed(key, caller) {
				site := caller
				if site == "" {
					site = "a package-level initializer"
				}
				pass.Reportf(call.Pos(),
					"%s is barrier-only (sequential point); %s is not a sanctioned call site (sanctioned: %s)",
					key, site, callerList(cfg.BarrierOnly[key]))
			}
			return true
		})
	})

	// Escaping references: a barrier-only function mentioned outside call
	// position (method value, method expression, assignment).
	pass.files(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			fn, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			key := funcKey(fn)
			if _, isBarrier := cfg.BarrierOnly[key]; isBarrier {
				pass.Reportf(id.Pos(),
					"%s is barrier-only (sequential point); taking it as a value lets it escape its sanctioned call sites", key)
			}
			return true
		})
	})

	// Reachability: nothing in sequentialOnly may be reachable from a
	// parallel root. BFS over the intra-package call graph; the finding
	// is reported at the call edge that crosses into sequential-point
	// territory.
	roots := parallelRootDecls(pass, idx)
	seen := make(map[string]bool)
	queue := make([]string, 0, len(roots))
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, e := range graph[key] {
			if sequentialOnly[e.callee] {
				pass.Reportf(e.pos,
					"%s runs only at sequential points but is reachable from a parallel root through %s",
					e.callee, key)
			}
			if !seen[e.callee] {
				seen[e.callee] = true
				queue = append(queue, e.callee)
			}
		}
	}
}

// parallelRootDecls resolves the configured parallel roots to function
// keys declared in this package: exact-key matches plus any method whose
// name is in ParallelRootMethods.
func parallelRootDecls(pass *Pass, idx *declIndex) []string {
	cfg := pass.Cfg
	exact := make(map[string]bool, len(cfg.ParallelRoots))
	for _, r := range cfg.ParallelRoots {
		exact[r] = true
	}
	byMethod := make(map[string]bool, len(cfg.ParallelRootMethods))
	for _, m := range cfg.ParallelRootMethods {
		byMethod[m] = true
	}
	var roots []string
	for _, d := range idx.decls {
		key := declKey(pass.Pkg.Info, d)
		if exact[key] || (d.Recv != nil && byMethod[d.Name.Name]) {
			roots = append(roots, key)
		}
	}
	sort.Strings(roots)
	return roots
}

// callerList renders a sanctioned-caller set for diagnostics.
func callerList(callers []string) string {
	if len(callers) == 0 {
		return "none — interface dispatch only"
	}
	return strings.Join(callers, ", ")
}
