package router

import (
	"fmt"
	"testing"
)

// equivTrace records one delivery: enough per-packet detail that any
// divergence in routing, timing or ordering between the two step modes
// shows up as a trace mismatch.
type equivTrace struct {
	now  int64
	id   uint64
	src  int32
	dst  int32
	hops int8
}

// runEquiv drives one network with the deterministic xorshift workload
// for `cycles` cycles plus a drain, collecting the delivery trace and
// checking invariants and counters at every checkpoint.
func runEquiv(t *testing.T, cfg Config, fullScan bool, cycles int, rate uint64) ([]equivTrace, *Network) {
	t.Helper()
	n, err := Build(cfg, testMin{}, 99)
	if err != nil {
		t.Fatal(err)
	}
	n.FullScan = fullScan
	var trace []equivTrace
	n.OnDeliver = func(p *Packet, now int64) {
		trace = append(trace, equivTrace{now: now, id: p.ID, src: p.Src, dst: p.Dst, hops: p.TotalHops})
	}
	rng := newTestRand(31)
	for cycle := 0; cycle < cycles; cycle++ {
		for node := 0; node < n.Topo.Nodes; node++ {
			if rng()%100 < rate {
				dst := int(rng() % uint64(n.Topo.Nodes))
				if dst != node {
					n.Inject(node, dst)
				}
			}
		}
		n.Step()
		if cycle%250 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("fullScan=%v cycle %d: %v", fullScan, cycle, err)
			}
		}
	}
	if !n.Drain(1 << 20) {
		t.Fatalf("fullScan=%v: network did not drain (%d in flight)", fullScan, n.InFlight)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("fullScan=%v after drain: %v", fullScan, err)
	}
	return trace, n
}

// TestActiveSetEquivalence proves the active-set scheduler is
// cycle-for-cycle identical to the original full scan: the same injection
// stream must produce the exact same delivery trace (same packets, same
// hop counts, same delivery cycles, same order) and the same aggregate
// counters. The tight-buffers config forces constant credit blocking, so
// the trace also pins the subtle case of a blocked router being serviced
// again when credits return.
func TestActiveSetEquivalence(t *testing.T) {
	tight := smallCfg()
	tight.BufLocal = tight.PacketSize // one packet per local VC
	tight.BufOut = tight.PacketSize   // one packet per output buffer
	cases := []struct {
		name   string
		cfg    Config
		cycles int
		rate   uint64 // injection permille (per-node percent per cycle)
	}{
		{"default-10pct", smallCfg(), 1500, 10},
		{"default-30pct", smallCfg(), 1000, 30},
		{"tight-buffers", tight, 1500, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full, nFull := runEquiv(t, tc.cfg, true, tc.cycles, tc.rate)
			act, nAct := runEquiv(t, tc.cfg, false, tc.cycles, tc.rate)
			if nFull.NumGenerated != nAct.NumGenerated || nFull.NumBlocked != nAct.NumBlocked {
				t.Fatalf("generation diverged: full %d/%d vs active %d/%d",
					nFull.NumGenerated, nFull.NumBlocked, nAct.NumGenerated, nAct.NumBlocked)
			}
			if nFull.NumDelivered != nAct.NumDelivered || nFull.DeliveredPhits != nAct.DeliveredPhits {
				t.Fatalf("delivery diverged: full %d (%d phits) vs active %d (%d phits)",
					nFull.NumDelivered, nFull.DeliveredPhits, nAct.NumDelivered, nAct.DeliveredPhits)
			}
			if nFull.NumDelivered == 0 {
				t.Fatal("no traffic delivered")
			}
			if len(full) != len(act) {
				t.Fatalf("trace lengths differ: %d vs %d", len(full), len(act))
			}
			for i := range full {
				if full[i] != act[i] {
					t.Fatalf("traces diverge at delivery %d: full %+v vs active %+v", i, full[i], act[i])
				}
			}
		})
	}
}

// TestActiveSetCreditReactivation pins the subtle scheduler case in
// isolation: with single-packet buffers, the second packet's router has
// no allocatable work until the first packet's credits return; if the
// credit event failed to keep the router serviced, the packet would sit
// forever and the drain below would time out.
func TestActiveSetCreditReactivation(t *testing.T) {
	cfg := smallCfg()
	cfg.BufLocal = cfg.PacketSize
	cfg.VCsLocal = 2 // minimum for testMin's two-stage VC ladder
	cfg.BufOut = cfg.PacketSize
	n, err := Build(cfg, testMin{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst := n.Cfg.Topo.P * 1 // node on router 1, one local hop away
	for i := 0; i < 8; i++ {
		if !n.Inject(0, dst) {
			t.Fatal("inject refused")
		}
	}
	if !n.Drain(1 << 16) {
		t.Fatalf("blocked router was never reactivated: %d packets stuck", n.InFlight)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n.NumDelivered != 8 {
		t.Fatalf("delivered %d of 8", n.NumDelivered)
	}
}

// TestStepModesInterleaved switches FullScan on and off mid-run: the
// active sets are maintained at the mutation points in both modes, so a
// mode flip at any cycle must keep the simulation consistent.
func TestStepModesInterleaved(t *testing.T) {
	n := buildSmall(t)
	rng := newTestRand(17)
	for cycle := 0; cycle < 1200; cycle++ {
		n.FullScan = (cycle/100)%2 == 0
		for node := 0; node < n.Topo.Nodes; node++ {
			if rng()%100 < 15 {
				dst := int(rng() % uint64(n.Topo.Nodes))
				if dst != node {
					n.Inject(node, dst)
				}
			}
		}
		n.Step()
		if cycle%200 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
	}
	n.FullScan = false
	if !n.Drain(1 << 20) {
		t.Fatalf("did not drain: %d in flight", n.InFlight)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPacketFreelistRecycles checks delivered packets are actually
// recycled: a long steady run must keep the live packet population
// bounded by in-flight + freelist, with Inject drawing from the freelist
// (no unbounded ID-to-pointer growth is directly observable, so assert
// via the freelist length instead).
func TestPacketFreelistRecycles(t *testing.T) {
	n := buildSmall(t)
	rng := newTestRand(23)
	for cycle := 0; cycle < 2000; cycle++ {
		for node := 0; node < n.Topo.Nodes; node++ {
			if rng()%100 < 10 {
				dst := int(rng() % uint64(n.Topo.Nodes))
				if dst != node {
					n.Inject(node, dst)
				}
			}
		}
		n.Step()
	}
	if !n.Drain(1 << 20) {
		t.Fatal("did not drain")
	}
	if n.NumDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	if len(n.freePkts) == 0 {
		t.Fatal("freelist empty after drain: delivered packets were not recycled")
	}
	// After a full drain every delivered packet is either on the freelist
	// or was dropped past the cap; the freelist can never exceed the cap.
	if len(n.freePkts) > maxFreePackets {
		t.Fatalf("freelist %d exceeds cap %d", len(n.freePkts), maxFreePackets)
	}
	got := fmt.Sprintf("%d delivered, %d free", n.NumDelivered, len(n.freePkts))
	if testing.Verbose() {
		t.Log(got)
	}
}
