package router

import (
	"fmt"

	"cbar/internal/core"
	"cbar/internal/rng"
)

// ejectionCredits is the effectively infinite credit pool of ejection
// channels (nodes always sink traffic).
const ejectionCredits = 1 << 30

// inPort is one input port: a set of VC buffers plus its fixed upstream
// endpoint (for credit returns). Injection ports have no upstream router.
type inPort struct {
	kind     PortKind
	vcs      []vcQueue
	upRouter int32 // -1 for injection ports
	upPort   int16
	queued   int32 // packets across this port's VCs (fast-path skip)
	// unrouted counts head packets of this port's VCs that have not been
	// granted yet — the ports routePhase must scan. Maintained at push
	// (head of an empty VC), pop (next head exposed) and grant.
	unrouted int32
}

// outEntry is a packet staged in an output buffer with its downstream VC.
type outEntry struct {
	pkt *Packet
	vc  int8
}

// occWatcher is one registered occupancy-threshold trigger on an output
// port: fn fires whenever the port's running occupancy crosses threshold
// (in either direction).
type occWatcher struct {
	threshold int32
	fn        func(above bool)
}

// outPort is one output port: credit counters for the downstream input
// buffer, the output buffer and the link serialization state.
type outPort struct {
	kind       PortKind
	peerRouter int32 // -1 for ejection channels
	peerPort   int16
	latency    int64

	credits   []int32 // per downstream VC, phits
	creditCap []int32 // initial credit values, for invariant checks
	outFree   int32
	outCap    int32

	// occ is the running occupancy estimate (staged output phits plus
	// outstanding downstream credits), maintained incrementally at the
	// three mutation points (grant, credit return, out-buffer free) so
	// Occupancy is O(1) instead of a per-call credit-array sum. occCap
	// is its precomputed maximum (the credit-cap sum is invariant).
	occ      int32
	occCap   int32
	watchers []occWatcher

	// ECN mark state (congestion.go): ecnHot is flipped by the
	// occupancy watcher registered at Build whenever occ crosses markTh
	// (occCap scaled by the configured mark percentage), so the
	// allocator's marking check is a single bool read. markTh is -1 when
	// this port does not mark (congestion disabled, or an ejection
	// channel).
	ecnHot bool
	markTh int32

	// Fault liveness (faults.go): linkFailed records an explicit link
	// fault on this direction's cable; dead is the effective flag the
	// routing hot path reads — linkFailed, or either endpoint router
	// down. Both always false without a fault plan.
	linkFailed bool
	dead       bool

	q          fifo[outEntry] // output buffer FIFO
	linkFreeAt int64

	rrIn int // output-arbiter round-robin pointer

	// BusyCycles accumulates cycles the link spent serializing phits,
	// for utilization statistics.
	BusyCycles int64
}

// outQueueShrinkCap bounds the output-buffer FIFO's retained capacity:
// live entries are limited by BufOut admission (outCap/PacketSize, 4 for
// Table I), so anything past this is a transient's leftover.
const outQueueShrinkCap = 64

func (o *outPort) qLen() int        { return o.q.len() }
func (o *outPort) qPush(e outEntry) { o.q.push(e) }
func (o *outPort) qPop() outEntry   { return o.q.pop() }

// Router is one simulated router: input VC buffers, output ports with
// credits, the separable allocator state and the contention-counter
// banks consulted by the routing algorithms.
type Router struct {
	ID  int
	net *Network
	// shard is the network shard that owns this router: its calendar
	// ring, active sets and outgoing mailboxes. With one worker every
	// router shares the single shard.
	shard *netShard

	in  []inPort
	out []outPort

	// Contention is the per-output-port counter bank of §III-B. The
	// fabric allocates it for every router; only contention-based
	// algorithms update or read it.
	Contention *core.Counters

	// Ectn is the per-router ECtN state of §III-D (lazily allocated by
	// the ECtN algorithm's Attach).
	Ectn *core.ECtN

	// RNG is this router's private random stream (nonminimal port
	// selection).
	RNG *rng.PCG

	// down marks a failed router (faults.go): its ports are dead, its
	// queues were drained, Inject refuses its nodes.
	down bool

	queued int // packets currently in input queues
	staged int // packets currently in output buffers or being serialized
	// unrouted counts head packets across all input VCs that have not
	// been granted; the router needs routePhase/allocate service exactly
	// while it is nonzero, which is what keeps it in the route set.
	unrouted int32

	// stagedPorts lists the output ports with staged packets, ascending
	// (linkPhase must visit ports in the same order the full scan did);
	// stagedIn deduplicates membership. Ports join at evPipeDone and
	// leave lazily when linkPhase finds their queue empty.
	stagedPorts []int16
	stagedIn    []bool

	// allocator state and scratch
	rrVC     []int  // per input port: round-robin pointer over VCs
	s1       []int8 // per input port: stage-1 winning VC this iteration
	candIn   [][]int16
	candLen  []int
	reqPorts []int16 // input ports with pending requests this cycle
	dirtyOut []int16 // output ports with candidates this iteration
}

// noteStaged records that output port `out` has staged work, keeping
// stagedPorts sorted (a packet's pipeline latency bounds list growth to
// the radix, so the insertion shift is tiny).
func (r *Router) noteStaged(out int16) {
	if r.stagedIn[out] {
		return
	}
	r.stagedIn[out] = true
	i := len(r.stagedPorts)
	r.stagedPorts = append(r.stagedPorts, out)
	for i > 0 && r.stagedPorts[i-1] > out {
		r.stagedPorts[i] = r.stagedPorts[i-1]
		i--
	}
	r.stagedPorts[i] = out
}

func newRouter(id int, net *Network) *Router {
	cfg := &net.Cfg
	topo := net.Topo
	radix := topo.Radix()
	r := &Router{
		ID:          id,
		net:         net,
		in:          make([]inPort, radix),
		out:         make([]outPort, radix),
		Contention:  core.NewCounters(radix),
		RNG:         rng.New(net.seed, uint64(id)+1),
		rrVC:        make([]int, radix),
		s1:          make([]int8, radix),
		candIn:      make([][]int16, radix),
		candLen:     make([]int, radix),
		reqPorts:    make([]int16, 0, radix),
		dirtyOut:    make([]int16, 0, radix),
		stagedPorts: make([]int16, 0, radix),
		stagedIn:    make([]bool, radix),
	}
	for p := 0; p < radix; p++ {
		r.candIn[p] = make([]int16, radix)
	}
	for port := 0; port < radix; port++ {
		kind := portKind(topo, port)
		// Input side.
		vcN := cfg.VCsFor(kind)
		buf := cfg.BufFor(kind)
		ip := &r.in[port]
		ip.kind = kind
		ip.vcs = make([]vcQueue, vcN)
		for v := range ip.vcs {
			ip.vcs[v] = newVCQueue(buf, cfg.PacketSize)
		}
		ip.upRouter = -1
		if kind != Injection {
			peer, peerPort := topo.Neighbor(id, port)
			ip.upRouter = int32(peer)
			ip.upPort = int16(peerPort)
		}
		// Output side.
		op := &r.out[port]
		op.kind = kind
		op.q.shrinkCap = outQueueShrinkCap
		op.markTh = -1
		op.latency = int64(cfg.LatencyFor(kind))
		op.outCap = int32(cfg.BufOut)
		op.outFree = op.outCap
		op.peerRouter = -1
		if kind == Injection { // ejection channel
			op.credits = []int32{ejectionCredits}
			op.creditCap = []int32{ejectionCredits}
			op.occCap = op.outCap + ejectionCredits
		} else {
			peer, peerPort := topo.Neighbor(id, port)
			op.peerRouter = int32(peer)
			op.peerPort = int16(peerPort)
			// Downstream input port has the same class as ours.
			dn := cfg.VCsFor(kind)
			dbuf := int32(cfg.BufFor(kind))
			op.credits = make([]int32, dn)
			op.creditCap = make([]int32, dn)
			for v := range op.credits {
				op.credits[v] = dbuf
				op.creditCap[v] = dbuf
			}
			op.occCap = op.outCap + int32(dn)*dbuf
		}
	}
	return r
}

// --- accessors used by routing algorithms and tests ---

// Net returns the owning network.
func (r *Router) Net() *Network { return r.net }

// NumPorts returns the router radix.
func (r *Router) NumPorts() int { return len(r.out) }

// Kind returns the class of a port.
func (r *Router) Kind(port int) PortKind { return r.out[port].kind }

// VCs returns the number of VCs of input port `port`.
func (r *Router) VCs(port int) int { return len(r.in[port].vcs) }

// OutVCs returns the number of downstream VCs reachable through output
// `port`.
func (r *Router) OutVCs(port int) int { return len(r.out[port].credits) }

// Credits returns the available credits (phits) for downstream VC vc of
// output port.
func (r *Router) Credits(port, vc int) int32 { return r.out[port].credits[vc] }

// OutFree returns the free space of the output buffer of `port`.
func (r *Router) OutFree(port int) int32 { return r.out[port].outFree }

// Occupancy estimates the phits queued at and beyond output `port`: the
// staged output buffer content plus the downstream buffer space not
// covered by credits (which includes phits and credits still in flight —
// exactly the credit-count estimate, with its round-trip uncertainty,
// that congestion-based mechanisms rely on, cf. §II-B). The value is a
// running counter maintained by occDelta at the mutation points, so the
// call is O(1).
func (r *Router) Occupancy(port int) int32 { return r.out[port].occ }

// OccupancyCap returns the maximum value Occupancy can reach for `port`:
// the output buffer plus all downstream credit capacity (precomputed at
// construction). Relative (percentage) occupancy comparisons across port
// classes must normalize by it, since local and global ports have very
// different buffer depths.
func (r *Router) OccupancyCap(port int) int32 { return r.out[port].occCap }

// occDelta applies one mutation to the running occupancy of output `port`
// and fires any threshold watcher whose threshold was crossed. It is
// called from exactly the occupancy mutation points — grant (credits and
// output space reserved), credit return, output-buffer free — which is
// what keeps Occupancy O(1) and lets watchers replace per-cycle polls.
func (r *Router) occDelta(port int, delta int32) {
	o := &r.out[port]
	old := o.occ
	o.occ = old + delta
	for i := range o.watchers {
		w := &o.watchers[i]
		if (old > w.threshold) != (o.occ > w.threshold) {
			w.fn(o.occ > w.threshold)
		}
	}
}

// CanAccept reports whether output `port`, downstream VC vc, can accept a
// whole packet of `size` phits right now (the VCT admission rule used by
// the allocator).
func (r *Router) CanAccept(port, vc int, size int32) bool {
	o := &r.out[port]
	return o.outFree >= size && o.credits[vc] >= size
}

// QueuedPackets returns the number of packets in input VC (port, vc).
func (r *Router) QueuedPackets(port, vc int) int { return r.in[port].vcs[vc].len() }

// HeadPacket returns the head packet of input VC (port, vc), or nil.
func (r *Router) HeadPacket(port, vc int) *Packet { return r.in[port].vcs[vc].headPkt() }

// InFree returns the free phits of input VC (port, vc).
func (r *Router) InFree(port, vc int) int32 { return r.in[port].vcs[vc].free() }

// LinkBusy reports whether the link of output `port` is serializing.
func (r *Router) LinkBusy(port int) bool { return r.out[port].linkFreeAt > r.net.now }

// --- per-cycle phases ---

// routePhase fires head hooks and (re)collects allocation requests for
// every unrouted head packet, recording which input ports need
// arbitration this cycle. Routers and ports whose heads are all granted
// (or absent) are skipped via the unrouted counters — scanning them
// would be a guaranteed no-op, so the reqPorts rebuild only ever visits
// ports that can actually contribute a request.
func (r *Router) routePhase() {
	r.reqPorts = r.reqPorts[:0]
	if r.unrouted == 0 {
		return
	}
	alg := r.net.Alg
	faults := r.net.faults != nil
	for port := range r.in {
		ip := &r.in[port]
		if ip.unrouted == 0 {
			continue
		}
		requesting := false
		for vc := range ip.vcs {
			p := ip.vcs[vc].headPkt()
			if p == nil || p.Granted {
				continue
			}
			if !p.HeadSeen {
				p.HeadSeen = true
				alg.OnHead(r, p, port, vc)
			}
			req := alg.Route(r, p, port, vc)
			if faults {
				p.reqEscape = false
				req = r.faultAdjust(p, port, vc, req)
			}
			p.reqValid = req.OK
			if req.OK {
				p.reqOut = int16(req.Out)
				p.reqVC = int8(req.VC)
				requesting = true
			}
		}
		if requesting {
			r.reqPorts = append(r.reqPorts, int16(port))
		}
	}
}

// checkInvariants verifies credit and buffer accounting; used by tests.
func (r *Router) checkInvariants() error {
	for port := range r.out {
		o := &r.out[port]
		if o.outFree < 0 || o.outFree > o.outCap {
			return fmt.Errorf("router %d out %d: outFree %d of cap %d", r.ID, port, o.outFree, o.outCap)
		}
		for v, c := range o.credits {
			if c < 0 || c > o.creditCap[v] {
				return fmt.Errorf("router %d out %d vc %d: credits %d of cap %d", r.ID, port, v, c, o.creditCap[v])
			}
		}
		// The incremental occupancy must equal a fresh recompute from the
		// buffer and credit state, and the precomputed cap must equal the
		// credit-cap sum.
		occ, occCap := o.outCap-o.outFree, o.outCap
		for v, c := range o.credits {
			occ += o.creditCap[v] - c
			occCap += o.creditCap[v]
		}
		if occ != o.occ {
			return fmt.Errorf("router %d out %d: incremental occupancy %d but recompute %d", r.ID, port, o.occ, occ)
		}
		if occCap != o.occCap {
			return fmt.Errorf("router %d out %d: occupancy cap %d but recompute %d", r.ID, port, o.occCap, occCap)
		}
		// The watcher-maintained mark state must agree with a fresh
		// threshold comparison.
		if o.markTh >= 0 && o.ecnHot != (o.occ > o.markTh) {
			return fmt.Errorf("router %d out %d: mark state %v but occupancy %d vs threshold %d", r.ID, port, o.ecnHot, o.occ, o.markTh)
		}
	}
	var totQueued, totUnrouted int32
	for port := range r.in {
		ip := &r.in[port]
		var portQueued, portUnrouted int32
		for v := range ip.vcs {
			q := &ip.vcs[v]
			if q.usedPhits < 0 || q.usedPhits > q.capPhits {
				return fmt.Errorf("router %d in %d vc %d: used %d of cap %d", r.ID, port, v, q.usedPhits, q.capPhits)
			}
			var sum int32
			for i := 0; i < q.n; i++ {
				sum += q.pkts[(q.head+i)%len(q.pkts)].Size
			}
			if sum != q.usedPhits {
				return fmt.Errorf("router %d in %d vc %d: used %d but packets sum %d", r.ID, port, v, q.usedPhits, sum)
			}
			portQueued += int32(q.n)
			if h := q.headPkt(); h != nil && !h.Granted {
				portUnrouted++
			}
		}
		if ip.queued != portQueued {
			return fmt.Errorf("router %d in %d: queued %d but counted %d", r.ID, port, ip.queued, portQueued)
		}
		if ip.unrouted != portUnrouted {
			return fmt.Errorf("router %d in %d: unrouted %d but counted %d", r.ID, port, ip.unrouted, portUnrouted)
		}
		totQueued += portQueued
		totUnrouted += portUnrouted
	}
	if int32(r.queued) != totQueued {
		return fmt.Errorf("router %d: queued %d but counted %d", r.ID, r.queued, totQueued)
	}
	if r.unrouted != totUnrouted {
		return fmt.Errorf("router %d: unrouted %d but counted %d", r.ID, r.unrouted, totUnrouted)
	}
	// A router with routable work must be on the route set's radar
	// (in-set flags are cleared only when unrouted drops to zero).
	if totUnrouted > 0 && !r.shard.routeActive.has(int32(r.ID)) {
		return fmt.Errorf("router %d: %d unrouted heads but not in route set", r.ID, totUnrouted)
	}
	var stagedQ int
	for port := range r.out {
		stagedQ += r.out[port].qLen()
		if r.out[port].qLen() > 0 && !r.stagedIn[port] {
			return fmt.Errorf("router %d out %d: staged work but not on stagedPorts", r.ID, port)
		}
	}
	if stagedQ != r.staged {
		return fmt.Errorf("router %d: staged %d but output queues hold %d", r.ID, r.staged, stagedQ)
	}
	if stagedQ > 0 && !r.shard.linkActive.has(int32(r.ID)) {
		return fmt.Errorf("router %d: %d staged packets but not in link set", r.ID, stagedQ)
	}
	return nil
}
