package router

// fifo is a growable FIFO backing NIC queues and output-port stages.
// Its backing slice stays bounded under sustained traffic: pushes
// compact the dead prefix whenever it reaches the live region's size
// (amortized O(1)), and a drain drops capacity beyond shrinkCap so a
// transient burst's peak is not retained forever.
type fifo[T any] struct {
	buf       []T
	head      int
	shrinkCap int
}

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

func (f *fifo[T]) push(v T) {
	if f.head > 0 && f.head >= len(f.buf)-f.head {
		var zero T
		live := copy(f.buf, f.buf[f.head:])
		for i := live; i < len(f.buf); i++ {
			f.buf[i] = zero
		}
		f.buf = f.buf[:live]
		f.head = 0
	}
	f.buf = append(f.buf, v)
}

func (f *fifo[T]) pop() T {
	var zero T
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		if cap(f.buf) > f.shrinkCap {
			f.buf = nil
		} else {
			f.buf = f.buf[:0]
		}
		f.head = 0
	}
	return v
}

// vcQueue is one virtual channel's input buffer: a FIFO of packets with
// phit-granular occupancy accounting. Capacity admission is enforced by
// the upstream credit counters, not here; the queue only asserts the
// invariant.
type vcQueue struct {
	pkts []*Packet // ring buffer
	head int
	n    int

	capPhits  int32
	usedPhits int32
}

func newVCQueue(capPhits, packetSize int) vcQueue {
	// The ring never holds more packets than fit in the buffer.
	slots := capPhits / packetSize
	if slots < 1 {
		slots = 1
	}
	return vcQueue{pkts: make([]*Packet, slots), capPhits: int32(capPhits)}
}

// free returns the unreserved buffer space in phits.
func (q *vcQueue) free() int32 { return q.capPhits - q.usedPhits }

// empty reports whether no packet is queued.
func (q *vcQueue) empty() bool { return q.n == 0 }

// len returns the number of queued packets.
func (q *vcQueue) len() int { return q.n }

// headPkt returns the packet at the queue head, or nil.
func (q *vcQueue) headPkt() *Packet {
	if q.n == 0 {
		return nil
	}
	return q.pkts[q.head]
}

// push appends a packet whose head has arrived; its full size is
// accounted immediately (space was reserved by upstream credits when
// transmission started).
func (q *vcQueue) push(p *Packet) {
	if q.usedPhits+p.Size > q.capPhits {
		panic("router: input VC overflow; upstream credit accounting is broken")
	}
	if q.n == len(q.pkts) {
		//lint:alloc amortized ring doubling; capacity persists, so steady state stops growing
		grown := make([]*Packet, 2*len(q.pkts))
		for i := 0; i < q.n; i++ {
			grown[i] = q.pkts[(q.head+i)%len(q.pkts)]
		}
		q.pkts = grown
		q.head = 0
	}
	q.pkts[(q.head+q.n)%len(q.pkts)] = p
	q.n++
	q.usedPhits += p.Size
}

// pop removes the head packet once its tail has left the buffer.
func (q *vcQueue) pop() *Packet {
	if q.n == 0 {
		panic("router: pop from empty VC queue")
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head = (q.head + 1) % len(q.pkts)
	q.n--
	q.usedPhits -= p.Size
	if q.usedPhits < 0 {
		panic("router: negative VC occupancy")
	}
	return p
}
