package router

import (
	"strings"
	"testing"
)

// buildFaulty builds the small test fabric with a fault plan attached.
func buildFaulty(t *testing.T, fc FaultConfig) *Network {
	t.Helper()
	cfg := smallCfg()
	cfg.Faults = fc
	n, err := Build(cfg, testMin{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// floodCycle injects one packet from every node to a rotating
// cross-group partner and steps once. The group offset advances every
// cycle, so over any window of Groups-1 cycles every global link in the
// fabric carries traffic — whatever link a plan fails is loaded when it
// dies.
func floodCycle(t *testing.T, n *Network) {
	t.Helper()
	nodes := n.Topo.Nodes
	groupNodes := n.Topo.P * n.Topo.A
	off := groupNodes * (1 + int(n.Now())%(n.Topo.Groups-1))
	for src := 0; src < nodes; src++ {
		n.Inject(src, (src+off)%nodes)
	}
	n.Step()
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("cycle %d: %v", n.Now(), err)
	}
}

// conserve checks the packet conservation identity after a full drain.
func conserve(t *testing.T, n *Network) {
	t.Helper()
	if !n.Drain(1 << 20) {
		t.Fatalf("network did not drain: %d in flight", n.InFlight)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("post-drain invariants: %v", err)
	}
	if n.NumGenerated != n.NumDelivered+n.NumDropped+n.NumUnroutable {
		t.Fatalf("conservation broken: generated %d != delivered %d + dropped %d + unroutable %d",
			n.NumGenerated, n.NumDelivered, n.NumDropped, n.NumUnroutable)
	}
}

// TestFaultConfigValidateRejects pins the validation errors: every
// malformed plan is refused at Build with a message naming the problem.
func TestFaultConfigValidateRejects(t *testing.T) {
	// The small test fabric: 36 routers, ports [0,7), link ports [2,7).
	cases := []struct {
		name string
		fc   FaultConfig
		want string
	}{
		{"bad-kind", FaultConfig{Events: []FaultEvent{{Kind: 9, Router: 0, Port: 5, Cycle: 1}}}, "invalid kind"},
		{"router-high", FaultConfig{Events: []FaultEvent{{Kind: LinkDown, Router: 36, Port: 5, Cycle: 1}}}, "outside"},
		{"router-negative", FaultConfig{Events: []FaultEvent{{Kind: RouterDown, Router: -1, Cycle: 1}}}, "outside"},
		{"port-injection", FaultConfig{Events: []FaultEvent{{Kind: LinkDown, Router: 0, Port: 1, Cycle: 1}}}, "not a link port"},
		{"port-high", FaultConfig{Events: []FaultEvent{{Kind: LinkUp, Router: 0, Port: 7, Cycle: 1}}}, "not a link port"},
		{"cycle-negative", FaultConfig{Events: []FaultEvent{{Kind: LinkDown, Router: 0, Port: 5, Cycle: -1}}}, "< 0"},
		{"random-pct-high", FaultConfig{RandomPct: 101}, "outside [0,100]"},
		{"random-at-negative", FaultConfig{RandomPct: 5, RandomAt: -1}, "< 0"},
		{"retry-limit-high", FaultConfig{RetryLimit: maxRetryLimit + 1}, "retry limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg()
			cfg.Faults = tc.fc
			_, err := Build(cfg, testMin{}, 1)
			if err == nil {
				t.Fatalf("Build accepted invalid plan %+v", tc.fc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRetryResolvedDefaults pins the backoff default: RetryBase resolves
// to a worst-case one-way path (local + global latency).
func TestRetryResolvedDefaults(t *testing.T) {
	cfg := smallCfg()
	got := FaultConfig{RetryLimit: 3}.Resolved(cfg)
	if want := int64(cfg.LatencyLocal + cfg.LatencyGlobal); got.RetryBase != want {
		t.Fatalf("resolved RetryBase = %d, want %d", got.RetryBase, want)
	}
	// An explicit base survives resolution.
	got = FaultConfig{RetryLimit: 3, RetryBase: 7}.Resolved(cfg)
	if got.RetryBase != 7 {
		t.Fatalf("explicit RetryBase overwritten to %d", got.RetryBase)
	}
}

// TestLinkDownKillsAndRecovers drives a loaded fabric through a
// LinkDown/LinkUp pair: packets committed to the dying link are killed
// and counted, the liveness flag flips down and back up on the
// scheduled cycles, the credit accounting survives every cycle, and the
// drained network conserves packets exactly.
func TestLinkDownKillsAndRecovers(t *testing.T) {
	const port = 5 // first global port of the small fabric
	n := buildFaulty(t, FaultConfig{Events: []FaultEvent{
		{Kind: LinkDown, Router: 0, Port: port, Cycle: 100},
		{Kind: LinkUp, Router: 0, Port: port, Cycle: 300},
	}})
	for cyc := 0; cyc < 400; cyc++ {
		// An event at cycle C is applied inside the Step that advances
		// C -> C+1, so the flag is observable from Now() == C+1 on.
		wantAlive := n.Now() <= 100 || n.Now() > 300
		if got := n.Routers[0].PortAlive(port); got != wantAlive {
			t.Fatalf("cycle %d: PortAlive(0,%d) = %v, want %v", n.Now(), port, got, wantAlive)
		}
		if got := n.GlobalLinkAlive(0, 0); got != wantAlive {
			t.Fatalf("cycle %d: GlobalLinkAlive(0,0) = %v, want %v", n.Now(), got, wantAlive)
		}
		floodCycle(t, n)
	}
	if n.NumDropped == 0 {
		t.Fatal("loaded LinkDown killed nothing; the case proves nothing")
	}
	if n.NumUnroutable != 0 {
		t.Fatalf("one dead cable cannot partition this fabric, yet %d unroutable", n.NumUnroutable)
	}
	conserve(t, n)
}

// TestRouterDownPartitionsNodes pins the partition semantics: a down
// router blocks its own sources, packets to its nodes are counted
// unroutable instead of wandering, reachability reflects the component
// map, and repair restores everything.
func TestRouterDownPartitionsNodes(t *testing.T) {
	const r = 3 // down router; its nodes are 6 and 7 (P=2)
	n := buildFaulty(t, FaultConfig{Events: []FaultEvent{
		{Kind: RouterDown, Router: r, Cycle: 50},
		{Kind: RouterUp, Router: r, Cycle: 200},
	}})
	for cyc := 0; cyc < 120; cyc++ {
		floodCycle(t, n)
	}
	// Mid-outage: the router is down and partitioned.
	if n.Routers[r].Alive() {
		t.Fatal("router still alive mid-outage")
	}
	if n.Reachable(0, r) {
		t.Fatal("down router still reachable")
	}
	if n.NumUnroutable == 0 {
		t.Fatal("flooding a dead router produced no unroutable packets")
	}
	blocked := n.NumBlocked
	if n.Inject(6, 0) {
		t.Fatal("a dead router's NIC accepted a packet")
	}
	if n.NumBlocked != blocked+1 {
		t.Fatalf("blocked count %d, want %d", n.NumBlocked, blocked+1)
	}
	gen, unr := n.NumGenerated, n.NumUnroutable
	if !n.Inject(0, 6) {
		t.Fatal("packet to a partitioned destination was refused instead of counted")
	}
	if n.NumGenerated != gen+1 || n.NumUnroutable != unr+1 {
		t.Fatalf("unroutable inject counted generated %d unroutable %d, want %d and %d",
			n.NumGenerated, n.NumUnroutable, gen+1, unr+1)
	}
	for cyc := 0; cyc < 120; cyc++ {
		floodCycle(t, n)
	}
	// Post-repair: alive, reachable, accepting traffic.
	if !n.Routers[r].Alive() || !n.Reachable(0, r) {
		t.Fatal("repair did not restore the router")
	}
	if !n.Inject(6, 0) {
		t.Fatal("repaired router's NIC refused a packet")
	}
	conserve(t, n)
}

// TestRandomPlanDeterministic pins the random-cable expansion: the same
// (topology, pct, seed) triple fails the same cables on every build, a
// different seed fails a different set, and the failed-cable count
// matches the rounded percentage (both endpoints of each cable die).
func TestRandomPlanDeterministic(t *testing.T) {
	deadPorts := func(seed uint64) []string {
		n := buildFaulty(t, FaultConfig{RandomPct: 5, RandomAt: 10, RandomSeed: seed})
		for cyc := 0; cyc < 20; cyc++ {
			n.Step()
		}
		var dead []string
		for _, r := range n.Routers {
			for port := n.Topo.FirstGlobalPort(); port < n.Topo.Radix(); port++ {
				if !r.PortAlive(port) {
					dead = append(dead, string(rune('0'+r.ID))+":"+string(rune('0'+port)))
				}
			}
		}
		return dead
	}
	a, b := deadPorts(42), deadPorts(42)
	if len(a) == 0 {
		t.Fatal("random plan failed no cables")
	}
	// 36 physical cables in the small fabric: 5% rounds to 2 cables,
	// which is 4 dead ports (one per endpoint).
	if len(a) != 4 {
		t.Fatalf("5%% of 36 cables should kill 4 ports, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := deadPorts(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 failed identical cables %v", a)
	}
}
