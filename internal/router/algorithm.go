package router

// Request is a routing decision for the packet at the head of an input
// VC: the desired output port and downstream VC. OK=false means the
// algorithm declines to request this cycle (the packet stalls and will be
// asked again next cycle).
type Request struct {
	Out int
	VC  int
	OK  bool
}

// Algorithm is the routing policy plugged into the fabric. The fabric
// calls the hooks at precisely the micro-architectural instants the paper
// defines for contention counters, so policies can maintain their state
// (contention counters, ECtN arrays, PB saturation flags) without owning
// any mechanics:
//
//   - OnArrive: a packet was enqueued into an input VC (global-input
//     arrivals update ECtN partial counters here);
//   - OnHead: a packet reached the head of an input VC for the first
//     time (contention counters increment here, §III-B);
//   - Route: called every cycle for every unrouted head packet; the
//     decision may change from cycle to cycle (in-transit adaptivity);
//   - OnGrant: switch allocation succeeded; path commitments (Valiant
//     phase changes, misroute flags) are recorded here;
//   - OnDequeue: the packet's tail left the input queue (contention
//     counters decrement here, §III-B).
//
// BeginCycle runs once per cycle before routing and hosts periodic
// group-level exchanges (PB saturation broadcast, ECtN combine).
//
// Algorithms are called from a single goroutine per network; they need no
// internal locking.
type Algorithm interface {
	Name() string
	// Attach is called once when the network is built.
	Attach(n *Network)
	BeginCycle(n *Network)
	Route(r *Router, p *Packet, port, vc int) Request
	OnArrive(r *Router, p *Packet, port, vc int)
	OnHead(r *Router, p *Packet, port, vc int)
	OnGrant(r *Router, p *Packet, port, vc, out, outVC int)
	OnDequeue(r *Router, p *Packet, port, vc int)
}

// StateChecker is an optional Algorithm extension for policies that
// maintain their state incrementally (event-driven PB saturation flags,
// dirty-group ECtN combines): CheckState cross-checks that state against
// a fresh full recompute. Network.CheckInvariants calls it whenever the
// algorithm implements it, so every invariant sweep in the test suite
// also audits the event-driven bookkeeping.
type StateChecker interface {
	CheckState(n *Network) error
}

// NopHooks provides no-op implementations of every Algorithm method
// except Name and Route, for embedding in concrete policies.
type NopHooks struct{}

// Attach implements Algorithm.
func (NopHooks) Attach(*Network) {}

// BeginCycle implements Algorithm.
func (NopHooks) BeginCycle(*Network) {}

// OnArrive implements Algorithm.
func (NopHooks) OnArrive(*Router, *Packet, int, int) {}

// OnHead implements Algorithm.
func (NopHooks) OnHead(*Router, *Packet, int, int) {}

// OnGrant implements Algorithm.
func (NopHooks) OnGrant(*Router, *Packet, int, int, int, int) {}

// OnDequeue implements Algorithm.
func (NopHooks) OnDequeue(*Router, *Packet, int, int) {}
