// Package router implements the cycle-level router and network fabric the
// paper simulates with FOGSim: input/output-buffered virtual-cut-through
// routers with virtual channels, credit-based flow control, a separable
// batch allocator with internal speedup, a fixed-latency pipeline and
// latency-accurate local/global links.
//
// The fabric is mechanics only. All routing policy — which output a head
// packet should request, when to misroute, what the contention counters
// mean — lives behind the Algorithm interface and is implemented by
// package routing. The split mirrors the paper's architecture: the
// contention counters sit beside the router datapath and are consulted by
// the routing function.
//
// Stepping is active-set scheduled: each cycle visits only the NICs with
// backlog, the routers with unrouted head packets and the routers with
// staged output work, in the same ascending-id order as a full scan, so
// per-cycle cost follows traffic rather than topology size while results
// stay cycle-for-cycle identical to the full scan (Network.FullScan;
// see the equivalence tests). With Config.Workers > 1 each cycle's
// phases additionally fan out over group-contiguous shards with
// deterministic barriers and mailboxes, bit-identically to sequential
// stepping (see parallel.go).
package router

import (
	"fmt"

	"cbar/internal/topology"
)

// Config gathers every micro-architectural parameter of the simulated
// network. Defaults follow Table I of the paper.
type Config struct {
	Topo topology.Params

	// PacketSize is the fixed packet length in phits (Table I: 8).
	PacketSize int

	// Virtual channels per input port, by port class (Table I: 3 for
	// local and injection ports, 2 for global ports; VAL and PB raise
	// local ports to 4 to stay deadlock-free on their longer paths).
	VCsInjection int
	VCsLocal     int
	VCsGlobal    int

	// Input buffer capacity per VC, in phits (Table I: 32 local and
	// injection, 256 global).
	BufInjection int
	BufLocal     int
	BufGlobal    int

	// BufOut is the output buffer capacity per output port, in phits
	// (Table I: 32).
	BufOut int

	// Link latencies in cycles, for both data and credits
	// (Table I: 10 local, 100 global).
	LatencyLocal  int
	LatencyGlobal int

	// PipelineLatency is the router traversal latency in cycles from
	// switch allocation to the output buffer (Table I: 5).
	PipelineLatency int

	// Speedup is the internal frequency speedup: allocation iterations
	// per cycle and internal crossbar phits per cycle (Table I: 2).
	Speedup int

	// NICQueuePackets bounds each node's generation queue; while full,
	// generation stalls (source throttling). This bounds memory beyond
	// the saturation point without affecting sub-saturation results.
	NICQueuePackets int

	// Workers is the number of shard workers Step fans each cycle out
	// over (routers are partitioned by group into contiguous shards;
	// see parallel.go). 0 and 1 both mean sequential stepping; values
	// above the group count are clamped to it. Results are
	// cycle-for-cycle identical at every worker count.
	Workers int

	// Congestion configures the ECN-style congestion-management loop
	// (see congestion.go). The zero value disables it, leaving results
	// bit-identical to a configuration without the subsystem.
	Congestion CongestionConfig

	// Faults is the fault-injection plan (see faults.go). The zero
	// value schedules nothing, leaving results bit-identical to a
	// configuration without the subsystem.
	Faults FaultConfig
}

// DefaultConfig returns the Table I configuration for the given topology
// parameters.
func DefaultConfig(p topology.Params) Config {
	return Config{
		Topo:            p,
		PacketSize:      8,
		VCsInjection:    3,
		VCsLocal:        3,
		VCsGlobal:       2,
		BufInjection:    32,
		BufLocal:        32,
		BufGlobal:       256,
		BufOut:          32,
		LatencyLocal:    10,
		LatencyGlobal:   100,
		PipelineLatency: 5,
		Speedup:         2,
		NICQueuePackets: 64,
	}
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	if err := c.Topo.Validate(); err != nil {
		return err
	}
	if c.PacketSize < 1 {
		return fmt.Errorf("router: packet size %d < 1", c.PacketSize)
	}
	if c.VCsInjection < 1 || c.VCsLocal < 1 || c.VCsGlobal < 1 {
		return fmt.Errorf("router: VC counts must be >= 1 (inj=%d local=%d global=%d)",
			c.VCsInjection, c.VCsLocal, c.VCsGlobal)
	}
	for _, b := range []struct {
		name string
		v    int
	}{
		{"injection input buffer", c.BufInjection},
		{"local input buffer", c.BufLocal},
		{"global input buffer", c.BufGlobal},
		{"output buffer", c.BufOut},
	} {
		if b.v < c.PacketSize {
			return fmt.Errorf("router: %s (%d phits) smaller than one packet (%d phits); virtual cut-through needs room for a whole packet",
				b.name, b.v, c.PacketSize)
		}
	}
	if c.LatencyLocal < 1 || c.LatencyGlobal < 1 {
		return fmt.Errorf("router: link latencies must be >= 1 (local=%d global=%d)",
			c.LatencyLocal, c.LatencyGlobal)
	}
	if c.PipelineLatency < 1 {
		return fmt.Errorf("router: pipeline latency %d < 1", c.PipelineLatency)
	}
	// A packet's tail must leave its upstream input queue no later than
	// its head arrives downstream (tail-leave at grant + serialization,
	// head-arrive at grant + pipeline + link latency). A shorter path
	// would have the packet resident in two input queues at once, which
	// the per-queue transient state on the Packet struct (HeadSeen,
	// CountedPort/CountedLink, Granted) does not model — the contention
	// counters corrupt. Reject instead of simulating garbage.
	if min := c.PipelineLatency + c.LatencyLocal; min < c.PacketSize {
		return fmt.Errorf("router: PipelineLatency+LatencyLocal (%d) must cover the packet serialization time (%d phits)",
			min, c.PacketSize)
	}
	if min := c.PipelineLatency + c.LatencyGlobal; min < c.PacketSize {
		return fmt.Errorf("router: PipelineLatency+LatencyGlobal (%d) must cover the packet serialization time (%d phits)",
			min, c.PacketSize)
	}
	if c.Speedup < 1 {
		return fmt.Errorf("router: speedup %d < 1", c.Speedup)
	}
	if c.NICQueuePackets < 1 {
		return fmt.Errorf("router: NIC queue %d < 1", c.NICQueuePackets)
	}
	if c.Workers < 0 {
		return fmt.Errorf("router: workers %d < 0", c.Workers)
	}
	if c.Congestion.Enabled {
		if err := c.Congestion.Resolved(c).validate(c); err != nil {
			return err
		}
	}
	if c.Faults.Enabled() || c.Faults.RetryLimit > 0 {
		if err := c.Faults.Resolved(c).validate(c); err != nil {
			return err
		}
	}
	return nil
}

// PortKind classifies router ports.
type PortKind uint8

const (
	// Injection ports carry traffic from attached nodes in and, on the
	// output side, eject traffic to them.
	Injection PortKind = iota
	// Local ports connect routers within a group.
	Local
	// Global ports connect groups.
	Global
)

func (k PortKind) String() string {
	switch k {
	case Injection:
		return "injection"
	case Local:
		return "local"
	case Global:
		return "global"
	}
	return "invalid"
}

// VCsFor returns the number of VCs for a port class.
func (c Config) VCsFor(k PortKind) int {
	switch k {
	case Injection:
		return c.VCsInjection
	case Local:
		return c.VCsLocal
	default:
		return c.VCsGlobal
	}
}

// BufFor returns the per-VC input buffer capacity for a port class.
func (c Config) BufFor(k PortKind) int {
	switch k {
	case Injection:
		return c.BufInjection
	case Local:
		return c.BufLocal
	default:
		return c.BufGlobal
	}
}

// LatencyFor returns the link latency for a port class; injection and
// ejection channels are direct (latency 0, the NIC sits at the router).
func (c Config) LatencyFor(k PortKind) int {
	switch k {
	case Local:
		return c.LatencyLocal
	case Global:
		return c.LatencyGlobal
	default:
		return 0
	}
}

// MeanVCsPerPort returns the mean number of VCs over a router's input
// ports, the quantity the paper's §VI-A threshold analysis uses (2.74 for
// the Table I router).
func (c Config) MeanVCsPerPort() float64 {
	t := c.Topo
	total := t.P*c.VCsInjection + (t.A-1)*c.VCsLocal + t.H*c.VCsGlobal
	return float64(total) / float64(t.P+t.A-1+t.H)
}
