package router

import (
	"fmt"
	"math"
)

// Quiet-cycle elision: jumping the clock over spans in which stepping
// would provably change nothing.
//
// A cycle is quiet when this cycle's calendar buckets are empty and every
// shard's active sets are empty (quietCycle — the same predicate the
// parallel stepper's fork-skipping fast path uses) and no fault work is
// due. Stepping such a cycle handles no events, drains no NICs, routes
// nothing, serializes nothing; the only state change is now++ — unless
// the algorithm's BeginCycle does periodic work (an ECtN combine) or a
// reference-scan mode recomputes state every cycle. So when the network
// is quiet, the clock can advance directly to the earliest cycle at
// which anything can happen:
//
//   - the next occupied calendar-ring bucket (future head arrivals,
//     credit returns, pipeline completions, deliveries, congestion
//     notifications — every in-flight effect lives on the ring);
//   - the next scheduled fault event;
//   - the next cycle the algorithm's BeginCycle does observable work
//     (CycleHorizon).
//
// The jump is exact, not approximate: every skipped cycle is one the
// stepping path would have executed as a pure no-op, so traces,
// counters, RNG streams and histograms are bit-identical with elision on
// or off, at every worker count. Callers driving an injector must
// additionally cap the jump at the injector's next arrival
// (traffic.Injector.NextArrival); Run and Drain inject nothing and elide
// on the network's own horizon alone.

// NoPendingCycle is the horizon sentinel: "no pending work, ever".
// CycleHorizon implementations return it when BeginCycle never does
// observable work again (no combine pending, event-driven state clean).
const NoPendingCycle int64 = math.MaxInt64

// CycleHorizon is an optional Algorithm extension that makes the policy
// eligible for quiet-cycle elision. NextAlgCycle returns the next cycle
// c >= Now() at which BeginCycle performs observable work — for ECtN,
// the next combine tick while any group is dirty — or NoPendingCycle
// when no such cycle exists. ok=false disables elision outright: the
// reference-scan modes (Options.ReferenceScan) recompute state every
// cycle by definition and must be stepped cycle by cycle.
//
// Algorithms that do not implement CycleHorizon are never elided — a
// policy with per-cycle BeginCycle work that did not declare a horizon
// would silently skip it. Implementations must be allocation-free: the
// query runs on the stepping hot path.
type CycleHorizon interface {
	NextAlgCycle(n *Network) (cycle int64, ok bool)
}

// Quiet reports whether the current cycle has no work anywhere: this
// cycle's calendar buckets and every shard's active sets are empty, and
// no fault event or pending kill is due. When Quiet holds, stepping
// this cycle would change nothing but the clock (modulo BeginCycle —
// see CycleHorizon).
func (n *Network) Quiet() bool {
	return n.quietCycle(n.now & n.mask)
}

// NextEventCycle returns the earliest future cycle holding a scheduled
// event: the first occupied calendar-ring bucket across all shards, and
// the next unapplied fault-plan event. It returns NoPendingCycle when
// nothing is scheduled at all. Call it with the current cycle's buckets
// drained (Quiet); the scan is allocation-free and costs O(shards x
// ring size), amortized over the span it lets the caller skip.
func (n *Network) NextEventCycle() int64 {
	next := NoPendingCycle
	for s := range n.shards {
		sh := &n.shards[s]
		for d := int64(1); d <= n.mask; d++ {
			c := n.now + d
			if next <= c {
				break
			}
			if len(sh.ring[c&n.mask]) != 0 {
				next = c
				break
			}
		}
	}
	if f := n.faults; f != nil && f.next < len(f.events) {
		if c := f.events[f.next].Cycle; c < next {
			next = c
		}
	}
	return next
}

// ElideHorizon reports how far the clock may jump: the largest cycle
// j in (Now(), target] such that every cycle in [Now(), j) is a
// provable no-op. ok=false means this cycle must be stepped normally —
// the network is not quiet, the algorithm does per-cycle work (no
// CycleHorizon, a reference-scan mode, or a due combine), or a
// reference fabric scan is pinned (FullScan). Callers driving an
// injector must further cap the returned horizon at the injector's
// NextArrival before jumping.
func (n *Network) ElideHorizon(target int64) (int64, bool) {
	if target <= n.now || n.FullScan {
		return n.now, false
	}
	h, ok := n.Alg.(CycleHorizon)
	if !ok {
		return n.now, false
	}
	algNext, ok := h.NextAlgCycle(n)
	if !ok || algNext <= n.now {
		return n.now, false
	}
	if !n.quietCycle(n.now & n.mask) {
		return n.now, false
	}
	next := n.NextEventCycle()
	if algNext < next {
		next = algNext
	}
	if target < next {
		next = target
	}
	if next <= n.now {
		return n.now, false
	}
	return next, true
}

// ElideTo advances the clock to `cycle` without stepping. It is a
// sequential entry point (like Inject: never while a Step is in
// progress) and must only be given a cycle sanctioned by ElideHorizon —
// jumping past pending work would silently drop it, so the cycle must
// not move backwards and every skipped cycle must be quiet.
func (n *Network) ElideTo(cycle int64) {
	if cycle < n.now {
		panic(fmt.Sprintf("router: ElideTo(%d) behind now %d", cycle, n.now))
	}
	n.now = cycle
}
