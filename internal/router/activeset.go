package router

import "slices"

// activeSet is a dirty-list of component ids (routers or NICs) that may
// need servicing next cycle. Membership is deduplicated by per-id in-set
// flags, additions are O(1) at the mutation points (Inject, event
// handling, grant), and stale entries are pruned lazily while the Step
// loop scans the set. Ids are sorted before each scan so active-set
// stepping visits components in exactly the order the full scan would —
// this is what makes the two step modes cycle-for-cycle identical.
type activeSet struct {
	ids []int32
	in  []bool
	// base offsets the in-set flags: the set covers ids [base,
	// base+len(in)), so a shard's sets cost memory proportional to the
	// shard, not the topology.
	base int32
	// sortedLen is the length of the already-sorted prefix: everything
	// the last sorted() call ordered, minus nothing — compaction via
	// setLive preserves order, so only ids appended since then (the
	// suffix) can be out of place.
	sortedLen int
}

// newActiveSet returns an empty set over the id range [lo, hi).
func newActiveSet(lo, hi int32) activeSet {
	return activeSet{base: lo, in: make([]bool, hi-lo)}
}

// add marks id active. Duplicate adds are cheap no-ops.
func (s *activeSet) add(id int32) {
	if !s.in[id-s.base] {
		s.in[id-s.base] = true
		s.ids = append(s.ids, id)
	}
}

// has reports whether id is currently in the set (invariant checks).
func (s *activeSet) has(id int32) bool { return s.in[id-s.base] }

// sorted orders the pending ids ascending and returns them. The caller
// scans the result, keeps live ids by compacting in place (the returned
// slice aliases s.ids) and stores the compacted slice back via setLive.
//
// Steady state appends only a handful of ids per cycle onto a sorted
// prefix, where a direct insertion pass beats the generic sort's setup
// cost by an order of magnitude; a large unsorted suffix (a burst's worth
// of activations) falls back to the real sort.
func (s *activeSet) sorted() []int32 {
	ids := s.ids
	if suffix := len(ids) - s.sortedLen; suffix > 32 {
		slices.Sort(ids)
	} else {
		for i := s.sortedLen; i < len(ids); i++ {
			v := ids[i]
			j := i - 1
			for j >= 0 && ids[j] > v {
				ids[j+1] = ids[j]
				j--
			}
			ids[j+1] = v
		}
	}
	s.sortedLen = len(ids)
	return ids
}

// drop clears id's in-set flag; the caller is responsible for removing it
// from the slice (by not copying it during compaction).
func (s *activeSet) drop(id int32) { s.in[id-s.base] = false }

// setLive installs the compacted live prefix produced by a scan.
// Compaction preserves order, so the whole slice stays sorted.
//
// Contract: add() must not be called on a set between its sorted() and
// setLive() calls — setLive would truncate the appended id while its
// in-flag stays true, permanently excluding the component. The Step
// phases honor this: each phase only add()s to *other* sets (nicDrain
// activates routers, never NICs; routing and link phases activate
// nothing directly, only via future events).
func (s *activeSet) setLive(ids []int32) {
	s.ids = ids
	s.sortedLen = len(ids)
}
