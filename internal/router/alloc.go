package router

// The separable batch allocator (§IV-B of the paper): each iteration runs
// an input stage — every input port nominates one of its requesting VCs,
// round-robin — and an output stage — every output port grants one of the
// nominating inputs, round-robin. The network runs Config.Speedup
// iterations per cycle, modeling the 2× internal frequency speedup of the
// paper's router, which compensates for the well-known matching loss of
// separable allocators and mitigates head-of-line blocking.

// allocate runs a single allocation iteration on this router. Only the
// input ports that registered a request in this cycle's routePhase are
// scanned (reqPorts); requests persist across the Speedup iterations.
func (r *Router) allocate() {
	if len(r.reqPorts) == 0 {
		return
	}
	size := int32(r.net.Cfg.PacketSize)

	// Input stage: nominate one eligible requesting VC per input port,
	// gathering nominations per output port (ascending input order,
	// which the output-stage round-robin scan relies on).
	r.dirtyOut = r.dirtyOut[:0]
	for _, port16 := range r.reqPorts {
		port := int(port16)
		ip := &r.in[port]
		nv := len(ip.vcs)
		start := r.rrVC[port]
		for k := 1; k <= nv; k++ {
			vc := (start + k) % nv
			p := ip.vcs[vc].headPkt()
			if p == nil || p.Granted || !p.reqValid {
				continue
			}
			if !r.CanAccept(int(p.reqOut), int(p.reqVC), size) {
				continue
			}
			r.s1[port] = int8(vc)
			out := int(p.reqOut)
			if r.candLen[out] == 0 {
				r.dirtyOut = append(r.dirtyOut, p.reqOut)
			}
			r.candIn[out][r.candLen[out]] = int16(port)
			r.candLen[out]++
			break
		}
	}

	// Output stage: grant one input per output port, round-robin.
	for _, out16 := range r.dirtyOut {
		out := int(out16)
		nc := r.candLen[out]
		r.candLen[out] = 0
		if nc == 0 {
			continue
		}
		cands := r.candIn[out][:nc]
		o := &r.out[out]
		pick := int(cands[0])
		for _, in := range cands {
			if int(in) > o.rrIn {
				pick = int(in)
				break
			}
		}
		r.grant(pick, int(r.s1[pick]), out)
	}
}

// grant commits a switch allocation: reserves output-buffer space and
// downstream credits, schedules the pipeline completion and the input
// tail departure, updates hop counters and round-robin state, and informs
// the algorithm.
func (r *Router) grant(port, vc, out int) {
	p := r.in[port].vcs[vc].headPkt()
	outVC := int(p.reqVC)
	o := &r.out[out]
	size := p.Size
	now := r.net.now
	cfg := &r.net.Cfg

	o.credits[outVC] -= size
	o.outFree -= size
	r.occDelta(out, 2*size) // both the credit and the out-buffer reservation count
	if o.ecnHot && p.ECNMarks < 127 {
		// The port's occupancy (with this packet's own reservation
		// counted) is past the mark threshold: the packet carries the
		// congestion mark to its destination (congestion.go). ecnHot is
		// always false when congestion management is disabled.
		p.ECNMarks++
	}
	p.Granted = true
	if p.reqEscape {
		// The grant went through the fault escape path: spend one unit
		// of the packet's detour budget (see faults.go).
		p.FaultDetours++
		p.reqEscape = false
	}
	r.in[port].unrouted--
	r.unrouted--

	switch o.kind {
	case Local:
		p.LocalHops++
		p.LocalHopsGroup++
		p.TotalHops++
	case Global:
		p.GlobalHops++
		p.TotalHops++
	}

	// Header reaches the output buffer after the router pipeline.
	r.net.scheduleFrom(r.shard, now+int64(cfg.PipelineLatency),
		event{kind: evPipeDone, router: int32(r.ID), port: int16(out), vc: int8(outVC), pkt: p})

	// The tail leaves the input buffer once it has both arrived
	// (cut-through) and streamed through the crossbar at the internal
	// speedup rate.
	transfer := (int64(size) + int64(cfg.Speedup) - 1) / int64(cfg.Speedup)
	tail := now + transfer
	if tail <= p.TailArrive {
		tail = p.TailArrive + 1
	}
	r.net.scheduleFrom(r.shard, tail,
		event{kind: evTailLeave, router: int32(r.ID), port: int16(port), vc: int8(vc), pkt: p})

	r.rrVC[port] = vc
	o.rrIn = port
	r.net.Alg.OnGrant(r, p, port, vc, out, outVC)
}

// linkPhase starts serializing the next staged packet on every idle
// output link. Only the ports on the stagedPorts dirty-list are visited
// (in ascending order, matching the original all-port scan); ports whose
// queue has drained are pruned in passing.
func (r *Router) linkPhase() {
	if r.staged == 0 {
		return
	}
	now := r.net.now
	live := r.stagedPorts[:0]
	for _, out := range r.stagedPorts {
		o := &r.out[out]
		if o.qLen() == 0 {
			r.stagedIn[out] = false
			continue
		}
		live = append(live, out)
		if o.linkFreeAt > now {
			continue
		}
		e := o.qPop()
		r.staged--
		size := int64(e.pkt.Size)
		o.linkFreeAt = now + size
		o.BusyCycles += size
		r.net.scheduleFrom(r.shard, now+size,
			event{kind: evOutFree, router: int32(r.ID), port: out, size: e.pkt.Size})
		if o.kind == Injection {
			// Ejection channel: the packet is consumed by the node.
			r.net.scheduleFrom(r.shard, now+size,
				event{kind: evDeliver, router: int32(r.ID), port: out, pkt: e.pkt})
		} else {
			r.net.scheduleFrom(r.shard, now+o.latency,
				event{kind: evHeadArrive, router: o.peerRouter, port: o.peerPort, vc: e.vc, pkt: e.pkt})
		}
	}
	r.stagedPorts = live
}
