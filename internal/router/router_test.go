package router

import (
	"testing"

	"cbar/internal/topology"
)

// testMin is a self-contained minimal-routing algorithm used to exercise
// the fabric without importing the routing package (which would be a
// dependency cycle in spirit: routing builds on router).
type testMin struct{ NopHooks }

func (testMin) Name() string { return "test-min" }

func (testMin) Route(r *Router, p *Packet, port, vc int) Request {
	out := r.Net().Topo.MinimalNextPort(r.ID, int(p.Dst))
	outVC := 0
	switch r.Kind(out) {
	case Local:
		// Stage-based ascending VCs: source-group hops on VC0,
		// destination-group hops above them (deadlock avoidance).
		if p.GlobalHops > 0 {
			outVC = 1
		}
	case Global:
		outVC = int(p.GlobalHops)
	}
	if outVC >= r.OutVCs(out) {
		outVC = r.OutVCs(out) - 1
	}
	return Request{Out: out, VC: outVC, OK: true}
}

func smallParams() topology.Params { return topology.Params{P: 2, A: 4, H: 2} }

func smallCfg() Config {
	cfg := DefaultConfig(smallParams())
	return cfg
}

func buildSmall(t *testing.T) *Network {
	t.Helper()
	n, err := Build(smallCfg(), testMin{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigDefaultsMatchTableI(t *testing.T) {
	cfg := DefaultConfig(topology.Params{P: 8, A: 16, H: 8})
	if cfg.PacketSize != 8 || cfg.BufLocal != 32 || cfg.BufGlobal != 256 || cfg.BufOut != 32 {
		t.Fatalf("buffer defaults wrong: %+v", cfg)
	}
	if cfg.LatencyLocal != 10 || cfg.LatencyGlobal != 100 {
		t.Fatalf("latency defaults wrong: %+v", cfg)
	}
	if cfg.PipelineLatency != 5 || cfg.Speedup != 2 {
		t.Fatalf("pipeline/speedup defaults wrong: %+v", cfg)
	}
	if cfg.VCsLocal != 3 || cfg.VCsGlobal != 2 || cfg.VCsInjection != 3 {
		t.Fatalf("VC defaults wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMeanVCsPerPort checks the §VI-A quantity: the Table I router has
// 85 VCs over 31 ports = 2.74.
func TestMeanVCsPerPort(t *testing.T) {
	cfg := DefaultConfig(topology.Params{P: 8, A: 16, H: 8})
	got := cfg.MeanVCsPerPort()
	if got < 2.73 || got > 2.75 {
		t.Fatalf("mean VCs per port = %.3f, want 2.74", got)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	base := smallCfg()
	mut := []func(*Config){
		func(c *Config) { c.PacketSize = 0 },
		func(c *Config) { c.VCsLocal = 0 },
		func(c *Config) { c.VCsGlobal = 0 },
		func(c *Config) { c.VCsInjection = 0 },
		func(c *Config) { c.BufLocal = base.PacketSize - 1 },
		func(c *Config) { c.BufGlobal = 0 },
		func(c *Config) { c.BufInjection = 1 },
		func(c *Config) { c.BufOut = 2 },
		func(c *Config) { c.LatencyLocal = 0 },
		func(c *Config) { c.LatencyGlobal = -1 },
		func(c *Config) { c.PipelineLatency = 0 },
		func(c *Config) { c.Speedup = 0 },
		func(c *Config) { c.NICQueuePackets = 0 },
		func(c *Config) { c.Topo = topology.Params{} },
	}
	for i, m := range mut {
		c := base
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPortKindHelpers(t *testing.T) {
	cfg := smallCfg()
	if cfg.VCsFor(Injection) != 3 || cfg.VCsFor(Local) != 3 || cfg.VCsFor(Global) != 2 {
		t.Fatal("VCsFor wrong")
	}
	if cfg.BufFor(Injection) != 32 || cfg.BufFor(Local) != 32 || cfg.BufFor(Global) != 256 {
		t.Fatal("BufFor wrong")
	}
	if cfg.LatencyFor(Injection) != 0 || cfg.LatencyFor(Local) != 10 || cfg.LatencyFor(Global) != 100 {
		t.Fatal("LatencyFor wrong")
	}
	for _, k := range []PortKind{Injection, Local, Global, PortKind(99)} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

func TestVCQueueBasics(t *testing.T) {
	q := newVCQueue(32, 8)
	if !q.empty() || q.free() != 32 {
		t.Fatal("fresh queue wrong")
	}
	p1 := &Packet{ID: 1, Size: 8}
	p2 := &Packet{ID: 2, Size: 8}
	q.push(p1)
	q.push(p2)
	if q.len() != 2 || q.free() != 16 {
		t.Fatalf("len %d free %d", q.len(), q.free())
	}
	if q.headPkt() != p1 {
		t.Fatal("head not FIFO")
	}
	if got := q.pop(); got != p1 {
		t.Fatal("pop not FIFO")
	}
	if q.headPkt() != p2 || q.free() != 24 {
		t.Fatal("after pop wrong")
	}
}

func TestVCQueueRingWrap(t *testing.T) {
	// Capacity 3 packets; interleave push/pop so the ring head wraps
	// several times while staying within capacity.
	q := newVCQueue(24, 8)
	var id uint64
	mk := func() *Packet { id++; return &Packet{ID: id, Size: 8} }
	q.push(mk())
	prev := uint64(0)
	for round := 0; round < 10; round++ {
		q.push(mk())
		p := q.pop()
		if p.ID <= prev {
			t.Fatalf("FIFO violated: %d after %d", p.ID, prev)
		}
		prev = p.ID
	}
	// Drain in order.
	for !q.empty() {
		p := q.pop()
		if p.ID <= prev {
			t.Fatalf("FIFO violated on drain: %d after %d", p.ID, prev)
		}
		prev = p.ID
	}
	if q.free() != 24 {
		t.Fatalf("free %d after drain, want 24", q.free())
	}
}

func TestVCQueueOverflowPanics(t *testing.T) {
	q := newVCQueue(8, 8)
	q.push(&Packet{Size: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	q.push(&Packet{Size: 8})
}

func TestVCQueuePopEmptyPanics(t *testing.T) {
	q := newVCQueue(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("pop empty did not panic")
		}
	}()
	q.pop()
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(Config{}, testMin{}, 1); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Build(smallCfg(), nil, 1); err == nil {
		t.Fatal("nil algorithm accepted")
	}
}

// TestSameRouterDeliveryTiming pins the end-to-end timing of the simplest
// possible transfer: src and dst attached to the same router.
//
//	cycle 0: NIC -> injection VC, routed, granted
//	cycle 5: pipeline done, ejection link starts
//	cycle 13: tail consumed -> delivered
func TestSameRouterDeliveryTiming(t *testing.T) {
	n := buildSmall(t)
	src := 0
	dst := 1 // same router (P=2)
	if n.Topo.RouterOfNode(src) != n.Topo.RouterOfNode(dst) {
		t.Fatal("test nodes not on same router")
	}
	if !n.Inject(src, dst) {
		t.Fatal("inject refused")
	}
	var deliveredAt int64 = -1
	n.OnDeliver = func(p *Packet, now int64) { deliveredAt = now }
	n.Run(40)
	if deliveredAt != 13 {
		t.Fatalf("delivered at %d, want 13", deliveredAt)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLocalHopDeliveryTiming pins the timing across one local link:
// grant@0, pipe@5, link 5..12, head arrives 15, grant@15, pipe@20,
// ejection 20..27, delivered 28.
func TestLocalHopDeliveryTiming(t *testing.T) {
	n := buildSmall(t)
	src := 0                // router 0
	dst := n.Cfg.Topo.P * 1 // first node of router 1 (same group)
	if n.Topo.RouterOfNode(dst) != 1 {
		t.Fatal("dst not on router 1")
	}
	if !n.Inject(src, dst) {
		t.Fatal("inject refused")
	}
	var deliveredAt int64 = -1
	n.OnDeliver = func(p *Packet, now int64) { deliveredAt = now }
	n.Run(60)
	if deliveredAt != 28 {
		t.Fatalf("delivered at %d, want 28", deliveredAt)
	}
}

// TestCreditReturnTiming checks credits replenish exactly one round trip
// after the downstream tail departs.
func TestCreditReturnTiming(t *testing.T) {
	n := buildSmall(t)
	r0 := n.Routers[0]
	out := n.Topo.MinimalNextPort(0, n.Cfg.Topo.P*1) // local port to router 1
	if r0.Kind(out) != Local {
		t.Fatal("expected local port")
	}
	before := r0.Credits(out, 0)
	if !n.Inject(0, n.Cfg.Topo.P*1) {
		t.Fatal("inject refused")
	}
	// Track the credit dip and its restoration cycle.
	dipped := false
	restored := int64(-1)
	for c := int64(0); c < 80; c++ {
		n.Step()
		cur := r0.Credits(out, 0)
		if cur < before {
			dipped = true
		}
		if dipped && restored < 0 && cur == before {
			restored = c
		}
	}
	if !dipped {
		t.Fatal("credits never consumed")
	}
	// Grant at 0 consumes credits; the packet's head arrives downstream
	// at 15 and its tail at 22; it is granted ejection at 15, so its
	// tail leaves the downstream input at max(15+4, 22+1)=23; the
	// credit travels back 10 cycles and is processed while stepping
	// cycle 33.
	if restored != 33 {
		t.Fatalf("credits restored at cycle %d, want 33", restored)
	}
}

// TestNICQueueBound checks Inject refuses when the NIC queue is full and
// counts blocked attempts.
func TestNICQueueBound(t *testing.T) {
	cfg := smallCfg()
	cfg.NICQueuePackets = 4
	n, err := Build(cfg, testMin{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 0; i < 10; i++ {
		if n.Inject(0, 3) {
			ok++
		}
	}
	if ok != 4 {
		t.Fatalf("accepted %d, want 4", ok)
	}
	if n.NumBlocked != 6 {
		t.Fatalf("blocked %d, want 6", n.NumBlocked)
	}
}

// TestConservationUnderRandomTraffic drives uniform random traffic and
// checks packet conservation, invariants and full drain (progress).
func TestConservationUnderRandomTraffic(t *testing.T) {
	n := buildSmall(t)
	rng := newTestRand(7)
	for cycle := 0; cycle < 500; cycle++ {
		for node := 0; node < n.Topo.Nodes; node++ {
			if rng()%100 < 10 { // ~10% packet rate
				dst := int(rng() % uint64(n.Topo.Nodes))
				if dst != node {
					n.Inject(node, dst)
				}
			}
		}
		n.Step()
		if cycle%100 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
	}
	if n.NumGenerated == 0 {
		t.Fatal("no packets generated")
	}
	if !n.Drain(20000) {
		t.Fatalf("network did not drain: %d in flight", n.InFlight)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n.NumDelivered != n.NumGenerated {
		t.Fatalf("delivered %d != generated %d", n.NumDelivered, n.NumGenerated)
	}
}

// newTestRand returns a tiny xorshift closure, avoiding a dependency on
// internal/rng from this package's tests.
func newTestRand(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}

// TestAllocatorRoundRobinFairness drives two injection VC streams of one
// router toward the same output and checks both make progress.
func TestAllocatorRoundRobinFairness(t *testing.T) {
	n := buildSmall(t)
	dst := n.Cfg.Topo.P * 1 // node on router 1
	perSrc := map[int32]int{}
	n.OnDeliver = func(p *Packet, _ int64) { perSrc[p.Src]++ }
	for cycle := 0; cycle < 400; cycle++ {
		n.Inject(0, dst)
		n.Inject(1, dst) // other node on router 0
		n.Step()
	}
	n.Drain(20000)
	if perSrc[0] == 0 || perSrc[1] == 0 {
		t.Fatalf("starvation: %v", perSrc)
	}
	ratio := float64(perSrc[0]) / float64(perSrc[1])
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("unfair service: %v", perSrc)
	}
}

// TestHopCounters checks local/global hop accounting across a 3-hop
// minimal inter-group path.
func TestHopCounters(t *testing.T) {
	n := buildSmall(t)
	topo := n.Topo
	// Find src/dst with a full l-g-l minimal path.
	var src, dst int
	found := false
	for r := 0; r < topo.Routers && !found; r++ {
		for d := 0; d < topo.Routers && !found; d++ {
			if topo.MinimalHops(r, d) == 3 {
				src, dst = topo.NodeID(r, 0), topo.NodeID(d, 0)
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no 3-hop pair found")
	}
	var got *Packet
	n.OnDeliver = func(p *Packet, _ int64) { got = p }
	n.Inject(src, dst)
	n.Run(3000)
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.LocalHops != 2 || got.GlobalHops != 1 || got.TotalHops != 3 {
		t.Fatalf("hops l=%d g=%d total=%d, want 2/1/3", got.LocalHops, got.GlobalHops, got.TotalHops)
	}
}

// TestOccupancyReflectsTraffic checks the occupancy estimate rises when a
// port is loaded and returns to zero after draining.
func TestOccupancyReflectsTraffic(t *testing.T) {
	n := buildSmall(t)
	r0 := n.Routers[0]
	out := n.Topo.MinimalNextPort(0, n.Cfg.Topo.P*1)
	if r0.Occupancy(out) != 0 {
		t.Fatal("initial occupancy nonzero")
	}
	for i := 0; i < 20; i++ {
		n.Inject(0, n.Cfg.Topo.P*1)
		n.Inject(1, n.Cfg.Topo.P*1)
		n.Step()
	}
	if r0.Occupancy(out) == 0 {
		t.Fatal("occupancy did not rise under load")
	}
	n.Drain(20000)
	// Credits may still be in flight right at drain; run a little more.
	n.Run(300)
	if got := r0.Occupancy(out); got != 0 {
		t.Fatalf("occupancy %d after drain, want 0", got)
	}
}

// TestOccupancyCapPrecomputed: the precomputed cap must equal the
// output-buffer plus credit-capacity sum for every port class.
func TestOccupancyCapPrecomputed(t *testing.T) {
	n := buildSmall(t)
	r := n.Routers[0]
	for port := 0; port < r.NumPorts(); port++ {
		want := r.OutFree(port) // full at construction: outFree == outCap
		for vc := 0; vc < r.OutVCs(port); vc++ {
			want += r.Credits(port, vc)
		}
		if got := r.OccupancyCap(port); got != want {
			t.Fatalf("port %d (%v): OccupancyCap %d, want %d", port, r.Kind(port), got, want)
		}
	}
}

// TestOccupancyIncrementalUnderTraffic drives random traffic and lets
// CheckInvariants compare the running occupancy counters against a fresh
// recompute from buffers and credits at every checkpoint, through load,
// drain and the in-flight credit tail.
func TestOccupancyIncrementalUnderTraffic(t *testing.T) {
	n := buildSmall(t)
	rng := newTestRand(11)
	for cycle := 0; cycle < 600; cycle++ {
		for node := 0; node < n.Topo.Nodes; node++ {
			if rng()%5 == 0 {
				dst := int(rng() % uint64(n.Topo.Nodes))
				if dst != node {
					n.Inject(node, dst)
				}
			}
		}
		n.Step()
		if cycle%50 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
	}
	if !n.Drain(20000) {
		t.Fatal("did not drain")
	}
	n.Run(300) // let in-flight credits land
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWatchOccupancy: a threshold watcher must fire exactly on crossings
// — rise above, fall back — and stay silent for mutations on the same
// side of the threshold.
func TestWatchOccupancy(t *testing.T) {
	n := buildSmall(t)
	r0 := n.Routers[0]
	dstNode := n.Cfg.Topo.P * 1 // node behind router 1: first hop is r0's local port
	out := n.Topo.MinimalNextPort(0, dstNode)

	var events []bool
	n.WatchOccupancy(0, out, 0, func(above bool) { events = append(events, above) })
	var state bool
	n.WatchOccupancy(0, out, 0, func(above bool) { state = above })

	n.Inject(0, dstNode)
	n.Run(40)
	if len(events) == 0 || !events[0] {
		t.Fatalf("no rising edge recorded: %v", events)
	}
	if !n.Drain(20000) {
		t.Fatal("did not drain")
	}
	n.Run(300)
	if r0.Occupancy(out) != 0 {
		t.Fatalf("occupancy %d after drain", r0.Occupancy(out))
	}
	if state {
		t.Fatal("watcher state still above after drain")
	}
	// Edges must strictly alternate: every firing is a genuine crossing.
	for i := 1; i < len(events); i++ {
		if events[i] == events[i-1] {
			t.Fatalf("consecutive identical edges at %d: %v", i, events)
		}
	}
	if events[len(events)-1] != false {
		t.Fatal("last edge is not the falling one")
	}
	// A threshold above the traffic level must never fire.
	var never []bool
	n.WatchOccupancy(0, out, 1<<28, func(above bool) { never = append(never, above) })
	n.Inject(0, dstNode)
	n.Drain(20000)
	if len(never) != 0 {
		t.Fatalf("high-threshold watcher fired: %v", never)
	}
}

// TestDeterminism: identical seeds must produce identical delivery
// traces; different seeds should diverge via RNG-dependent decisions
// (testMin has none, so only check equality).
func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		n, err := Build(smallCfg(), testMin{}, 42)
		if err != nil {
			t.Fatal(err)
		}
		var trace []int64
		n.OnDeliver = func(p *Packet, now int64) { trace = append(trace, int64(p.ID)<<20|now) }
		rng := newTestRand(5)
		for cycle := 0; cycle < 300; cycle++ {
			for node := 0; node < n.Topo.Nodes; node++ {
				if rng()%10 == 0 {
					dst := int(rng() % uint64(n.Topo.Nodes))
					if dst != node {
						n.Inject(node, dst)
					}
				}
			}
			n.Step()
		}
		n.Drain(10000)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

// TestVCTAdmission: with an input buffer sized for exactly one packet
// downstream, a second packet must not be granted until the first's
// credits return.
func TestVCTAdmission(t *testing.T) {
	cfg := smallCfg()
	cfg.BufLocal = cfg.PacketSize // one packet per local VC
	cfg.VCsLocal = 1
	cfg.VCsInjection = 1
	cfg.BufInjection = 32
	n, err := Build(cfg, testMin{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst := n.Cfg.Topo.P * 1
	for i := 0; i < 6; i++ {
		n.Inject(0, dst)
	}
	n.Run(2000)
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !n.Drain(20000) {
		t.Fatal("single-packet buffers deadlocked")
	}
}

func TestDrainReportsStuck(t *testing.T) {
	n := buildSmall(t)
	n.Inject(0, 3)
	if n.Drain(1) {
		t.Fatal("drain claimed success after 1 cycle")
	}
	if !n.Drain(10000) {
		t.Fatal("drain failed with generous budget")
	}
}
