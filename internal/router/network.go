package router

import (
	"fmt"

	"cbar/internal/topology"
)

// event kinds, processed at their scheduled cycle in insertion order.
type evKind uint8

const (
	// evHeadArrive: pkt's header arrives at input (router, port, vc).
	evHeadArrive evKind = iota
	// evTailLeave: pkt's tail leaves input queue (router, port, vc).
	evTailLeave
	// evCredit: credits for (router, out port, vc) replenish by pkt.Size.
	evCredit
	// evPipeDone: pkt exits the router pipeline into output buffer
	// (router, out port), heading for downstream VC vc.
	evPipeDone
	// evOutFree: pkt's tail left the output buffer of (router, port).
	evOutFree
	// evDeliver: pkt fully consumed by the node on ejection channel
	// (router, port).
	evDeliver
	// evNotify: a congestion notification reaches the shard of source
	// node `size`'s router (`router`), with severity vc = the delivered
	// packet's mark count. Carries no packet pointer: it outlives the
	// packet's delivery and freelist recycling (see congestion.go).
	evNotify
)

type event struct {
	kind evKind
	vc   int8
	port int16
	// size carries the phit count for evCredit/evOutFree, which must not
	// retain a packet pointer: both can fire after the packet has been
	// delivered and recycled through the freelist.
	size   int32
	router int32
	pkt    *Packet
}

// nic models a node's network interface: a bounded generation queue
// draining into the router's injection buffers at one phit per cycle.
type nic struct {
	q          fifo[*Packet]
	linkFreeAt int64
}

func (n *nic) len() int       { return n.q.len() }
func (n *nic) push(p *Packet) { n.q.push(p) }
func (n *nic) pop() *Packet   { return n.q.pop() }

// Network is a complete simulated Dragonfly: routers, NICs, the event
// calendar and cycle loop. With Config.Workers <= 1 a Network is
// single-goroutine; with Workers > 1 each Step fans the per-cycle phases
// out over shard worker goroutines (see parallel.go), but Step itself
// must still be called from one goroutine, and between Steps the network
// is quiescent. Parallelism across experiments comes from running
// independent Networks concurrently.
type Network struct {
	Cfg  Config
	Topo *topology.Dragonfly
	Alg  Algorithm

	Routers []*Router
	nics    []nic
	groups  [][]*Router

	now  int64
	seed uint64

	mask int64

	pktID uint64

	// Shard state. Routers (and their NICs) are partitioned into
	// `workers` contiguous blocks of whole groups; each shard owns the
	// calendar-ring slice, active sets and mailboxes for its block. With
	// workers == 1 there is exactly one shard and stepping is the
	// sequential active-set loop over it.
	workers int
	shards  []netShard
	// shardOf maps a router id to its owning shard.
	shardOf []int16

	// freePkts recycles delivered packets, eliminating the steady-state
	// allocation per Inject. It is touched only at sequential points
	// (Inject between cycles, delivery replay at the handle barrier).
	freePkts []*Packet

	// FullScan, when true, makes Step use the original O(routers+nodes)
	// full-scan loop instead of the active-set scheduler. The two modes
	// are cycle-for-cycle identical (the equivalence tests pin this); the
	// flag exists for those tests and for debugging scheduler suspicions.
	// It applies only to sequential stepping (Workers <= 1) and is
	// ignored by the shard-parallel stepper.
	FullScan bool

	// Aggregate counters, maintained by the fabric.
	NumGenerated   uint64 // packets accepted into NIC queues
	NumBlocked     uint64 // generation attempts refused (NIC queue full)
	NumDelivered   uint64
	DeliveredPhits uint64
	InFlight       int64

	// Congestion-management counters; all stay zero unless
	// Cfg.Congestion.Enabled (see congestion.go).
	NumMarked   uint64 // delivered packets carrying at least one ECN mark
	NumNotified uint64 // congestion notifications delivered to sources
	NumShed     uint64 // injection attempts shed at the NIC shed cap

	// Fault-injection counters; all stay zero unless a fault plan is
	// scheduled (see faults.go).
	NumDropped    uint64 // packets killed by faults (links, routers, detour cap)
	NumUnroutable uint64 // packets to destinations partitioned away from their source

	// faults is the fault-injection engine; nil unless Cfg.Faults
	// schedules something (see faults.go).
	faults *faultState

	// notifyScratch is replayNotifications' reusable gather buffer.
	notifyScratch []notifyRec

	// OnDeliver, when non-nil, observes every delivered packet at its
	// delivery cycle (tail consumed by the destination node). Deliveries
	// are collected per shard during event handling and replayed at the
	// handle barrier in ascending destination order — which is also the
	// order the events sit in the calendar bucket — so the callback
	// sequence is bit-identical at every worker count. The callback must
	// treat the network as read-only and may retain the packet's fields
	// only for the duration of the call.
	OnDeliver func(p *Packet, now int64)

	// OnNotify, when non-nil, observes every congestion notification at
	// the cycle it reaches its source: node is the source node the
	// notification targets, sev the delivered packet's mark count.
	// Notifications are collected per shard during event handling and
	// replayed at the handle barrier in ascending node order
	// (replayNotifications), so the callback sequence is bit-identical
	// at every worker count. It runs at a sequential point and may
	// mutate its own (source-side) state freely, but must treat the
	// network as read-only. The traffic package's AIMD throttle is the
	// intended consumer.
	OnNotify func(node, sev int, now int64)

	// OnDrop, when non-nil, observes every packet killed by a fault at
	// the cycle it is removed (see faults.go). It runs at a sequential
	// point, in ascending packet-ID order within one fault application —
	// bit-identical at every worker count. The packet's fields are
	// stable only for the duration of the call (the struct is recycled);
	// consumers must copy what they keep. The traffic package's
	// retransmit source is the intended consumer. Packets counted
	// NumUnroutable for a partitioned destination are not reported:
	// retrying them is futile by construction.
	OnDrop func(p *Packet, now int64)
}

// Build constructs a network for cfg with the given routing algorithm and
// random seed.
func Build(cfg Config, alg Algorithm, seed uint64) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if alg == nil {
		return nil, fmt.Errorf("router: nil algorithm")
	}
	topo, err := topology.New(cfg.Topo)
	if err != nil {
		return nil, err
	}
	// Store the congestion and fault configurations resolved, so
	// everything downstream (the traffic throttle and retransmit source
	// included) reads concrete values.
	cfg.Congestion = cfg.Congestion.Resolved(cfg)
	cfg.Faults = cfg.Faults.Resolved(cfg)
	n := &Network{Cfg: cfg, Topo: topo, Alg: alg, seed: seed}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > topo.Groups {
		workers = topo.Groups
	}
	if workers > 1 {
		// Cross-shard packet handoffs happen only over global links
		// (local links never leave a group, and shards are whole
		// groups). The shard stepper relies on the upstream tail-leave
		// strictly preceding the downstream head-arrival, which holds
		// exactly when the pipeline plus the link latency exceed the
		// packet serialization time.
		if cfg.PipelineLatency+cfg.LatencyGlobal <= cfg.PacketSize {
			return nil, fmt.Errorf(
				"router: workers %d needs PipelineLatency+LatencyGlobal (%d) > PacketSize (%d) so cross-shard handoffs are barrier-ordered",
				workers, cfg.PipelineLatency+cfg.LatencyGlobal, cfg.PacketSize)
		}
	}
	n.workers = workers

	horizon := max64(int64(cfg.LatencyGlobal), int64(cfg.LatencyLocal)) +
		int64(cfg.PipelineLatency) + int64(cfg.PacketSize) + 8
	if cfg.Congestion.Enabled {
		// Congestion notifications are scheduled NotifyLatency cycles
		// past the delivery cycle; the ring must cover that reach.
		horizon = max64(horizon, int64(cfg.Congestion.NotifyLatency)+1)
	}
	ringSize := int64(1)
	for ringSize < horizon {
		ringSize <<= 1
	}
	n.mask = ringSize - 1

	n.shards = make([]netShard, workers)
	n.shardOf = make([]int16, topo.Routers)
	for s := range n.shards {
		sh := &n.shards[s]
		sh.id = int32(s)
		sh.groupLo = int32(s * topo.Groups / workers)
		sh.groupHi = int32((s + 1) * topo.Groups / workers)
		sh.routerLo = sh.groupLo * int32(topo.A)
		sh.routerHi = sh.groupHi * int32(topo.A)
		sh.nodeLo = sh.routerLo * int32(topo.P)
		sh.nodeHi = sh.routerHi * int32(topo.P)
		sh.ring = make([][]event, ringSize)
		sh.nicActive = newActiveSet(sh.nodeLo, sh.nodeHi)
		sh.routeActive = newActiveSet(sh.routerLo, sh.routerHi)
		sh.linkActive = newActiveSet(sh.routerLo, sh.routerHi)
		if workers > 1 {
			sh.outbox = make([][]timedEvent, workers)
		}
		for r := sh.routerLo; r < sh.routerHi; r++ {
			n.shardOf[r] = int16(s)
		}
	}

	n.Routers = make([]*Router, topo.Routers)
	for id := range n.Routers {
		n.Routers[id] = newRouter(id, n)
		n.Routers[id].shard = &n.shards[n.shardOf[id]]
	}
	n.groups = make([][]*Router, topo.Groups)
	for g := range n.groups {
		members := make([]*Router, topo.A)
		for i := 0; i < topo.A; i++ {
			members[i] = n.Routers[topo.RouterID(g, i)]
		}
		n.groups[g] = members
	}
	n.nics = make([]nic, topo.Nodes)
	nicShrink := 4 * cfg.NICQueuePackets
	if nicShrink < 16 {
		nicShrink = 16
	}
	for i := range n.nics {
		n.nics[i].q.shrinkCap = nicShrink
	}
	if cfg.Congestion.Enabled {
		// ECN marking: an occupancy watcher per non-ejection output port
		// keeps the port's mark state current at the crossing instants,
		// so the allocator's hot path reads one bool (see congestion.go).
		// Ejection channels are skipped — their occupancy cap is
		// dominated by the infinite ejection credit pool, so a
		// percentage threshold there is meaningless.
		for _, r := range n.Routers {
			for port := range r.out {
				o := &r.out[port]
				if o.kind == Injection {
					continue
				}
				o.markTh = o.occCap * int32(cfg.Congestion.MarkPct) / 100
				n.WatchOccupancy(r.ID, port, o.markTh, func(above bool) {
					//lint:sharded occupancy watchers fire inside occDelta on the shard that owns the port's router
					o.ecnHot = above
				})
			}
		}
	}
	if cfg.Faults.Enabled() {
		n.faults = newFaultState(cfg.Faults, topo)
		n.computeComponentsInto(n.faults.comp)
	}
	alg.Attach(n)
	return n, nil
}

// maxFreePackets bounds the delivery freelist so a saturation transient's
// peak in-flight population is not retained forever.
const maxFreePackets = 1 << 15

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Now returns the current simulation cycle.
func (n *Network) Now() int64 { return n.now }

// Group returns the routers of group g, in position order.
func (n *Network) Group(g int) []*Router { return n.groups[g] }

// NICBacklog returns the number of packets waiting in node i's NIC queue.
func (n *Network) NICBacklog(i int) int { return n.nics[i].len() }

// Workers returns the number of shard workers stepping this network
// (1 = sequential).
func (n *Network) Workers() int { return n.workers }

// ShardOfGroup returns the worker shard that owns group g. Algorithm
// state that is mutated from per-router hooks and aggregated globally
// (e.g. the ECtN dirty-group set) uses this to keep its mutation paths
// shard-local.
func (n *Network) ShardOfGroup(g int) int {
	return int(n.shardOf[g*n.Topo.A])
}

// portKind classifies a port index using the topology layout.
func portKind(t *topology.Dragonfly, port int) PortKind {
	switch {
	case t.IsInjectionPort(port):
		return Injection
	case t.IsLocalPort(port):
		return Local
	default:
		return Global
	}
}

// Inject offers a new packet from node src to node dst at the current
// cycle. It reports false when the source NIC queue is full (the caller —
// the traffic process — is expected to stall, modeling source throttling
// past saturation). Inject is a sequential entry point: it must not be
// called while a Step is in progress.
func (n *Network) Inject(src, dst int) bool { return n.inject(src, dst, 0) }

// InjectRetry is Inject for a retransmission: the packet carries the
// given attempt number (see the RetryLimit fault mode in faults.go).
func (n *Network) InjectRetry(src, dst int, attempt int8) bool {
	return n.inject(src, dst, attempt)
}

func (n *Network) inject(src, dst int, attempt int8) bool {
	q := &n.nics[src]
	if n.faults != nil {
		srcR := int32(n.Topo.RouterOfNode(src))
		if n.Routers[srcR].down {
			// A dead router's NICs accept nothing.
			n.NumBlocked++
			return false
		}
		dstR := int32(n.Topo.RouterOfNode(dst))
		if !n.reachableRouters(srcR, dstR) {
			// The destination is partitioned away (or its router is
			// down): the packet is accepted by the NIC and immediately
			// discarded as unroutable — counted, never spun through the
			// fabric looking for a path that cannot exist.
			n.NumGenerated++
			n.NumUnroutable++
			return true
		}
	}
	if n.Cfg.Congestion.Enabled && q.len() >= n.Cfg.Congestion.ShedCap {
		// Graceful degradation: past the shed cap the NIC drops new
		// packets explicitly (counted, never silent) instead of growing
		// its backlog to NICQueuePackets — a saturated source reaches a
		// stable bounded operating point (see congestion.go).
		n.NumShed++
		return false
	}
	if q.len() >= n.Cfg.NICQueuePackets {
		n.NumBlocked++
		return false
	}
	var p *Packet
	if k := len(n.freePkts); k > 0 {
		p = n.freePkts[k-1]
		n.freePkts[k-1] = nil
		n.freePkts = n.freePkts[:k-1]
	} else {
		//lint:alloc freelist miss: warm-up only; steady state recycles retired packets
		p = new(Packet)
	}
	*p = Packet{
		ID:          n.pktID,
		Src:         int32(src),
		Dst:         int32(dst),
		DstRouter:   int32(n.Topo.RouterOfNode(dst)),
		Size:        int32(n.Cfg.PacketSize),
		GenTime:     n.now,
		Inter:       -1,
		LastGroup:   -1,
		CountedPort: -1,
		CountedLink: -1,
		Attempt:     attempt,
	}
	n.pktID++
	q.push(p)
	n.Routers[n.Topo.RouterOfNode(src)].shard.nicActive.add(int32(src))
	n.NumGenerated++
	n.InFlight++
	return true
}

// scheduleFrom appends an event strictly in the future, generated while
// servicing shard src. An event targeting a router of the same shard
// goes straight onto that shard's calendar ring; a cross-shard event is
// appended to the (src, dst) mailbox instead and drained into dst's ring
// at the cycle barrier, in ascending (source shard, generation order) —
// see parallel.go. With one worker every event is same-shard and the
// path is the original direct ring append.
func (n *Network) scheduleFrom(src *netShard, cycle int64, ev event) {
	if cycle <= n.now {
		panic(fmt.Sprintf("router: scheduling event kind %d at cycle %d <= now %d", ev.kind, cycle, n.now))
	}
	if cycle-n.now > n.mask {
		panic(fmt.Sprintf("router: event horizon exceeded: +%d cycles > ring %d", cycle-n.now, n.mask+1))
	}
	if n.workers > 1 {
		if t := n.shardOf[ev.router]; int32(t) != src.id {
			src.outbox[t] = append(src.outbox[t], timedEvent{cycle: cycle, ev: ev})
			return
		}
	}
	idx := cycle & n.mask
	src.ring[idx] = append(src.ring[idx], ev)
}

// Step advances the simulation by one cycle: scheduled events, the
// algorithm's per-cycle work (broadcasts), NIC injection, routing
// decisions, Speedup allocation iterations and link serialization.
//
// The per-cycle phases run over the active sets (NICs with backlog,
// routers with unrouted heads, routers with staged output), so the cost
// of a cycle is proportional to traffic, not topology size. The phase
// barriers and the per-phase ascending-id visit order are identical to
// the original full scan, which remains available behind FullScan.
// With Workers > 1 the phases run sharded across worker goroutines
// (stepParallel); the result is cycle-for-cycle identical to sequential
// stepping — see parallel.go for the determinism argument.
func (n *Network) Step() {
	if n.workers > 1 {
		n.stepParallel()
		return
	}
	sh := &n.shards[0]
	idx := n.now & n.mask
	bucket := sh.ring[idx]
	for i := range bucket {
		n.handle(&bucket[i])
	}
	sh.ring[idx] = bucket[:0]
	n.replayDeliveries()
	n.replayNotifications()
	if n.faults != nil {
		n.applyFaults()
	}

	n.Alg.BeginCycle(n)

	if n.FullScan {
		n.stepFull()
	} else {
		n.stepShard(sh)
	}
	n.now++
}

// stepFull is the original full-scan cycle loop: every NIC, every router,
// every phase, regardless of activity. Kept for the cycle-exactness
// equivalence tests and as the reference semantics (sequential mode
// only).
func (n *Network) stepFull() {
	for i := range n.nics {
		n.nicDrain(i)
	}
	for _, r := range n.Routers {
		r.routePhase()
	}
	for it := 0; it < n.Cfg.Speedup; it++ {
		for _, r := range n.Routers {
			r.allocate()
		}
	}
	for _, r := range n.Routers {
		r.linkPhase()
	}
}

// stepShard services one shard's active sets through the NIC-drain,
// routing, allocation and link phases. Stale entries (drained NICs,
// routers whose heads were all granted, emptied output stages) are
// pruned lazily as each list is scanned; activation happens at the
// mutation points (Inject, event handling, nicDrain). Scans compact the
// sorted id slice in place, so a steady-state cycle allocates nothing.
//
// No phase reads or writes state outside the shard (routing decisions
// consult only the deciding router and its own group's broadcast state;
// allocation and link serialization touch only the router's own ports;
// cross-shard effects travel as mailboxed events), so under parallel
// stepping the shards run this function concurrently without internal
// barriers.
func (n *Network) stepShard(sh *netShard) {
	nics := sh.nicActive.sorted()
	nicLive := nics[:0]
	for _, id := range nics {
		if n.nics[id].len() == 0 {
			sh.nicActive.drop(id)
			continue
		}
		nicLive = append(nicLive, id)
		n.nicDrain(int(id))
	}
	sh.nicActive.setLive(nicLive)

	sh.allocList = sh.allocList[:0]
	routers := sh.routeActive.sorted()
	routeLive := routers[:0]
	for _, id := range routers {
		r := n.Routers[id]
		if r.unrouted == 0 {
			sh.routeActive.drop(id)
			continue
		}
		routeLive = append(routeLive, id)
		r.routePhase()
		if len(r.reqPorts) > 0 {
			sh.allocList = append(sh.allocList, r)
		}
	}
	sh.routeActive.setLive(routeLive)

	for it := 0; it < n.Cfg.Speedup; it++ {
		for _, r := range sh.allocList {
			r.allocate()
		}
	}

	links := sh.linkActive.sorted()
	linkLive := links[:0]
	for _, id := range links {
		r := n.Routers[id]
		if r.staged == 0 {
			sh.linkActive.drop(id)
			continue
		}
		linkLive = append(linkLive, id)
		r.linkPhase()
	}
	sh.linkActive.setLive(linkLive)
}

// Run advances the simulation by `cycles` cycles, eliding quiet spans
// (see elide.go): when nothing can happen until the next scheduled
// event, the clock jumps there instead of stepping cycle by cycle. The
// result is bit-identical to stepping every cycle. Callers that inject
// traffic between cycles drive Step (or the elision helpers) themselves;
// Run is for injection-free spans (drains, idle gaps).
func (n *Network) Run(cycles int64) {
	end := n.now + cycles
	for n.now < end {
		if j, ok := n.ElideHorizon(end); ok {
			n.ElideTo(j)
			continue
		}
		n.Step()
	}
}

// nicDrain moves the head of node i's NIC queue into an injection VC of
// its router when the injection channel is idle and a VC has room.
func (n *Network) nicDrain(i int) {
	q := &n.nics[i]
	if q.len() == 0 || q.linkFreeAt > n.now {
		return
	}
	r := n.Routers[n.Topo.RouterOfNode(i)]
	port := n.Topo.ChannelOfNode(i)
	ip := &r.in[port]
	size := int32(n.Cfg.PacketSize)
	best, bestFree := -1, int32(0)
	for vc := range ip.vcs {
		if f := ip.vcs[vc].free(); f >= size && f > bestFree {
			best, bestFree = vc, f
		}
	}
	if best < 0 {
		return // injection buffers full; retry next cycle
	}
	p := q.pop()
	p.resetQueueState(n.now + int64(size) - 1)
	g := int32(n.Topo.GroupOf(r.ID))
	p.LastGroup = g
	p.LocalMisThisGroup = false
	p.LocalHopsGroup = 0
	newHead := ip.vcs[best].empty()
	ip.vcs[best].push(p)
	ip.queued++
	r.queued++
	if newHead {
		ip.unrouted++
		r.unrouted++
		r.shard.routeActive.add(int32(r.ID))
	}
	q.linkFreeAt = n.now + int64(size)
	n.Alg.OnArrive(r, p, port, best)
}

// handle applies one scheduled event. Events are also the activation
// points of the active-set scheduler: a head arrival or an exposed next
// head puts its router on the route list, staged output work puts the
// router on the link list, and returning credits or freed output space
// re-arm a router that may have been blocked on them. Every mutation is
// confined to the target router's shard (activation flags, buffer and
// credit state, algorithm hook state keyed by the router or its group);
// deliveries are collected on the shard and replayed at the handle
// barrier (replayDeliveries).
func (n *Network) handle(ev *event) {
	switch ev.kind {
	case evHeadArrive:
		r := n.Routers[ev.router]
		p := ev.pkt
		p.resetQueueState(n.now + int64(p.Size) - 1)
		g := int32(n.Topo.GroupOf(r.ID))
		if p.LastGroup != g {
			p.LastGroup = g
			p.LocalMisThisGroup = false
			p.LocalHopsGroup = 0
		}
		ip := &r.in[ev.port]
		newHead := ip.vcs[ev.vc].empty()
		ip.vcs[ev.vc].push(p)
		ip.queued++
		r.queued++
		if newHead {
			ip.unrouted++
			r.unrouted++
			r.shard.routeActive.add(ev.router)
		}
		n.Alg.OnArrive(r, p, int(ev.port), int(ev.vc))

	case evTailLeave:
		r := n.Routers[ev.router]
		ip := &r.in[ev.port]
		vq := &ip.vcs[ev.vc]
		p := vq.pop()
		if p != ev.pkt {
			panic("router: tail-leave for a packet not at queue head")
		}
		ip.queued--
		r.queued--
		if !vq.empty() {
			// The next packet becomes head; it has never been granted
			// (only heads are), so it needs routing.
			ip.unrouted++
			r.unrouted++
			r.shard.routeActive.add(ev.router)
		}
		n.Alg.OnDequeue(r, p, int(ev.port), int(ev.vc))
		if ip.upRouter >= 0 {
			up := n.Routers[ip.upRouter]
			lat := up.out[ip.upPort].latency
			n.scheduleFrom(r.shard, n.now+lat,
				event{kind: evCredit, router: ip.upRouter, port: ip.upPort, vc: ev.vc, size: p.Size})
		}

	case evCredit:
		r := n.Routers[ev.router]
		r.out[ev.port].credits[ev.vc] += ev.size
		r.occDelta(int(ev.port), -ev.size)
		// A head blocked on these credits keeps its router in the route
		// set (unrouted > 0 prevents pruning), so this add is usually a
		// flag-check no-op; it is kept as insurance against any future
		// scheduler that prunes more aggressively.
		r.shard.routeActive.add(ev.router)

	case evPipeDone:
		r := n.Routers[ev.router]
		r.out[ev.port].qPush(outEntry{pkt: ev.pkt, vc: ev.vc})
		r.staged++
		r.noteStaged(ev.port)
		r.shard.linkActive.add(ev.router)

	case evOutFree:
		r := n.Routers[ev.router]
		r.out[ev.port].outFree += ev.size
		r.occDelta(int(ev.port), -ev.size)
		r.shard.routeActive.add(ev.router)

	case evDeliver:
		// Counters, the OnDeliver observer and freelist recycling run at
		// the handle barrier (replayDeliveries), keeping the handle phase
		// free of global mutations. Delivery events of one cycle all come
		// from the same earlier linkPhase, so per-shard buckets hold them
		// in ascending destination order and the shard-order replay
		// reproduces the sequential callback order exactly.
		sh := n.Routers[ev.router].shard
		sh.delivered = append(sh.delivered, ev.pkt)

	case evNotify:
		// Collected per shard and replayed at the handle barrier
		// (replayNotifications), like deliveries: the handle phase stays
		// free of global mutations and the source-side callback runs at
		// a sequential point.
		sh := n.Routers[ev.router].shard
		sh.notified = append(sh.notified, notifyRec{node: ev.size, sev: ev.vc})
	}
}

// replayDeliveries applies the deliveries collected during the handle
// phase, in ascending shard order: aggregate counters, the OnDeliver
// observer and freelist recycling. It runs at a sequential point (after
// the handle barrier), so observers may be arbitrary single-threaded
// code.
func (n *Network) replayDeliveries() {
	for s := range n.shards {
		sh := &n.shards[s]
		if len(sh.delivered) == 0 {
			continue
		}
		for _, p := range sh.delivered {
			n.NumDelivered++
			n.DeliveredPhits += uint64(p.Size)
			n.InFlight--
			if p.ECNMarks > 0 {
				// The destination echoes the congestion marks back to the
				// source as an evNotify, one reverse-path latency later.
				// This runs at a sequential point, so appending straight
				// onto the target shard's ring is safe at any worker
				// count (the same contract Inject relies on), and the
				// event carries no packet pointer — the packet is
				// recycled below.
				n.NumMarked++
				src := p.Src
				rtr := int32(n.Topo.RouterOfNode(int(src)))
				n.scheduleFrom(n.Routers[rtr].shard,
					n.now+int64(n.Cfg.Congestion.NotifyLatency),
					event{kind: evNotify, router: rtr, vc: p.ECNMarks, size: src})
			}
			if n.OnDeliver != nil {
				// The packet's fields are stable for the duration of the
				// callback; after it returns the packet may be recycled.
				n.OnDeliver(p, n.now)
			}
			if len(n.freePkts) < maxFreePackets {
				n.freePkts = append(n.freePkts, p)
			}
		}
		for i := range sh.delivered {
			sh.delivered[i] = nil
		}
		sh.delivered = sh.delivered[:0]
	}
}

// replayNotifications applies the congestion notifications collected
// during the handle phase, sorted into ascending source-node order
// (stable, so multiple notifications for one node keep their delivery
// order): NumNotified and the OnNotify callback. Distinct-node updates
// commute, but the sort makes the callback order itself — not just the
// end state — identical at every worker count, which is the contract
// OnNotify documents. Like replayDeliveries it runs at a sequential
// point, so the consumer may be arbitrary single-threaded code.
func (n *Network) replayNotifications() {
	total := 0
	for s := range n.shards {
		total += len(n.shards[s].notified)
	}
	if total == 0 {
		return
	}
	buf := n.notifyScratch[:0]
	for s := range n.shards {
		sh := &n.shards[s]
		buf = append(buf, sh.notified...)
		sh.notified = sh.notified[:0]
	}
	// Stable insertion sort by node: a cycle rarely carries more than a
	// handful of notifications, and each shard's slice is already in a
	// deterministic per-shard order.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j-1].node > buf[j].node; j-- {
			buf[j-1], buf[j] = buf[j], buf[j-1]
		}
	}
	for _, rec := range buf {
		n.NumNotified++
		if n.OnNotify != nil {
			n.OnNotify(int(rec.node), int(rec.sev), n.now)
		}
	}
	n.notifyScratch = buf[:0]
}

// WatchOccupancy registers fn to fire whenever the occupancy of output
// `port` of router `router` crosses `threshold`: fn(true) when the
// occupancy rises strictly above it, fn(false) when it falls back to or
// below it. The callback fires at the mutation instant (allocation
// grant, credit return, output-buffer free), not at cycle boundaries, so
// it must be cheap and must not mutate fabric state. Under parallel
// stepping the mutation points run on the owning router's shard worker,
// so the callback must confine its writes to state owned by that
// router's shard (per-group broadcast state qualifies: a group never
// spans shards). No initial callback is made; the caller derives the
// starting state from Occupancy (zero at construction). This is the
// change-driven notification primitive the event-driven algorithms (PB
// saturation flags) are built on.
func (n *Network) WatchOccupancy(router, port int, threshold int32, fn func(above bool)) {
	o := &n.Routers[router].out[port]
	o.watchers = append(o.watchers, occWatcher{threshold: threshold, fn: fn})
}

// CheckInvariants validates credit/buffer accounting across the whole
// network plus packet conservation, and cross-checks any incremental
// algorithm state (StateChecker). Tests call it liberally; it is not
// on the simulation fast path. It must be called between Steps (the
// network is quiescent then, at any worker count); after a parallel
// cycle it additionally verifies that every cross-shard mailbox was
// drained at the cycle barrier.
func (n *Network) CheckInvariants() error {
	for _, r := range n.Routers {
		if err := r.checkInvariants(); err != nil {
			return err
		}
	}
	if sc, ok := n.Alg.(StateChecker); ok {
		if err := sc.CheckState(n); err != nil {
			return err
		}
	}
	if n.InFlight < 0 {
		return fmt.Errorf("router: negative in-flight count %d", n.InFlight)
	}
	for i := range n.nics {
		if n.nics[i].len() > 0 {
			sh := n.Routers[n.Topo.RouterOfNode(i)].shard
			if !sh.nicActive.has(int32(i)) {
				return fmt.Errorf("router: NIC %d has backlog %d but is not in shard %d's NIC set", i, n.nics[i].len(), sh.id)
			}
		}
	}
	for s := range n.shards {
		sh := &n.shards[s]
		if len(sh.delivered) != 0 {
			return fmt.Errorf("router: shard %d holds %d unreplayed deliveries between cycles", s, len(sh.delivered))
		}
		if len(sh.notified) != 0 {
			return fmt.Errorf("router: shard %d holds %d unreplayed congestion notifications between cycles", s, len(sh.notified))
		}
		for t, mb := range sh.outbox {
			if len(mb) != 0 {
				return fmt.Errorf("router: mailbox %d->%d holds %d undrained events between cycles", s, t, len(mb))
			}
		}
	}
	// Conservation: every generated packet is delivered, killed by a
	// fault, discarded as unroutable, or still in flight. The fault
	// counters are identically zero without a plan, reducing this to the
	// original generated = delivered + in-flight.
	if n.NumGenerated-n.NumDelivered-n.NumDropped-n.NumUnroutable != uint64(n.InFlight) {
		return fmt.Errorf("router: conservation violated: generated %d - delivered %d - dropped %d - unroutable %d != in-flight %d",
			n.NumGenerated, n.NumDelivered, n.NumDropped, n.NumUnroutable, n.InFlight)
	}
	if n.faults != nil {
		if err := n.checkFaultState(); err != nil {
			return err
		}
	}
	return nil
}

// LinkBusy sums the cycles spent serializing phits, per port class,
// across the whole network since construction. Differencing two
// snapshots over a measurement window yields mean link utilization
// (busy cycles / (window × links)).
func (n *Network) LinkBusy() (ejection, local, global int64) {
	for _, r := range n.Routers {
		for port := range r.out {
			b := r.out[port].BusyCycles
			switch r.out[port].kind {
			case Injection:
				ejection += b
			case Local:
				local += b
			default:
				global += b
			}
		}
	}
	return ejection, local, global
}

// LinkCounts returns the number of unidirectional links per class.
func (n *Network) LinkCounts() (ejection, local, global int) {
	t := n.Topo
	return t.Nodes, t.Routers * (t.A - 1), t.Routers * t.H
}

// Drain runs the network with no new injection until every in-flight
// packet is delivered or maxCycles elapse; it reports whether the network
// fully drained. Tests use it to prove forward progress (deadlock
// freedom in practice).
// Like Run, Drain elides quiet spans (e.g. a lone packet serializing
// down a long global link) — bit-identically to stepping them.
func (n *Network) Drain(maxCycles int64) bool {
	end := n.now + maxCycles
	for n.now < end && n.InFlight > 0 {
		if j, ok := n.ElideHorizon(end); ok {
			n.ElideTo(j)
			continue
		}
		n.Step()
	}
	return n.InFlight == 0
}
