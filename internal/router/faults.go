package router

import (
	"fmt"
	"sort"

	"cbar/internal/rng"
	"cbar/internal/topology"
)

// Fault injection: a deterministic schedule of link and router failures
// (and repairs) applied to a running fabric.
//
// The plan is a list of FaultEvents sorted by cycle. Due events are
// applied at the sequential point of Step — after the handle barrier,
// before Alg.BeginCycle — so fault state is bit-identical at every
// worker count. Applying a down event does three things:
//
//   - Liveness flags. A failed link marks the outPort on *both* ends
//     dead (links are full duplex); a down router marks every one of its
//     non-injection ports and the matching peer ports dead. Routing
//     reads one bool per candidate (PortAlive), so the hot path pays a
//     single flag check.
//   - Kills. Every packet committed to a dead direction is removed and
//     counted in NumDropped: staged output entries, pipeline
//     completions in flight, packets serializing on the wire, and (for
//     a down router) NIC backlogs, input queues and ejecting packets.
//     Each kill reverses exactly the accounting its location still
//     holds — grant reservations for staged/pipelined packets, the
//     downstream credit for wire packets, the upstream credit for
//     queued packets — so CheckInvariants stays clean through any
//     fault sequence.
//   - Reachability. A router-granularity component map is recomputed
//     (BFS over live links). Inject refuses sources on dead routers and
//     counts packets to unreachable destinations as NumUnroutable;
//     in-flight packets whose destination becomes unreachable are
//     detected at their next routing decision and killed at the next
//     sequential point, also counted NumUnroutable.
//
// Routing interacts with faults in two layers. The routing algorithms
// filter candidate ports on liveness themselves (package routing), so a
// healthy candidate set never changes — with no faults scheduled the RNG
// draw sequence, and therefore the whole simulation, is bit-identical to
// a build without this file. When an algorithm still requests a dead
// port (its minimal path died and the policy has no alternative), the
// router-side escape in faultAdjust redirects the packet through a
// random live transit port, counting a FaultDetour; a packet that
// accumulates maxFaultDetours of them is dropped as hopelessly wandering.
// Escapes can violate the ascending-VC deadlock discipline, so forward
// progress under faults is guaranteed by the detour cap (and optional
// retransmission), not by the VC ladder.
//
// Retransmission is the optional source-side reaction: with
// RetryLimit > 0 the traffic injector re-offers dropped packets with
// exponential backoff (package traffic consumes the OnDrop callback).
// The base mode is drop-and-count.

// FaultKind discriminates fault events.
type FaultKind uint8

const (
	// LinkDown fails the bidirectional link attached to (Router, Port).
	LinkDown FaultKind = iota
	// LinkUp repairs a previously failed link.
	LinkUp
	// RouterDown fails a whole router: all its links, queues and NICs.
	RouterDown
	// RouterUp repairs a previously failed router.
	RouterUp
)

func (k FaultKind) String() string {
	switch k {
	case LinkDown:
		return "linkdown"
	case LinkUp:
		return "linkup"
	case RouterDown:
		return "routerdown"
	case RouterUp:
		return "routerup"
	}
	return "invalid"
}

// FaultEvent is one scheduled fault: Kind applied to Router (and, for
// link events, the link on output Port) at the start of Cycle.
type FaultEvent struct {
	Kind   FaultKind
	Router int32
	Port   int16 // link events only; ignored for router events
	Cycle  int64
}

// FaultConfig is the fault-injection plan. The zero value schedules
// nothing and is bit-inert: no state is allocated, no hot-path branch is
// taken beyond one nil check per cycle.
type FaultConfig struct {
	// Events is the explicit fault schedule. Events are applied in
	// ascending cycle order (stable for equal cycles: listed order).
	Events []FaultEvent

	// RandomPct, when positive, additionally fails that percentage of
	// the topology's physical global cables (at least one) at cycle
	// RandomAt, sampled without replacement from the deterministic
	// stream seeded by RandomSeed. The expansion happens at Build, so
	// the same (topology, pct, seed) triple always fails the same
	// cables.
	RandomPct  float64
	RandomAt   int64
	RandomSeed uint64

	// RetryLimit, when positive, makes the traffic injector re-offer a
	// dropped packet up to this many times, with exponential backoff
	// RetryBase<<attempt cycles after the drop. Zero (the default)
	// means drop-and-count.
	RetryLimit int

	// RetryBase is the backoff unit in cycles (default
	// LatencyLocal+LatencyGlobal, a worst-case one-way path).
	RetryBase int64
}

// Enabled reports whether the plan schedules any fault.
func (fc FaultConfig) Enabled() bool {
	return len(fc.Events) > 0 || fc.RandomPct > 0
}

// Resolved returns the configuration with zero-valued knobs replaced by
// their defaults.
func (fc FaultConfig) Resolved(c Config) FaultConfig {
	if fc.RetryLimit > 0 && fc.RetryBase == 0 {
		fc.RetryBase = int64(c.LatencyLocal + c.LatencyGlobal)
	}
	return fc
}

// maxRetryLimit bounds the retransmission count so the exponential
// backoff shift cannot overflow.
const maxRetryLimit = 16

// validate checks a resolved configuration against the fabric it will
// run in.
func (fc FaultConfig) validate(c Config) error {
	t, err := topology.New(c.Topo)
	if err != nil {
		return err
	}
	for i, ev := range fc.Events {
		if ev.Kind > RouterUp {
			return fmt.Errorf("router: fault event %d has invalid kind %d", i, ev.Kind)
		}
		if ev.Router < 0 || int(ev.Router) >= t.Routers {
			return fmt.Errorf("router: fault event %d router %d outside [0,%d)", i, ev.Router, t.Routers)
		}
		if ev.Kind == LinkDown || ev.Kind == LinkUp {
			if int(ev.Port) < t.FirstLocalPort() || int(ev.Port) >= t.Radix() {
				return fmt.Errorf("router: fault event %d port %d is not a link port (want [%d,%d))",
					i, ev.Port, t.FirstLocalPort(), t.Radix())
			}
		}
		if ev.Cycle < 0 {
			return fmt.Errorf("router: fault event %d cycle %d < 0", i, ev.Cycle)
		}
	}
	if fc.RandomPct < 0 || fc.RandomPct > 100 {
		return fmt.Errorf("router: random fault fraction %g%% outside [0,100]", fc.RandomPct)
	}
	if fc.RandomPct > 0 && fc.RandomAt < 0 {
		return fmt.Errorf("router: random fault cycle %d < 0", fc.RandomAt)
	}
	if fc.RetryLimit < 0 || fc.RetryLimit > maxRetryLimit {
		return fmt.Errorf("router: retry limit %d outside [0,%d]", fc.RetryLimit, maxRetryLimit)
	}
	if fc.RetryLimit > 0 && fc.RetryBase < 1 {
		return fmt.Errorf("router: retry backoff base %d < 1", fc.RetryBase)
	}
	return nil
}

// plan expands the random-cable clause into explicit LinkDown events and
// returns the full schedule in ascending cycle order (stable, so
// same-cycle events keep their listed order, random failures last).
func (fc FaultConfig) plan(t *topology.Dragonfly) []FaultEvent {
	events := append([]FaultEvent(nil), fc.Events...)
	if fc.RandomPct > 0 {
		// Enumerate each physical cable once by its canonical endpoint
		// (the lower-numbered group), then partial-Fisher-Yates k of
		// them from the seeded stream.
		type endpoint struct {
			router int32
			port   int16
		}
		var cables []endpoint
		for g := 0; g < t.Groups; g++ {
			for l := 0; l < t.GlobalLinks; l++ {
				if !t.CanonicalGlobalLink(g, l) {
					continue
				}
				pos, k := t.GlobalLinkOwner(l)
				cables = append(cables, endpoint{
					router: int32(t.RouterID(g, pos)),
					port:   int16(t.GlobalPort(k)),
				})
			}
		}
		k := int(fc.RandomPct*float64(len(cables))/100 + 0.5)
		if k < 1 {
			k = 1
		}
		if k > len(cables) {
			k = len(cables)
		}
		r := rng.New(fc.RandomSeed, 0)
		for i := 0; i < k; i++ {
			j := i + r.Intn(len(cables)-i)
			cables[i], cables[j] = cables[j], cables[i]
			events = append(events, FaultEvent{
				Kind: LinkDown, Router: cables[i].router, Port: cables[i].port, Cycle: fc.RandomAt,
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Cycle < events[j].Cycle })
	return events
}

// maxFaultDetours caps the escape redirections a single packet may
// accumulate before it is dropped as unable to make progress around the
// fault pattern.
const maxFaultDetours = 16

// pendingKill reasons.
const (
	killUnreachable uint8 = iota // destination partitioned: NumUnroutable
	killDetourCap                // detour cap exhausted: NumDropped
)

// pendingKill is a head packet flagged for removal by a routing decision
// (unreachable destination or exhausted detour budget). The flag is
// raised during the shard-parallel route phase and resolved at the next
// sequential point, after re-verifying that the packet is still the
// ungranted head (and, for unreachable kills, that no repair restored
// the path in between).
type pendingKill struct {
	router int32
	port   int16
	vc     int8
	reason uint8
	pkt    *Packet
}

// deferredCredit is an upstream credit return owed by a kill, scheduled
// after the calendar sweep (the sweep must not mutate ring buckets while
// iterating them).
type deferredCredit struct {
	router int32
	port   int16
	vc     int8
	size   int32
}

// faultState is the network's fault-injection engine; nil when the plan
// is empty.
type faultState struct {
	cfg    FaultConfig
	events []FaultEvent // full expanded plan, ascending cycle
	next   int          // cursor: events[:next] have been applied

	// comp labels each live router's connected component over live
	// links; -1 for down routers. Labels are assigned in ascending
	// first-router order, so equal fault state yields equal labels at
	// any worker count.
	comp []int32

	// Kill machinery scratch, reused across applications.
	victims  map[*Packet]struct{}
	killed   []*Packet
	defCred  []deferredCredit
	bfsQueue []int32
}

func newFaultState(fc FaultConfig, t *topology.Dragonfly) *faultState {
	return &faultState{
		cfg:     fc,
		events:  fc.plan(t),
		comp:    make([]int32, t.Routers),
		victims: make(map[*Packet]struct{}),
	}
}

// PortAlive reports whether output `port` leads over a live link to a
// live router. Ejection channels are always alive (a router's own nodes
// die with the router, which Inject handles). Routing algorithms filter
// their candidate sets with this.
func (r *Router) PortAlive(port int) bool { return !r.out[port].dead }

// Alive reports whether the router itself is up.
func (r *Router) Alive() bool { return !r.down }

// FaultsActive reports whether a fault plan is scheduled on this
// network. Routing algorithms use it to gate their (slightly more
// expensive) fault-aware candidate checks.
func (n *Network) FaultsActive() bool { return n.faults != nil }

// Reachable reports whether routers a and b are connected through live
// links and routers. Always true without a fault plan.
func (n *Network) Reachable(a, b int) bool { return n.reachableRouters(int32(a), int32(b)) }

// GlobalLinkAlive reports whether global link l of group g is up at its
// local endpoint: the owning router is alive and its global port is not
// dead. Always true without a fault plan. Source-routed mechanisms (PB)
// consult this the way their saturation flags model the piggybacked
// link-state broadcast: a dead channel is advertised group-wide exactly
// as a saturated one is.
func (n *Network) GlobalLinkAlive(g, l int) bool {
	if n.faults == nil {
		return true
	}
	t := n.Topo
	r := n.groups[g][l/t.H]
	return !r.down && !r.out[t.GlobalPort(l%t.H)].dead
}

// reachableRouters reports whether routers a and b are in the same live
// component. Always true without a fault plan.
func (n *Network) reachableRouters(a, b int32) bool {
	f := n.faults
	if f == nil {
		return true
	}
	ca := f.comp[a]
	return ca >= 0 && ca == f.comp[b]
}

// faultsPending reports whether the next sequential point has fault work
// to do: a due plan event or a pending routing-flagged kill. The
// parallel stepper's quiet path must not skip such a cycle.
func (n *Network) faultsPending() bool {
	f := n.faults
	if f == nil {
		return false
	}
	if f.next < len(f.events) && f.events[f.next].Cycle <= n.now {
		return true
	}
	for s := range n.shards {
		if len(n.shards[s].pendingKills) > 0 {
			return true
		}
	}
	return false
}

// applyFaults runs at the sequential point of Step (before BeginCycle):
// due plan events are applied in order, the component map refreshed, and
// the kills flagged by the previous cycle's routing decisions resolved.
// Shards are visited in ascending order, which is ascending router
// order — the order a sequential route scan flagged them in.
func (n *Network) applyFaults() {
	f := n.faults
	changed := false
	for f.next < len(f.events) && f.events[f.next].Cycle <= n.now {
		n.applyFaultEvent(f.events[f.next])
		f.next++
		changed = true
	}
	if changed {
		n.computeComponentsInto(f.comp)
	}
	for s := range n.shards {
		sh := &n.shards[s]
		if len(sh.pendingKills) == 0 {
			continue
		}
		for i := range sh.pendingKills {
			n.resolvePendingKill(&sh.pendingKills[i])
			sh.pendingKills[i].pkt = nil
		}
		sh.pendingKills = sh.pendingKills[:0]
	}
}

// applyFaultEvent applies one plan event: flip liveness flags, kill every
// packet committed to a now-dead direction, reconcile the accounting,
// and count the victims.
func (n *Network) applyFaultEvent(ev FaultEvent) {
	kills := false
	switch ev.Kind {
	case LinkDown, LinkUp:
		failed := ev.Kind == LinkDown
		r := n.Routers[ev.Router]
		peer, peerPort := n.Topo.Neighbor(int(ev.Router), int(ev.Port))
		r.out[ev.Port].linkFailed = failed
		n.Routers[peer].out[peerPort].linkFailed = failed
		n.refreshPortDead(r, int(ev.Port))
		n.refreshPortDead(n.Routers[peer], peerPort)
		kills = failed

	case RouterDown:
		rt := n.Routers[ev.Router]
		if rt.down {
			return
		}
		rt.down = true
		n.killRouterContents(rt)
		n.refreshRouterLinks(rt)
		kills = true

	case RouterUp:
		rt := n.Routers[ev.Router]
		if !rt.down {
			return
		}
		rt.down = false
		n.refreshRouterLinks(rt)
	}
	if kills {
		n.sweepFaultVictims()
	}
	n.flushDeferredCredits()
	n.finalizeFaultVictims()
}

// refreshPortDead recomputes the effective liveness of one non-injection
// output port from its link flag and both endpoint routers, draining the
// port's staged output queue when it just died (the entries' grants are
// reversed; the packets join the victim set for the calendar sweep).
func (n *Network) refreshPortDead(r *Router, port int) {
	o := &r.out[port]
	if o.kind == Injection {
		return
	}
	dead := o.linkFailed || r.down || n.Routers[o.peerRouter].down
	if dead == o.dead {
		return
	}
	o.dead = dead
	if dead {
		n.killStagedQueue(r, port)
	}
}

// refreshRouterLinks refreshes the liveness of every link touching rt,
// on both ends.
func (n *Network) refreshRouterLinks(rt *Router) {
	for port := n.Topo.FirstLocalPort(); port < len(rt.out); port++ {
		n.refreshPortDead(rt, port)
		o := &rt.out[port]
		n.refreshPortDead(n.Routers[o.peerRouter], int(o.peerPort))
	}
}

// killRouterContents removes every packet resident in a freshly down
// router: NIC backlogs of its attached nodes, all input queues (with the
// upstream credits each queued packet still holds returned to the
// sender), and the staged ejection queues. Transit output queues are
// drained by refreshRouterLinks/refreshPortDead; pipeline and wire
// packets by the calendar sweep.
func (n *Network) killRouterContents(rt *Router) {
	f := n.faults
	t := n.Topo
	for c := 0; c < t.P; c++ {
		q := &n.nics[t.NodeID(rt.ID, c)]
		for q.len() > 0 {
			f.noteVictim(q.pop())
		}
	}
	for port := range rt.in {
		ip := &rt.in[port]
		for vc := range ip.vcs {
			vq := &ip.vcs[vc]
			if h := vq.headPkt(); h != nil && !h.Granted {
				ip.unrouted--
				rt.unrouted--
			}
			for !vq.empty() {
				p := vq.pop()
				ip.queued--
				rt.queued--
				f.noteVictim(p)
				n.Alg.OnDequeue(rt, p, port, vc)
				if ip.upRouter >= 0 {
					f.defCred = append(f.defCred, deferredCredit{
						router: ip.upRouter, port: ip.upPort, vc: int8(vc), size: p.Size,
					})
				}
			}
		}
	}
	for port := 0; port < t.P; port++ {
		n.killStagedQueue(rt, port)
	}
}

// killStagedQueue drains the staged output queue of (r, port), reversing
// each entry's grant reservation (the credits and output space it holds)
// and removing any tail residue still in an input queue. A granted
// packet occupies exactly one of: the pipeline (evPipeDone pending), the
// staged queue, or the wire — so this reversal happens at most once per
// packet.
func (n *Network) killStagedQueue(r *Router, port int) {
	o := &r.out[port]
	for o.qLen() > 0 {
		e := o.qPop()
		r.staged--
		o.credits[e.vc] += e.pkt.Size
		o.outFree += e.pkt.Size
		r.occDelta(port, -2*e.pkt.Size)
		n.faults.noteVictim(e.pkt)
		n.killGrantedResidue(r, e.pkt)
	}
}

// killGrantedResidue removes a killed granted packet's tail from r's
// input queues, if it is still streaming out there (with Speedup 1 the
// serialization outlives the pipeline, so a packet can be staged — or
// even on the wire — while its tail still occupies the input buffer).
// The pop mirrors the evTailLeave handler: expose the next head, fire
// OnDequeue, and return the upstream credit the packet held.
func (n *Network) killGrantedResidue(r *Router, p *Packet) {
	for port := range r.in {
		ip := &r.in[port]
		for vc := range ip.vcs {
			if ip.vcs[vc].headPkt() != p {
				continue
			}
			ip.vcs[vc].pop()
			ip.queued--
			r.queued--
			if ip.vcs[vc].headPkt() != nil {
				ip.unrouted++
				r.unrouted++
				r.shard.routeActive.add(int32(r.ID))
			}
			n.Alg.OnDequeue(r, p, port, vc)
			if ip.upRouter >= 0 {
				n.faults.defCred = append(n.faults.defCred, deferredCredit{
					router: ip.upRouter, port: ip.upPort, vc: int8(vc), size: p.Size,
				})
			}
			return
		}
	}
}

// sweepFaultVictims scans every pending calendar event for packets
// committed to a dead direction, then removes every event referencing a
// victim. Phase A (scan) does the location-specific accounting: a
// pipeline completion toward a dead port reverses its grant like a
// staged entry; a head arrival over a dead link returns the downstream
// credit the wire packet holds (its output space comes back through the
// still-pending size-only evOutFree); an ejecting packet of a down
// router needs no reversal (delivery would not have returned ejection
// credits either). Phase B (filter) then drops every event carrying a
// victim pointer — including the tail-leave events whose queue pops
// killGrantedResidue already performed — while size-only events
// (credits, output frees, notifications) always survive: their
// accounting must complete even across a dead link, which is exactly
// how credits owed across it are reconciled.
func (n *Network) sweepFaultVictims() {
	f := n.faults
	for s := range n.shards {
		sh := &n.shards[s]
		for b := range sh.ring {
			for i := range sh.ring[b] {
				n.faultScanEvent(&sh.ring[b][i])
			}
		}
		for t := range sh.outbox {
			for i := range sh.outbox[t] {
				n.faultScanEvent(&sh.outbox[t][i].ev)
			}
		}
	}
	if len(f.killed) == 0 {
		return
	}
	for s := range n.shards {
		sh := &n.shards[s]
		for b := range sh.ring {
			bucket := sh.ring[b]
			w := 0
			for i := range bucket {
				if bucket[i].pkt != nil {
					if _, dead := f.victims[bucket[i].pkt]; dead {
						continue
					}
				}
				bucket[w] = bucket[i]
				w++
			}
			for i := w; i < len(bucket); i++ {
				bucket[i] = event{}
			}
			sh.ring[b] = bucket[:w]
		}
		for t := range sh.outbox {
			mb := sh.outbox[t]
			w := 0
			for i := range mb {
				if mb[i].ev.pkt != nil {
					if _, dead := f.victims[mb[i].ev.pkt]; dead {
						continue
					}
				}
				mb[w] = mb[i]
				w++
			}
			for i := w; i < len(mb); i++ {
				mb[i] = timedEvent{}
			}
			sh.outbox[t] = mb[:w]
		}
	}
}

// faultScanEvent is sweepFaultVictims' phase A on one event.
func (n *Network) faultScanEvent(ev *event) {
	switch ev.kind {
	case evPipeDone:
		u := n.Routers[ev.router]
		if u.down || u.out[ev.port].dead {
			o := &u.out[ev.port]
			o.credits[ev.vc] += ev.pkt.Size
			o.outFree += ev.pkt.Size
			u.occDelta(int(ev.port), -2*ev.pkt.Size)
			n.faults.noteVictim(ev.pkt)
			n.killGrantedResidue(u, ev.pkt)
		}
	case evHeadArrive:
		d := n.Routers[ev.router]
		ip := &d.in[ev.port]
		u := n.Routers[ip.upRouter]
		if u.out[ip.upPort].dead {
			u.out[ip.upPort].credits[ev.vc] += ev.pkt.Size
			u.occDelta(int(ip.upPort), -ev.pkt.Size)
			n.faults.noteVictim(ev.pkt)
			n.killGrantedResidue(u, ev.pkt)
		}
	case evDeliver:
		u := n.Routers[ev.router]
		if u.down {
			n.faults.noteVictim(ev.pkt)
			n.killGrantedResidue(u, ev.pkt)
		}
	}
}

// noteVictim adds p to the victim set, once.
func (f *faultState) noteVictim(p *Packet) {
	if _, ok := f.victims[p]; ok {
		return
	}
	f.victims[p] = struct{}{}
	f.killed = append(f.killed, p)
}

// flushDeferredCredits schedules the upstream credit returns collected
// by the kills. This runs at a sequential point, so appending straight
// onto the target router's ring is safe at any worker count (the same
// contract Inject relies on). Same-port credits commute, so bucket
// insertion order does not affect the simulation.
func (n *Network) flushDeferredCredits() {
	f := n.faults
	for _, dc := range f.defCred {
		up := n.Routers[dc.router]
		n.scheduleFrom(up.shard, n.now+up.out[dc.port].latency,
			event{kind: evCredit, router: dc.router, port: dc.port, vc: dc.vc, size: dc.size})
	}
	f.defCred = f.defCred[:0]
}

// finalizeFaultVictims counts and recycles the victims of one fault
// application, in ascending packet-ID order — discovery order differs
// across worker counts (ring contents are sharded), the ID order does
// not, so the OnDrop callback sequence is bit-identical everywhere.
func (n *Network) finalizeFaultVictims() {
	f := n.faults
	if len(f.killed) == 0 {
		return
	}
	sort.Slice(f.killed, func(i, j int) bool { return f.killed[i].ID < f.killed[j].ID })
	for _, p := range f.killed {
		n.InFlight--
		n.NumDropped++
		if n.OnDrop != nil {
			n.OnDrop(p, n.now)
		}
		delete(f.victims, p)
		if len(n.freePkts) < maxFreePackets {
			n.freePkts = append(n.freePkts, p)
		}
	}
	f.killed = f.killed[:0]
}

// resolvePendingKill resolves one routing-flagged kill at the sequential
// point: the packet must still be the ungranted head it was flagged as
// (a same-batch router death may already have drained it), and an
// unreachable-destination kill is skipped if a repair restored the path.
func (n *Network) resolvePendingKill(pk *pendingKill) {
	r := n.Routers[pk.router]
	ip := &r.in[pk.port]
	vq := &ip.vcs[pk.vc]
	p := vq.headPkt()
	if p != pk.pkt || p.Granted {
		return
	}
	if pk.reason == killUnreachable && n.reachableRouters(pk.router, p.DstRouter) {
		return
	}
	vq.pop()
	ip.queued--
	r.queued--
	ip.unrouted--
	r.unrouted--
	if vq.headPkt() != nil {
		ip.unrouted++
		r.unrouted++
		r.shard.routeActive.add(pk.router)
	}
	n.Alg.OnDequeue(r, p, int(pk.port), int(pk.vc))
	if ip.upRouter >= 0 {
		up := n.Routers[ip.upRouter]
		n.scheduleFrom(up.shard, n.now+up.out[ip.upPort].latency,
			event{kind: evCredit, router: ip.upRouter, port: ip.upPort, vc: pk.vc, size: p.Size})
	}
	n.InFlight--
	if pk.reason == killUnreachable {
		n.NumUnroutable++
	} else {
		n.NumDropped++
		if n.OnDrop != nil {
			n.OnDrop(p, n.now)
		}
	}
	if len(n.freePkts) < maxFreePackets {
		n.freePkts = append(n.freePkts, p)
	}
}

// faultAdjust post-processes a routing decision when a fault plan is
// active. It runs inside the shard-parallel route phase but touches only
// the deciding router's state (its RNG, its shard's pendingKills list),
// preserving the parallel determinism contract. Three outcomes:
//
//   - The destination is unreachable: flag the head for an Unroutable
//     kill at the next sequential point and request nothing.
//   - The requested port is dead but the destination reachable: redirect
//     through a uniformly random live transit port (every live port
//     leads into this router's own component, so any of them can make
//     progress), on the VC the ascending discipline assigns that hop.
//     The grant will count a FaultDetour; past maxFaultDetours the
//     packet is flagged for a Dropped kill instead.
//   - The requested port is alive: the decision passes through
//     untouched, and — because the RNG is only consumed on the dead-port
//     path — the router's random stream stays identical to a fault-free
//     run until a fault actually bites.
func (r *Router) faultAdjust(p *Packet, port, vc int, req Request) Request {
	n := r.net
	if !n.reachableRouters(int32(r.ID), p.DstRouter) {
		r.shard.pendingKills = append(r.shard.pendingKills, pendingKill{
			router: int32(r.ID), port: int16(port), vc: int8(vc), reason: killUnreachable, pkt: p,
		})
		return Request{}
	}
	if !req.OK || !r.out[req.Out].dead {
		return req
	}
	if p.FaultDetours >= maxFaultDetours {
		r.shard.pendingKills = append(r.shard.pendingKills, pendingKill{
			router: int32(r.ID), port: int16(port), vc: int8(vc), reason: killDetourCap, pkt: p,
		})
		return Request{}
	}
	pick, count := -1, 0
	for out := n.Topo.FirstLocalPort(); out < len(r.out); out++ {
		if r.out[out].dead {
			continue
		}
		count++
		if r.RNG.Intn(count) == 0 {
			pick = out
		}
	}
	if pick < 0 {
		// No live link at all, yet the destination looked reachable:
		// only possible when the destination is this router itself —
		// but then the minimal request is the (never dead) ejection
		// channel and we would not be here. Treat as partitioned.
		r.shard.pendingKills = append(r.shard.pendingKills, pendingKill{
			router: int32(r.ID), port: int16(port), vc: int8(vc), reason: killUnreachable, pkt: p,
		})
		return Request{}
	}
	p.reqEscape = true
	return Request{Out: pick, VC: r.escapeVC(p, pick), OK: true}
}

// escapeVC mirrors package routing's ascending-VC assignment (nextVC in
// routing/helpers.go) for router-side escapes: local hops ride
// base(GlobalHops)+LocalHopsGroup, global hops ride GlobalHops, capped
// at the port's top VC. Escape paths are longer than the ladder was
// sized for, so the cap is routinely reached — under faults, forward
// progress comes from the detour budget, not the ladder.
func (r *Router) escapeVC(p *Packet, out int) int {
	var vc int
	switch r.out[out].kind {
	case Local:
		switch p.GlobalHops {
		case 0:
		case 1:
			vc = 1
		default:
			vc = 3
		}
		vc += int(p.LocalHopsGroup)
	case Global:
		vc = int(p.GlobalHops)
	default:
		return 0
	}
	if maxVC := len(r.out[out].credits) - 1; vc > maxVC {
		vc = maxVC
	}
	return vc
}

// computeComponentsInto labels the live routers' connected components
// over live links into dst (-1 for down routers), assigning labels in
// ascending first-router order.
func (n *Network) computeComponentsInto(dst []int32) {
	f := n.faults
	for i := range dst {
		dst[i] = -1
	}
	queue := f.bfsQueue[:0]
	label := int32(0)
	firstLink := n.Topo.FirstLocalPort()
	for start := range n.Routers {
		if dst[start] >= 0 || n.Routers[start].down {
			continue
		}
		dst[start] = label
		queue = append(queue, int32(start))
		for len(queue) > 0 {
			rid := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			r := n.Routers[rid]
			for port := firstLink; port < len(r.out); port++ {
				o := &r.out[port]
				if o.dead {
					continue
				}
				if pr := o.peerRouter; dst[pr] < 0 && !n.Routers[pr].down {
					dst[pr] = label
					queue = append(queue, pr)
				}
			}
		}
		label++
	}
	f.bfsQueue = queue[:0]
}

// checkFaultState audits the engine's incremental liveness state against
// a from-scratch replay of the applied plan prefix: per-port link flags,
// effective deadness, per-router down flags, and the component map.
// CheckInvariants calls it whenever a plan is active.
func (n *Network) checkFaultState() error {
	f := n.faults
	down := make([]bool, len(n.Routers))
	type linkKey struct {
		router int32
		port   int16
	}
	failed := make(map[linkKey]bool)
	for _, ev := range f.events[:f.next] {
		switch ev.Kind {
		case LinkDown, LinkUp:
			peer, peerPort := n.Topo.Neighbor(int(ev.Router), int(ev.Port))
			v := ev.Kind == LinkDown
			failed[linkKey{ev.Router, ev.Port}] = v
			failed[linkKey{int32(peer), int16(peerPort)}] = v
		case RouterDown:
			down[ev.Router] = true
		case RouterUp:
			down[ev.Router] = false
		}
	}
	firstLink := n.Topo.FirstLocalPort()
	for _, r := range n.Routers {
		if r.down != down[r.ID] {
			return fmt.Errorf("router %d: down flag %v but plan prefix says %v", r.ID, r.down, down[r.ID])
		}
		for port := range r.out {
			o := &r.out[port]
			if port < firstLink {
				if o.linkFailed || o.dead {
					return fmt.Errorf("router %d ejection %d: marked failed/dead", r.ID, port)
				}
				continue
			}
			wantFailed := failed[linkKey{int32(r.ID), int16(port)}]
			if o.linkFailed != wantFailed {
				return fmt.Errorf("router %d port %d: link-failed flag %v but plan prefix says %v",
					r.ID, port, o.linkFailed, wantFailed)
			}
			wantDead := wantFailed || down[r.ID] || down[o.peerRouter]
			if o.dead != wantDead {
				return fmt.Errorf("router %d port %d: dead flag %v but liveness recompute says %v",
					r.ID, port, o.dead, wantDead)
			}
		}
	}
	fresh := make([]int32, len(n.Routers))
	n.computeComponentsInto(fresh)
	for i := range fresh {
		if fresh[i] != f.comp[i] {
			return fmt.Errorf("router %d: component label %d but recompute says %d", i, f.comp[i], fresh[i])
		}
	}
	if len(f.victims) != 0 || len(f.killed) != 0 || len(f.defCred) != 0 {
		return fmt.Errorf("router: fault engine holds %d victims / %d killed / %d deferred credits between cycles",
			len(f.victims), len(f.killed), len(f.defCred))
	}
	return nil
}
