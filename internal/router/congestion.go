package router

import "fmt"

// Congestion management: an ECN-style closed loop from fabric occupancy
// back to the injecting sources.
//
// The fabric side has three mechanisms, all off by default
// (CongestionConfig.Enabled):
//
//   - Marking. Every non-ejection output port carries a mark threshold at
//     MarkPct percent of its occupancy cap. An occupancy watcher (the same
//     change-driven primitive PB's saturation flags use) flips the port's
//     mark state exactly at the crossing instants, so the allocation hot
//     path only reads a bool: a packet granted through a hot port gets its
//     ECNMarks count incremented, piggybacked to the destination.
//   - Notification. When a marked packet is delivered, an evNotify event
//     is scheduled NotifyLatency cycles later on the ring of the shard
//     owning the source's router, carrying the source node and the mark
//     count as severity — the congestion signal travelling back through
//     the fabric's own calendar, not an oracle side channel. Notifications
//     are collected per shard during event handling and replayed at the
//     handle barrier in ascending source-node order (replayNotifications),
//     so the OnNotify callback sequence is bit-identical at every worker
//     count.
//   - Shedding. While a NIC's backlog is at or above ShedCap packets,
//     Inject refuses new packets and counts them in NumShed instead of
//     letting the queue grow to NICQueuePackets: a saturated source
//     reaches a stable, bounded operating point and the loss is explicit
//     in the statistics, never silent.
//
// The source side — the AIMD throttle that consumes OnNotify — lives in
// package traffic, keeping the fabric policy-free like the routing split.
//
// The loop's timing mirrors hardware ECN: mark at the congested queue,
// echo at the receiver, notify the sender one reverse-path latency later.
// NotifyLatency defaults to LatencyLocal+LatencyGlobal, a one-way
// worst-case path; the throttle's hold and recovery windows default to
// multiples of it so one multiplicative decrease happens per notification
// round trip, as in a per-RTT AIMD loop.

// CongestionConfig configures the congestion-management loop. The zero
// value disables it entirely: no watchers are registered, no events are
// scheduled, no counters move, and simulation results are bit-identical
// to a build without the subsystem. With Enabled set, zero-valued knobs
// resolve to defaults derived from the fabric configuration (Resolved).
type CongestionConfig struct {
	// Enabled turns the whole loop on: marking, notifications, source
	// throttling (package traffic) and NIC shedding.
	Enabled bool

	// MarkPct is the mark threshold as a percentage of each output
	// port's occupancy cap (default 70). Ejection channels are never
	// marked: their occupancy cap is dominated by the infinite ejection
	// credit pool, and the destination node always sinks traffic.
	MarkPct int

	// NotifyLatency is the delay in cycles from a marked packet's
	// delivery to the notification reaching its source (default
	// LatencyLocal+LatencyGlobal, a worst-case one-way path).
	NotifyLatency int

	// ShedCap is the NIC backlog, in packets, at which new injection
	// attempts are shed (counted in NumShed) instead of queued. It must
	// not exceed NICQueuePackets. Default: NICQueuePackets/4, at least
	// one packet.
	ShedCap int

	// DecreasePct is the multiplicative-decrease factor: a notification
	// cuts the source's injection rate to rate*DecreasePct/100, at most
	// once per HoldCycles (default 50).
	DecreasePct int

	// RecoverPct is the additive-increase step in percentage points of
	// line rate, applied every RecoverEvery cycles once the hold window
	// has passed (default 5).
	RecoverPct int

	// RecoverEvery is the additive-increase period in cycles (default
	// 2*NotifyLatency: one recovery step per notification round trip).
	RecoverEvery int64

	// HoldCycles is the minimum spacing between multiplicative
	// decreases, so a burst of notifications from one congestion epoch
	// cuts the rate once (default NotifyLatency).
	HoldCycles int64

	// MinRatePct floors the throttled rate so sources keep probing the
	// fabric and recover when congestion clears (default 10).
	MinRatePct int
}

// Resolved returns the configuration with every zero-valued knob replaced
// by its default, derived from the fabric configuration where the default
// is latency- or capacity-relative. A disabled configuration resolves to
// itself unchanged.
func (cc CongestionConfig) Resolved(c Config) CongestionConfig {
	if !cc.Enabled {
		return cc
	}
	if cc.MarkPct == 0 {
		cc.MarkPct = 70
	}
	if cc.NotifyLatency == 0 {
		cc.NotifyLatency = c.LatencyLocal + c.LatencyGlobal
	}
	if cc.ShedCap == 0 {
		cc.ShedCap = c.NICQueuePackets / 4
		if cc.ShedCap < 1 {
			cc.ShedCap = 1
		}
	}
	if cc.DecreasePct == 0 {
		cc.DecreasePct = 50
	}
	if cc.RecoverPct == 0 {
		cc.RecoverPct = 5
	}
	if cc.RecoverEvery == 0 {
		cc.RecoverEvery = 2 * int64(cc.NotifyLatency)
	}
	if cc.HoldCycles == 0 {
		cc.HoldCycles = int64(cc.NotifyLatency)
	}
	if cc.MinRatePct == 0 {
		cc.MinRatePct = 10
	}
	return cc
}

// validate checks a resolved configuration against the fabric it will
// run in.
func (cc CongestionConfig) validate(c Config) error {
	if cc.MarkPct < 1 || cc.MarkPct > 100 {
		return fmt.Errorf("router: congestion mark threshold %d%% outside [1,100]", cc.MarkPct)
	}
	if cc.NotifyLatency < 1 {
		return fmt.Errorf("router: congestion notify latency %d < 1", cc.NotifyLatency)
	}
	if cc.ShedCap < 1 || cc.ShedCap > c.NICQueuePackets {
		return fmt.Errorf("router: congestion shed cap %d outside [1,NICQueuePackets=%d]", cc.ShedCap, c.NICQueuePackets)
	}
	if cc.DecreasePct < 1 || cc.DecreasePct > 99 {
		return fmt.Errorf("router: congestion decrease factor %d%% outside [1,99]", cc.DecreasePct)
	}
	if cc.RecoverPct < 1 || cc.RecoverPct > 100 {
		return fmt.Errorf("router: congestion recovery step %d%% outside [1,100]", cc.RecoverPct)
	}
	if cc.RecoverEvery < 1 {
		return fmt.Errorf("router: congestion recovery period %d < 1", cc.RecoverEvery)
	}
	if cc.HoldCycles < 1 {
		return fmt.Errorf("router: congestion hold window %d < 1", cc.HoldCycles)
	}
	if cc.MinRatePct < 1 || cc.MinRatePct > 100 {
		return fmt.Errorf("router: congestion rate floor %d%% outside [1,100]", cc.MinRatePct)
	}
	return nil
}
