package router

import "fmt"

// Packet is the unit of switching: the simulator is virtual cut-through,
// so buffers, credits and links are sized and timed in phits but
// allocation and routing decisions happen once per packet. A packet lives
// in exactly one input queue (or NIC queue, or output stage) at a time,
// so per-hop transient state can live directly on the struct.
//
// Delivered packets are recycled through the network's freelist: a
// packet's fields are stable until the OnDeliver callback for it
// returns, after which the struct may be reused by a future Inject.
// Observers that need a packet's data past delivery must copy it.
type Packet struct {
	ID  uint64
	Src int32 // source node
	Dst int32 // destination node

	DstRouter int32 // cached router of Dst
	Size      int32 // phits

	GenTime int64 // cycle the packet was created at the source NIC

	// --- path state, maintained by the routing algorithm ---

	// Inter is the Valiant intermediate node (-1 when unused). While
	// ToInter is true the packet routes minimally toward Inter, then
	// minimally to Dst.
	Inter   int32
	ToInter bool

	// Decided marks source-routed algorithms' one-time decision (PB).
	Decided bool

	// GlobalMisroute records that the packet took (or is committed to)
	// a nonminimal global hop, for Figure 7b statistics and to forbid a
	// second global misroute.
	GlobalMisroute bool

	// LocalMisroutes counts nonminimal local hops taken.
	LocalMisroutes int8

	// LocalMisThisGroup forbids a second local misroute within the
	// currently visited group; the algorithm resets it on group change
	// using LastGroup.
	LocalMisThisGroup bool
	LastGroup         int32

	// Hop counters drive the ascending-VC deadlock avoidance scheme.
	LocalHops  int8
	GlobalHops int8
	TotalHops  int8
	// LocalHopsGroup counts local hops taken within the currently
	// visited group; it resets on every group change and positions the
	// packet on the ascending-VC ladder together with GlobalHops.
	LocalHopsGroup int8

	// --- contention bookkeeping (set by algorithm hooks) ---

	// CountedPort is the output port whose contention counter this
	// packet is currently holding incremented at its present router
	// (-1 when none).
	CountedPort int16
	// CountedLink is the ECtN partial-array index this packet holds
	// incremented (-1 when none).
	CountedLink int16

	// ECNMarks counts the congestion-marked output ports this packet was
	// granted through (saturating at 127). Always zero unless congestion
	// management is enabled; on delivery it becomes the severity of the
	// notification echoed to the source (see congestion.go).
	ECNMarks int8

	// FaultDetours counts the grants this packet won through the fault
	// escape path (its requested port was dead and faultAdjust redirected
	// it); at maxFaultDetours the packet is dropped (see faults.go).
	FaultDetours int8

	// Attempt is the retransmission attempt number: 0 for an original
	// injection, k for the k-th retry of a dropped packet (see the
	// RetryLimit fault mode).
	Attempt int8

	// --- per-queue transient state (reset on every enqueue) ---

	// TailArrive is the cycle the packet's tail finishes arriving into
	// its current input queue; the tail cannot leave earlier.
	TailArrive int64
	// HeadSeen records that the head-of-queue hooks fired at this
	// router.
	HeadSeen bool
	// Granted records that switch allocation succeeded; the packet
	// stays at the queue head (occupying buffer space) until its tail
	// leaves, but must not re-arbitrate.
	Granted bool

	// reqOut/reqVC/reqValid hold the current allocation request;
	// reqEscape marks it as a fault-escape redirect (see faults.go).
	reqOut    int16
	reqVC     int8
	reqValid  bool
	reqEscape bool
}

// resetQueueState prepares per-queue transient state on enqueue.
func (p *Packet) resetQueueState(tailArrive int64) {
	p.TailArrive = tailArrive
	p.HeadSeen = false
	p.Granted = false
	p.reqValid = false
	p.reqEscape = false
	p.CountedPort = -1
	p.CountedLink = -1
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %d->%d (hops l%d g%d, mis g=%v l=%d)",
		p.ID, p.Src, p.Dst, p.LocalHops, p.GlobalHops, p.GlobalMisroute, p.LocalMisroutes)
}
