// Package topology models the canonical Dragonfly topology used by the
// paper: a two-level hierarchical direct network whose first level (the
// group) is a complete graph of a routers and whose second level is a
// complete graph of groups, with exactly one global link between every
// pair of groups (PERCS-style). Global links are distributed over the
// routers of each group following the palmtree arrangement of Camarero,
// Vallejo and Beivide (ACM TACO 2014), the arrangement used in the paper.
//
// The package is pure data: it answers structural questions (who is wired
// to whom, which port reaches which neighbor, what is the minimal next
// hop) and carries no simulation state, so it can be shared freely across
// routers and goroutines.
package topology

import "fmt"

// Params are the three defining parameters of a Dragonfly network
// (Kim et al., ISCA 2008): p compute nodes per router, a routers per
// group and h global links per router. The canonical (maximum) size is
// used: g = a*h + 1 groups.
type Params struct {
	P int // nodes attached to each router
	A int // routers in each group
	H int // global links per router
}

// Validate reports whether the parameters describe a buildable network.
func (p Params) Validate() error {
	if p.P < 1 || p.A < 1 || p.H < 1 {
		return fmt.Errorf("topology: all of p,a,h must be >= 1, got p=%d a=%d h=%d", p.P, p.A, p.H)
	}
	return nil
}

// Dragonfly is an immutable description of a canonical Dragonfly network.
//
// Identifier conventions:
//   - groups are numbered 0..Groups-1;
//   - router r belongs to group r/A at position r%A within the group;
//   - node n attaches to router n/P through injection/ejection channel n%P;
//   - router ports are numbered injection [0,P), local [P, P+A-1),
//     global [P+A-1, P+A-1+H);
//   - the global links of a group are numbered l = pos*H + k in [0, A*H),
//     where pos is the owning router's position and k its global port
//     ordinal; with the palmtree arrangement link l of group g reaches
//     group (g+l+1) mod Groups.
type Dragonfly struct {
	Params
	Groups      int // number of groups, a*h+1
	Routers     int // total routers, Groups*A
	Nodes       int // total nodes, Routers*P
	GlobalLinks int // global links per group, A*H
	radix       int // ports per router, P + (A-1) + H
}

// New builds a canonical Dragonfly for the given parameters.
func New(p Params) (*Dragonfly, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.A*p.H + 1
	d := &Dragonfly{
		Params:      p,
		Groups:      g,
		Routers:     g * p.A,
		Nodes:       g * p.A * p.P,
		GlobalLinks: p.A * p.H,
		radix:       p.P + (p.A - 1) + p.H,
	}
	return d, nil
}

// MustNew is New panicking on error, for tests and fixed configurations.
func MustNew(p Params) *Dragonfly {
	d, err := New(p)
	if err != nil {
		panic(err)
	}
	return d
}

// Radix returns the number of router ports (injection + local + global).
func (d *Dragonfly) Radix() int { return d.radix }

// GroupOf returns the group of router r.
func (d *Dragonfly) GroupOf(r int) int { return r / d.A }

// PosOf returns router r's position within its group.
func (d *Dragonfly) PosOf(r int) int { return r % d.A }

// RouterID returns the router at position pos of group g.
func (d *Dragonfly) RouterID(g, pos int) int { return g*d.A + pos }

// RouterOfNode returns the router node n attaches to.
func (d *Dragonfly) RouterOfNode(n int) int { return n / d.P }

// ChannelOfNode returns node n's injection/ejection channel ordinal on its
// router, in [0, P).
func (d *Dragonfly) ChannelOfNode(n int) int { return n % d.P }

// NodeID returns the node on channel c of router r.
func (d *Dragonfly) NodeID(r, c int) int { return r*d.P + c }

// GroupOfNode returns the group node n belongs to.
func (d *Dragonfly) GroupOfNode(n int) int { return d.GroupOf(d.RouterOfNode(n)) }

// Port classification.

// IsInjectionPort reports whether port is an injection (input side) /
// ejection (output side) channel.
func (d *Dragonfly) IsInjectionPort(port int) bool { return port >= 0 && port < d.P }

// IsLocalPort reports whether port is an intra-group link.
func (d *Dragonfly) IsLocalPort(port int) bool { return port >= d.P && port < d.P+d.A-1 }

// IsGlobalPort reports whether port is an inter-group link.
func (d *Dragonfly) IsGlobalPort(port int) bool {
	return port >= d.P+d.A-1 && port < d.radix
}

// FirstLocalPort returns the index of the first local port.
func (d *Dragonfly) FirstLocalPort() int { return d.P }

// FirstGlobalPort returns the index of the first global port.
func (d *Dragonfly) FirstGlobalPort() int { return d.P + d.A - 1 }

// LocalPortTo returns the local port of the router at position from that
// reaches the router at position to within the same group. It panics if
// from == to, which would be a self-link.
func (d *Dragonfly) LocalPortTo(from, to int) int {
	if from == to {
		panic(fmt.Sprintf("topology: local self-link %d->%d", from, to))
	}
	if to < from {
		return d.P + to
	}
	return d.P + to - 1
}

// LocalPeerPos returns the position of the router reached through local
// port `port` from a router at position pos.
func (d *Dragonfly) LocalPeerPos(pos, port int) int {
	j := port - d.P
	if j >= pos {
		j++
	}
	return j
}

// GlobalOrdinal returns which of the H global ports `port` is, in [0,H).
func (d *Dragonfly) GlobalOrdinal(port int) int { return port - d.FirstGlobalPort() }

// GlobalPort returns the port index of global ordinal k in [0,H).
func (d *Dragonfly) GlobalPort(k int) int { return d.FirstGlobalPort() + k }

// GlobalLinkIndex returns the group-wide global-link index l = pos*H + k
// for global ordinal k of the router at position pos.
func (d *Dragonfly) GlobalLinkIndex(pos, k int) int { return pos*d.H + k }

// GlobalLinkOwner returns (pos, k): the owning router position and global
// port ordinal of group-wide link index l.
func (d *Dragonfly) GlobalLinkOwner(l int) (pos, k int) { return l / d.H, l % d.H }

// GlobalLinkTarget returns the group reached by global link l of group g
// under the palmtree arrangement.
func (d *Dragonfly) GlobalLinkTarget(g, l int) int {
	return (g + l + 1) % d.Groups
}

// GlobalLinkToGroup returns the group-wide index of the (unique) global
// link from group g to group dg. It panics if g == dg.
func (d *Dragonfly) GlobalLinkToGroup(g, dg int) int {
	if g == dg {
		panic(fmt.Sprintf("topology: no global link within group %d", g))
	}
	off := dg - g
	if off < 0 {
		off += d.Groups
	}
	return off - 1 // off in [1, A*H]
}

// CanonicalGlobalLink reports whether group-wide link l of group g is the
// canonical endpoint of its physical cable: the endpoint in the
// lower-numbered group. Every inter-group cable has exactly one canonical
// endpoint, so iterating (g, l) pairs filtered by this predicate
// enumerates each physical cable exactly once — the enumeration fault
// injection samples from.
func (d *Dragonfly) CanonicalGlobalLink(g, l int) bool {
	return g < d.GlobalLinkTarget(g, l)
}

// GlobalCableCount returns the number of physical inter-group cables:
// each of the Groups*GlobalLinks directed link endpoints pairs with
// exactly one other, giving half that many cables.
func (d *Dragonfly) GlobalCableCount() int { return d.Groups * d.GlobalLinks / 2 }

// GlobalNeighbor returns the router and port on the far side of global
// port ordinal k of router r. The palmtree arrangement pairs link l of
// group g with link A*H-1-l of group (g+l+1) mod Groups, which makes the
// wiring a proper involution (the link is the same physical cable seen
// from both ends).
func (d *Dragonfly) GlobalNeighbor(r, k int) (peer, peerPort int) {
	g, pos := d.GroupOf(r), d.PosOf(r)
	l := d.GlobalLinkIndex(pos, k)
	g2 := d.GlobalLinkTarget(g, l)
	l2 := d.GlobalLinks - 1 - l
	pos2, k2 := d.GlobalLinkOwner(l2)
	return d.RouterID(g2, pos2), d.GlobalPort(k2)
}

// LocalNeighbor returns the router and port on the far side of local port
// `port` of router r.
func (d *Dragonfly) LocalNeighbor(r, port int) (peer, peerPort int) {
	g, pos := d.GroupOf(r), d.PosOf(r)
	j := d.LocalPeerPos(pos, port)
	return d.RouterID(g, j), d.LocalPortTo(j, pos)
}

// Neighbor returns the router and input port reached through output
// `port` of router r. Injection/ejection ports have no neighbor router;
// Neighbor panics for them.
func (d *Dragonfly) Neighbor(r, port int) (peer, peerPort int) {
	switch {
	case d.IsLocalPort(port):
		return d.LocalNeighbor(r, port)
	case d.IsGlobalPort(port):
		return d.GlobalNeighbor(r, d.GlobalOrdinal(port))
	default:
		panic(fmt.Sprintf("topology: port %d of router %d has no neighbor", port, r))
	}
}

// MinimalNextPort returns the output port of router r on the minimal path
// toward destination node dst: ejection if dst attaches here, otherwise
// the hierarchical l-g-l route (local hop to the global-link owner, the
// global link itself, then the destination-group local hop).
func (d *Dragonfly) MinimalNextPort(r, dst int) int {
	dr := d.RouterOfNode(dst)
	if dr == r {
		return d.ChannelOfNode(dst) // ejection channel
	}
	g, dg := d.GroupOf(r), d.GroupOf(dr)
	if g == dg {
		return d.LocalPortTo(d.PosOf(r), d.PosOf(dr))
	}
	l := d.GlobalLinkToGroup(g, dg)
	ownerPos, k := d.GlobalLinkOwner(l)
	if ownerPos == d.PosOf(r) {
		return d.GlobalPort(k)
	}
	return d.LocalPortTo(d.PosOf(r), ownerPos)
}

// MinimalHops returns the number of router-to-router hops on the minimal
// path from router r to router dr (0 for the same router; at most 3:
// local, global, local).
func (d *Dragonfly) MinimalHops(r, dr int) int {
	if r == dr {
		return 0
	}
	g, dg := d.GroupOf(r), d.GroupOf(dr)
	if g == dg {
		return 1
	}
	hops := 1 // the global hop
	l := d.GlobalLinkToGroup(g, dg)
	ownerPos, _ := d.GlobalLinkOwner(l)
	if ownerPos != d.PosOf(r) {
		hops++ // source-group local hop to the link owner
	}
	l2 := d.GlobalLinks - 1 - l
	entryPos, _ := d.GlobalLinkOwner(l2)
	if entryPos != d.PosOf(dr) {
		hops++ // destination-group local hop
	}
	return hops
}

// EntryRouter returns the router of group dg at which the minimal path
// from group g enters dg (the far endpoint of the g->dg global link).
func (d *Dragonfly) EntryRouter(g, dg int) int {
	l := d.GlobalLinkToGroup(g, dg)
	l2 := d.GlobalLinks - 1 - l
	pos, _ := d.GlobalLinkOwner(l2)
	return d.RouterID(dg, pos)
}

// String summarizes the network size.
func (d *Dragonfly) String() string {
	return fmt.Sprintf("dragonfly(p=%d,a=%d,h=%d: %d groups, %d routers, %d nodes, radix %d)",
		d.P, d.A, d.H, d.Groups, d.Routers, d.Nodes, d.radix)
}
