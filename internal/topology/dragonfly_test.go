package topology

import (
	"testing"
	"testing/quick"
)

// paperParams are the Table I parameters of the paper: 31-port routers,
// 129 groups, 16512 nodes.
var paperParams = Params{P: 8, A: 16, H: 8}

func small() *Dragonfly { return MustNew(Params{P: 2, A: 4, H: 2}) }

func TestPaperScaleCounts(t *testing.T) {
	d := MustNew(paperParams)
	if d.Groups != 129 {
		t.Errorf("groups = %d, want 129", d.Groups)
	}
	if d.Routers != 129*16 {
		t.Errorf("routers = %d, want %d", d.Routers, 129*16)
	}
	if d.Nodes != 16512 {
		t.Errorf("nodes = %d, want 16512", d.Nodes)
	}
	if d.Radix() != 31 {
		t.Errorf("radix = %d, want 31", d.Radix())
	}
	if d.GlobalLinks != 128 {
		t.Errorf("global links per group = %d, want 128", d.GlobalLinks)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 4, 2}}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("New(%+v) accepted invalid params", p)
		}
	}
	if _, err := New(Params{1, 1, 1}); err != nil {
		t.Errorf("minimal params rejected: %v", err)
	}
}

func TestPortClassification(t *testing.T) {
	d := small() // p=2, a=4, h=2 -> radix 7: inj {0,1}, local {2,3,4}, global {5,6}
	wantKind := []string{"inj", "inj", "local", "local", "local", "global", "global"}
	for port, want := range wantKind {
		got := "none"
		switch {
		case d.IsInjectionPort(port):
			got = "inj"
		case d.IsLocalPort(port):
			got = "local"
		case d.IsGlobalPort(port):
			got = "global"
		}
		if got != want {
			t.Errorf("port %d: kind %s, want %s", port, got, want)
		}
	}
	if d.IsInjectionPort(7) || d.IsLocalPort(7) || d.IsGlobalPort(7) {
		t.Error("port beyond radix classified")
	}
	if d.FirstLocalPort() != 2 || d.FirstGlobalPort() != 5 {
		t.Errorf("port bases %d/%d, want 2/5", d.FirstLocalPort(), d.FirstGlobalPort())
	}
}

func TestNodeRouterMaps(t *testing.T) {
	d := small()
	for n := 0; n < d.Nodes; n++ {
		r := d.RouterOfNode(n)
		c := d.ChannelOfNode(n)
		if d.NodeID(r, c) != n {
			t.Fatalf("node %d -> (r=%d,c=%d) does not round-trip", n, r, c)
		}
		if c < 0 || c >= d.P {
			t.Fatalf("node %d channel %d out of range", n, c)
		}
	}
	for r := 0; r < d.Routers; r++ {
		g, pos := d.GroupOf(r), d.PosOf(r)
		if d.RouterID(g, pos) != r {
			t.Fatalf("router %d -> (g=%d,pos=%d) does not round-trip", r, g, pos)
		}
	}
}

func TestLocalPortMapping(t *testing.T) {
	d := small()
	for from := 0; from < d.A; from++ {
		seen := map[int]bool{}
		for to := 0; to < d.A; to++ {
			if to == from {
				continue
			}
			port := d.LocalPortTo(from, to)
			if !d.IsLocalPort(port) {
				t.Fatalf("LocalPortTo(%d,%d)=%d not a local port", from, to, port)
			}
			if seen[port] {
				t.Fatalf("pos %d: port %d reused", from, port)
			}
			seen[port] = true
			if got := d.LocalPeerPos(from, port); got != to {
				t.Fatalf("LocalPeerPos(%d,%d)=%d, want %d", from, port, got, to)
			}
		}
		if len(seen) != d.A-1 {
			t.Fatalf("pos %d: %d local ports used, want %d", from, len(seen), d.A-1)
		}
	}
}

func TestLocalPortToPanicsOnSelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LocalPortTo(i,i) did not panic")
		}
	}()
	small().LocalPortTo(2, 2)
}

// TestPalmtreeInvolution checks that the global wiring is a consistent
// physical cabling: following a global port and then the peer's returned
// port leads back to the origin.
func TestPalmtreeInvolution(t *testing.T) {
	for _, p := range []Params{{2, 4, 2}, {1, 2, 1}, {4, 8, 4}, paperParams} {
		d := MustNew(p)
		for r := 0; r < d.Routers; r++ {
			for k := 0; k < d.H; k++ {
				peer, peerPort := d.GlobalNeighbor(r, k)
				if !d.IsGlobalPort(peerPort) {
					t.Fatalf("%v: global neighbor port %d not global", p, peerPort)
				}
				back, backPort := d.GlobalNeighbor(peer, d.GlobalOrdinal(peerPort))
				if back != r || backPort != d.GlobalPort(k) {
					t.Fatalf("%v: wiring not involutive: r%d/k%d -> r%d/p%d -> r%d/p%d",
						p, r, k, peer, peerPort, back, backPort)
				}
				if d.GroupOf(peer) == d.GroupOf(r) {
					t.Fatalf("%v: global link within group %d", p, d.GroupOf(r))
				}
			}
		}
	}
}

// TestGlobalCompleteGraph checks every pair of groups is connected by
// exactly one global link.
func TestGlobalCompleteGraph(t *testing.T) {
	d := small()
	links := map[[2]int]int{}
	for r := 0; r < d.Routers; r++ {
		for k := 0; k < d.H; k++ {
			peer, _ := d.GlobalNeighbor(r, k)
			g1, g2 := d.GroupOf(r), d.GroupOf(peer)
			links[[2]int{g1, g2}]++
		}
	}
	for g1 := 0; g1 < d.Groups; g1++ {
		for g2 := 0; g2 < d.Groups; g2++ {
			if g1 == g2 {
				continue
			}
			if links[[2]int{g1, g2}] != 1 {
				t.Fatalf("groups %d->%d have %d links, want 1", g1, g2, links[[2]int{g1, g2}])
			}
		}
	}
}

func TestGlobalLinkToGroupConsistent(t *testing.T) {
	d := small()
	for g := 0; g < d.Groups; g++ {
		for dg := 0; dg < d.Groups; dg++ {
			if g == dg {
				continue
			}
			l := d.GlobalLinkToGroup(g, dg)
			if tgt := d.GlobalLinkTarget(g, l); tgt != dg {
				t.Fatalf("link %d of group %d targets %d, want %d", l, g, tgt, dg)
			}
			pos, k := d.GlobalLinkOwner(l)
			r := d.RouterID(g, pos)
			peer, _ := d.GlobalNeighbor(r, k)
			if d.GroupOf(peer) != dg {
				t.Fatalf("owner router %d port %d reaches group %d, want %d",
					r, k, d.GroupOf(peer), dg)
			}
		}
	}
}

func TestEntryRouter(t *testing.T) {
	d := small()
	for g := 0; g < d.Groups; g++ {
		for dg := 0; dg < d.Groups; dg++ {
			if g == dg {
				continue
			}
			l := d.GlobalLinkToGroup(g, dg)
			pos, k := d.GlobalLinkOwner(l)
			peer, _ := d.GlobalNeighbor(d.RouterID(g, pos), k)
			if got := d.EntryRouter(g, dg); got != peer {
				t.Fatalf("EntryRouter(%d,%d)=%d, want %d", g, dg, got, peer)
			}
		}
	}
}

// TestMinimalRouteDelivers walks the minimal next-port function from every
// router to every node on a small network and checks that it terminates at
// the destination within 3 hops with the hierarchical l-g-l structure.
func TestMinimalRouteDelivers(t *testing.T) {
	d := small()
	for src := 0; src < d.Routers; src++ {
		for dst := 0; dst < d.Nodes; dst++ {
			r := src
			hops := 0
			localSeen, globalSeen := 0, 0
			for r != d.RouterOfNode(dst) {
				port := d.MinimalNextPort(r, dst)
				if d.IsInjectionPort(port) {
					t.Fatalf("ejection port %d before reaching dst router (r=%d dst=%d)", port, r, dst)
				}
				switch {
				case d.IsLocalPort(port):
					localSeen++
				case d.IsGlobalPort(port):
					globalSeen++
				}
				r, _ = d.Neighbor(r, port)
				hops++
				if hops > 3 {
					t.Fatalf("minimal route from r%d to n%d exceeded 3 hops", src, dst)
				}
			}
			port := d.MinimalNextPort(r, dst)
			if !d.IsInjectionPort(port) || port != d.ChannelOfNode(dst) {
				t.Fatalf("at dst router, port=%d, want ejection channel %d", port, d.ChannelOfNode(dst))
			}
			if globalSeen > 1 || localSeen > 2 {
				t.Fatalf("minimal route r%d->n%d used %d locals, %d globals", src, dst, localSeen, globalSeen)
			}
			if want := d.MinimalHops(src, d.RouterOfNode(dst)); hops != want {
				t.Fatalf("MinimalHops(r%d,r%d)=%d but walk took %d", src, d.RouterOfNode(dst), want, hops)
			}
		}
	}
}

func TestMinimalHopsBounds(t *testing.T) {
	d := MustNew(Params{P: 4, A: 8, H: 4})
	for r := 0; r < d.Routers; r += 7 {
		for dr := 0; dr < d.Routers; dr += 5 {
			h := d.MinimalHops(r, dr)
			switch {
			case r == dr && h != 0:
				t.Fatalf("same router hops %d", h)
			case r != dr && d.GroupOf(r) == d.GroupOf(dr) && h != 1:
				t.Fatalf("same group hops %d", h)
			case d.GroupOf(r) != d.GroupOf(dr) && (h < 1 || h > 3):
				t.Fatalf("inter-group hops %d", h)
			}
		}
	}
}

func TestNeighborPanicsOnInjection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Neighbor on injection port did not panic")
		}
	}()
	small().Neighbor(0, 0)
}

func TestQuickPalmtreeInvolution(t *testing.T) {
	d := MustNew(Params{P: 2, A: 6, H: 3})
	f := func(rr, kk uint16) bool {
		r := int(rr) % d.Routers
		k := int(kk) % d.H
		peer, peerPort := d.GlobalNeighbor(r, k)
		back, backPort := d.GlobalNeighbor(peer, d.GlobalOrdinal(peerPort))
		return back == r && backPort == d.GlobalPort(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinimalNextPortValid(t *testing.T) {
	d := MustNew(Params{P: 3, A: 5, H: 2})
	f := func(rr, nn uint32) bool {
		r := int(rr) % d.Routers
		n := int(nn) % d.Nodes
		port := d.MinimalNextPort(r, n)
		if r == d.RouterOfNode(n) {
			return d.IsInjectionPort(port)
		}
		return d.IsLocalPort(port) || d.IsGlobalPort(port)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringer(t *testing.T) {
	s := small().String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
