// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The simulator needs reproducible runs: the same seed must generate the
// same traffic and the same tie-breaking decisions on every platform and
// Go release. math/rand's global functions are unsuitable (shared state),
// and keeping one generator per router/node via math/rand.New costs more
// memory than needed. This package implements PCG-XSH-RR 64/32 (O'Neill,
// 2014) with a 64-bit state and a per-stream increment, so every router
// and node can own an independent, splittable stream seeded from the run
// seed and its own identity.
package rng

import "math"

// PCG is a PCG-XSH-RR 64/32 generator. The zero value is a valid but
// fixed-stream generator; use New or Seed for distinct streams.
type PCG struct {
	state uint64
	inc   uint64 // always odd
}

const pcgMult = 6364136223846793005

// New returns a generator seeded with seed on stream streamID. Distinct
// streamIDs yield statistically independent sequences for the same seed.
func New(seed, streamID uint64) *PCG {
	var p PCG
	p.Seed(seed, streamID)
	return &p
}

// Seed resets the generator to the given seed and stream.
func (p *PCG) Seed(seed, streamID uint64) {
	p.inc = streamID<<1 | 1
	p.state = 0
	p.next()
	p.state += seed
	p.next()
}

// Split derives a new independent generator from p, advancing p. It is
// used to hand child components their own streams without coordinating
// stream IDs globally.
func (p *PCG) Split() *PCG {
	return New(p.Uint64(), p.Uint64())
}

func (p *PCG) next() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint32 returns a uniformly distributed 32-bit value.
func (p *PCG) Uint32() uint32 { return p.next() }

// Uint64 returns a uniformly distributed 64-bit value.
func (p *PCG) Uint64() uint64 {
	hi := uint64(p.next())
	lo := uint64(p.next())
	return hi<<32 | lo
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint32(n)
	// Lemire's nearly-divisionless bounded generation.
	x := p.next()
	m := uint64(x) * uint64(bound)
	l := uint32(m)
	if l < bound {
		t := -bound % bound
		for l < t {
			x = p.next()
			m = uint64(x) * uint64(bound)
			l = uint32(m)
		}
	}
	return int(m >> 32)
}

// Int31n is Intn specialized for int32 values.
func (p *PCG) Int31n(n int32) int32 { return int32(p.Intn(int(n))) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability prob. Probabilities outside
// [0, 1] saturate (never / always).
func (p *PCG) Bernoulli(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return p.Float64() < prob
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(prob) sequence, via inversion sampling. It lets a caller skip
// directly to the next success in a long trial sequence instead of
// drawing every trial — the distribution of successes is identical to
// per-trial Bernoulli draws. prob >= 1 always returns 0; prob <= 0
// returns MaxInt32 (no success within any realistic range).
func (p *PCG) Geometric(prob float64) int {
	if prob >= 1 {
		return 0
	}
	if prob <= 0 {
		return math.MaxInt32
	}
	u := 1 - p.Float64() // (0, 1]: avoids log(0)
	k := math.Floor(math.Log(u) / math.Log1p(-prob))
	if k >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(k)
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (p *PCG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs. It panics on empty input.
func Pick[T any](p *PCG, xs []T) T {
	return xs[p.Intn(len(xs))]
}
