package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed/stream diverged at draw %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 collided %d/1000 times", same)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1, 9)
	b := New(2, 9)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	p := New(3, 3)
	for _, n := range []int{1, 2, 3, 7, 16, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square sanity over 10 buckets; loose bound, not a strict test.
	p := New(99, 5)
	const buckets, draws = 10, 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[p.Intn(buckets)]++
	}
	expect := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 9 dof; p=0.001 critical value is 27.88. Allow generous headroom.
	if chi2 > 35 {
		t.Fatalf("chi2 = %.2f too large; counts %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(5, 5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	p := New(8, 8)
	for i := 0; i < 100; i++ {
		if p.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !p.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if p.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !p.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	p := New(11, 4)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if p.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %.4f", rate)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	p := New(17, 2)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	p.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("shuffle lost elements: %d", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(123, 1)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children collided %d/1000 times", same)
	}
}

func TestPick(t *testing.T) {
	p := New(7, 7)
	xs := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[Pick(p, xs)]++
	}
	for _, s := range xs {
		if counts[s] < 800 {
			t.Fatalf("Pick starved %q: %v", s, counts)
		}
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, stream uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		p := New(seed, stream)
		v := p.Intn(int(n))
		return v >= 0 && v < int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterministicBySeed(t *testing.T) {
	f := func(seed, stream uint64) bool {
		a, b := New(seed, stream), New(seed, stream)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	// E[failures before first success] = (1-p)/p.
	p := New(11, 3)
	for _, prob := range []float64{0.5, 0.1, 0.01} {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(p.Geometric(prob))
		}
		got := sum / n
		want := (1 - prob) / prob
		if got < want*0.95 || got > want*1.05 {
			t.Errorf("Geometric(%v) mean %.2f, want %.2f ±5%%", prob, got, want)
		}
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	p := New(1, 1)
	if got := p.Geometric(1); got != 0 {
		t.Errorf("Geometric(1) = %d, want 0", got)
	}
	if got := p.Geometric(1.5); got != 0 {
		t.Errorf("Geometric(1.5) = %d, want 0", got)
	}
	if got := p.Geometric(0); got != math.MaxInt32 {
		t.Errorf("Geometric(0) = %d, want MaxInt32", got)
	}
	if got := p.Geometric(-0.1); got != math.MaxInt32 {
		t.Errorf("Geometric(-0.1) = %d, want MaxInt32", got)
	}
	for i := 0; i < 1000; i++ {
		if got := p.Geometric(0.9999); got < 0 {
			t.Fatalf("negative skip %d", got)
		}
	}
}

// TestGeometricMatchesBernoulli checks skip-sampling selects positions at
// the same rate as independent per-trial draws: over a long trial
// sequence the hit fraction must match prob.
func TestGeometricMatchesBernoulli(t *testing.T) {
	p := New(5, 7)
	const trials = 1 << 20
	const prob = 0.03
	hits := 0
	for pos := p.Geometric(prob); pos < trials; pos += 1 + p.Geometric(prob) {
		hits++
	}
	got := float64(hits) / trials
	if got < prob*0.95 || got > prob*1.05 {
		t.Errorf("hit rate %.5f, want %.5f ±5%%", got, prob)
	}
}

func BenchmarkUint64(b *testing.B) {
	p := New(1, 1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	p := New(1, 1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += p.Intn(31)
	}
	_ = sink
}
