package routing

import (
	"testing"

	"cbar/internal/router"
)

// Tests for the event-driven algorithm state: PB saturation flags
// maintained by occupancy watchers and ECtN combines driven by the
// dirty-group set, each pinned to its retained full-recompute reference
// (Options.ReferenceScan).

// refOptions returns testOptions with the reference implementations
// selected.
func refOptions() Options {
	o := testOptions()
	o.ReferenceScan = true
	return o
}

// deliveryTrace runs the given network under a deterministic
// uniform-then-adversarial drive and returns the exact delivery trace
// (packet id and cycle), checking invariants — which include the
// StateChecker cross-audits — along the way.
func deliveryTrace(t *testing.T, n *router.Network, seed uint64) []int64 {
	t.Helper()
	var trace []int64
	n.OnDeliver = func(p *router.Packet, now int64) {
		trace = append(trace, int64(p.ID)<<24|now)
	}
	rnd := &testRand{s: seed}
	check := func(phase string) {
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
	}
	driveUniform(n, rnd, 400, 10)
	check("after uniform")
	driveAdversarial(n, rnd, 600, 20, 1)
	check("after adversarial")
	if !n.Drain(60000) {
		t.Fatal("did not drain")
	}
	check("after drain")
	return trace
}

// comparePinned builds the same algorithm in reference and event-driven
// modes and requires bit-identical delivery traces under an identical
// traffic drive — the decision-for-decision equivalence contract.
func comparePinned(t *testing.T, a Algo) {
	t.Helper()
	const netSeed, trafficSeed = 67, 71
	ref := deliveryTrace(t, build(t, a, refOptions(), netSeed), trafficSeed)
	evt := deliveryTrace(t, build(t, a, testOptions(), netSeed), trafficSeed)
	if len(ref) == 0 {
		t.Fatal("reference run delivered nothing")
	}
	if len(ref) != len(evt) {
		t.Fatalf("trace lengths differ: reference %d vs event-driven %d", len(ref), len(evt))
	}
	for i := range ref {
		if ref[i] != evt[i] {
			t.Fatalf("delivery %d diverged: reference %x vs event-driven %x", i, ref[i], evt[i])
		}
	}
}

// TestPBEventDrivenEquivalence: watcher-maintained saturation flags must
// reproduce the reference per-cycle recompute exactly. Combined with the
// CheckState invariant (sat == occupancy > threshold at every audit),
// this pins the flags flag-for-flag: occupancy only mutates at event
// handling (before BeginCycle) and at grants (after all Route calls), so
// a flag that always equals the fresh comparison equals the reference
// start-of-cycle recompute at every routing decision.
func TestPBEventDrivenEquivalence(t *testing.T) { comparePinned(t, PB) }

// TestECtNDirtyGroupEquivalence: the dirty-group combine must reproduce
// the combine-every-group reference exactly — a clean group's combine
// recomputes identical sums, so skipping it cannot change any decision.
func TestECtNDirtyGroupEquivalence(t *testing.T) { comparePinned(t, ECtN) }

// TestPBCheckStateCatchesCorruption: the StateChecker audit must fail
// when a saturation flag disagrees with the occupancy comparison, which
// is what makes the equivalence tests trustworthy.
func TestPBCheckStateCatchesCorruption(t *testing.T) {
	n := build(t, PB, testOptions(), 13)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("clean network flagged: %v", err)
	}
	alg := n.Alg.(*pbAlg)
	alg.sat[0][0] = true // no occupancy anywhere: flag must read false
	if err := n.CheckInvariants(); err == nil {
		t.Fatal("corrupted saturation flag not detected")
	}
	alg.sat[0][0] = false
}

// TestECtNCheckStateCatchesCorruption: a combined counter diverging from
// its group (or a missed dirty mark) must trip the audit.
func TestECtNCheckStateCatchesCorruption(t *testing.T) {
	n := build(t, ECtN, testOptions(), 17)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("clean network flagged: %v", err)
	}
	// Mutate one router's partials behind the dirty-set's back by
	// resetting it: the stored combined no longer matches a fresh
	// recombination and the group is not marked dirty.
	r := n.Group(0)[0]
	r.Ectn.IncPartial(0)
	alg := n.Alg.(*ectnAlg)
	alg.dirty.Drain(func(int32) {}) // discard the legitimate mark
	if err := n.CheckInvariants(); err == nil {
		t.Fatal("stale clean-group combine not detected")
	}
}
