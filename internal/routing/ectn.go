package routing

import (
	"fmt"

	"cbar/internal/core"
	"cbar/internal/router"
)

// ectnAlg is the paper's Explicit Contention Notification mechanism
// (§III-D). On top of Base's local counters, every router keeps a
// partial array with one counter per global link of its group:
//
//   - incremented when local traffic bound for a remote group reaches
//     the head of an injection queue, and when remote-bound traffic is
//     received through a global input port (transit entering the group);
//     the index is the global link the packet would minimally leave the
//     group through;
//   - decremented when that packet leaves the input queue.
//
// Every ECtNPeriod cycles the routers of a group exchange partial arrays
// and sum them into the combined array (modeled as free and
// instantaneous, as in the paper's simulations; §VI-B costs it
// analytically). The periodic combine is change-driven: partial
// mutations mark their group in a dirty-set (core.GroupDirty) and the
// exchange visits only the marked groups — a group whose partials did
// not change since its last combine would recompute the identical sums,
// so skipping it is exact. The visit-every-group reference survives
// behind Options.ReferenceScan, pinned by equivalence tests.
//
// At injection, a packet whose minimal global link's combined counter
// exceeds CombinedTh is misrouted through a random global link of the
// current router whose combined counter is under the threshold. All
// other decisions fall back to Base's local counters, which keeps
// in-transit hop-by-hop adaptivity.
//
// Because the combined information is refreshed only at the exchange
// period, a traffic change becomes visible group-wide one period later —
// exactly the 100-cycle plateau ECtN shows in Figure 7 before it starts
// misrouting directly from the injection queues.
type ectnAlg struct {
	thLocal    int32
	thCombined int32
	period     int64
	ectn       [][]*core.ECtN // per group, per member router
	// dirty is the set of groups whose partial arrays changed since
	// their last combine (nil in the fullCombine reference mode);
	// scratch is the allocation-free sum buffer both modes combine
	// into.
	dirty   *core.GroupDirty
	scratch []int32
	// fullCombine selects the reference combine-every-group exchange
	// instead of the dirty-group set (Options.ReferenceScan).
	fullCombine bool
}

func newECtN(o Options) *ectnAlg {
	return &ectnAlg{thLocal: o.BaseTh, thCombined: o.CombinedTh, period: o.ECtNPeriod, fullCombine: o.ReferenceScan}
}

func (*ectnAlg) Name() string { return ECtN.String() }

func (a *ectnAlg) Attach(n *router.Network) {
	t := n.Topo
	a.ectn = make([][]*core.ECtN, t.Groups)
	a.scratch = make([]int32, t.GlobalLinks)
	if !a.fullCombine {
		a.dirty = core.NewGroupDirty(t.Groups)
		if n.Workers() > 1 {
			// Under shard-parallel stepping the partial-counter hooks
			// run on each group's owning shard worker; per-shard mark
			// lanes keep the dirty marks lock-free and race-free while
			// BeginCycle's Drain stays at the sequential barrier.
			a.dirty.Shard(n.Workers(), n.ShardOfGroup)
		}
	}
	for g := 0; g < t.Groups; g++ {
		members := n.Group(g)
		states := make([]*core.ECtN, len(members))
		for i, r := range members {
			r.Ectn = core.NewECtN(t.GlobalLinks)
			if a.dirty != nil {
				r.Ectn.BindDirty(a.dirty, g)
			}
			states[i] = r.Ectn
		}
		a.ectn[g] = states
	}
}

// BeginCycle runs the periodic group-wide combine: every group in the
// reference mode, only the dirty groups otherwise. An idle period —
// no partial changed anywhere — costs O(1).
func (a *ectnAlg) BeginCycle(n *router.Network) {
	if n.Now()%a.period != 0 {
		return
	}
	if a.fullCombine {
		for _, group := range a.ectn {
			core.CombineGroupInto(a.scratch, group)
		}
		return
	}
	//lint:alloc non-escaping visitor: Drain only invokes it, so it stays on the stack
	a.dirty.Drain(func(g int32) {
		core.CombineGroupInto(a.scratch, a.ectn[g])
	})
}

// CheckState audits the dirty-group bookkeeping (router.StateChecker):
// every group's members must agree on the combined array, and a group
// the combiner would skip (not marked dirty) must still hold combined
// sums equal to a fresh recombination of its current partials — a
// mismatch there means a partial mutation missed its dirty mark.
func (a *ectnAlg) CheckState(n *router.Network) error {
	for g, group := range a.ectn {
		requireFresh := a.dirty != nil && !a.dirty.Marked(int32(g))
		if err := core.VerifyGroupCombined(group, requireFresh); err != nil {
			return fmt.Errorf("routing: ECtN group %d: %w", g, err)
		}
	}
	return nil
}

func (a *ectnAlg) OnArrive(r *router.Router, p *router.Packet, port, vc int) {
	// Remote-bound transit entering the group through a global port
	// contributes to the partial array on reception (§III-D).
	t := r.Net().Topo
	if !t.IsGlobalPort(port) {
		return
	}
	if l, ok := minGlobalLinkIndex(t, r, p); ok {
		r.Ectn.IncPartial(l)
		p.CountedLink = int16(l)
	}
}

func (a *ectnAlg) OnHead(r *router.Router, p *router.Packet, port, vc int) {
	countHead(r, p) // Base local counters
	// Local traffic at the head of an injection queue contributes to
	// the partial array (§III-D).
	t := r.Net().Topo
	if t.IsInjectionPort(port) && p.CountedLink < 0 {
		if l, ok := minGlobalLinkIndex(t, r, p); ok {
			r.Ectn.IncPartial(l)
			p.CountedLink = int16(l)
		}
	}
}

func (a *ectnAlg) OnDequeue(r *router.Router, p *router.Packet, port, vc int) {
	uncount(r, p)
	if p.CountedLink >= 0 {
		r.Ectn.DecPartial(int(p.CountedLink))
		p.CountedLink = -1
	}
}

func (a *ectnAlg) OnGrant(r *router.Router, p *router.Packet, port, vc, out, outVC int) {
	markDeviation(r, p, out)
}

func (a *ectnAlg) Route(r *router.Router, p *router.Packet, port, vc int) router.Request {
	t := r.Net().Topo
	// Injection decision on the combined counters.
	if t.IsInjectionPort(port) && canGlobalMisroute(r, p) {
		if l, ok := minGlobalLinkIndex(t, r, p); ok && r.Ectn.CombinedExceeds(l, a.thCombined) {
			pos := t.PosOf(r.ID)
			//lint:alloc non-escaping predicate: the pick helpers only invoke it, so it stays on the stack
			calm := func(out int) bool {
				k := t.GlobalOrdinal(out)
				return r.Ectn.Combined(t.GlobalLinkIndex(pos, k)) < a.thCombined
			}
			min := minimalOut(r, p)
			if out, ok := pickGlobal(r, min, calm); ok {
				return request(r, p, out)
			}
		}
	}
	// Everywhere else: Base behavior on the local counters.
	return contentionRoute(r, p, a.thLocal)
}
