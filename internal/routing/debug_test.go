package routing

import (
	"fmt"
	"os"
	"testing"
)

// TestDebugStuck is a diagnostic for delivery stalls; it prints where
// packets are stuck. Run it explicitly with CBAR_DEBUG=1 when chasing a
// progress bug; it is skipped otherwise.
func TestDebugStuck(t *testing.T) {
	if os.Getenv("CBAR_DEBUG") == "" {
		t.Skip("diagnostic; set CBAR_DEBUG=1 to run")
	}
	n := build(t, Min, testOptions(), 7)
	rnd := &testRand{s: 0xfeed}
	driveUniform(n, rnd, 300, 8)
	driveAdversarial(n, rnd, 300, 8, 1)
	ok := n.Drain(60000)
	fmt.Printf("drained=%v inflight=%d gen=%d del=%d blocked=%d\n",
		ok, n.InFlight, n.NumGenerated, n.NumDelivered, n.NumBlocked)
	if ok {
		return
	}
	nicTotal := 0
	for i := 0; i < n.Topo.Nodes; i++ {
		nicTotal += n.NICBacklog(i)
	}
	fmt.Printf("NIC backlog: %d\n", nicTotal)
	inq := 0
	for _, r := range n.Routers {
		for port := 0; port < r.NumPorts(); port++ {
			for vc := 0; vc < r.VCs(port); vc++ {
				cnt := r.QueuedPackets(port, vc)
				inq += cnt
				if cnt > 0 {
					p := r.HeadPacket(port, vc)
					min := n.Topo.MinimalNextPort(r.ID, int(p.Dst))
					fmt.Printf("r%d port%d(%v) vc%d: %d pkts; head %v granted=%v seen=%v reqMin=%d credits=%d outfree=%d linkbusy=%v\n",
						r.ID, port, r.Kind(port), vc, cnt, p, p.Granted, p.HeadSeen,
						min, r.Credits(min, 0), r.OutFree(min), r.LinkBusy(min))
				}
			}
		}
	}
	fmt.Printf("in queues: %d\n", inq)
	t.Fatal("stuck")
}
