package routing

import (
	"cbar/internal/router"
	"cbar/internal/topology"
)

// localVCBase positions local hops on the ascending-VC ladder by path
// stage: source-group hops use class 0; hops after the first global hop
// start at class 1; hops after a second global hop (Valiant-style paths)
// start at class 3, above every intermediate-group class, so
// destination-group traffic never shares a lane with in-transit traffic.
// The per-packet VC index is then base + local hops already taken in the
// current group, which strictly increases along any legal path — the
// Dragonfly deadlock-avoidance scheme of Kim et al. as implemented in
// FOGSim.
func localVCBase(globalHops int8) int {
	switch globalHops {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return 3
	}
}

// nextVC returns the VC to request on output `out` under the ascending-VC
// discipline, capped at the port's VC count (misrouting policies are
// restricted so the cap is only reached on a path's final, ejection-bound
// hop).
func nextVC(r *router.Router, p *router.Packet, out int) int {
	var vc int
	switch r.Kind(out) {
	case router.Local:
		vc = localVCBase(p.GlobalHops) + int(p.LocalHopsGroup)
	case router.Global:
		vc = int(p.GlobalHops)
	default:
		return 0 // ejection channels have a single lane
	}
	if maxVC := r.OutVCs(out) - 1; vc > maxVC {
		vc = maxVC
	}
	return vc
}

// request packages an output choice with its ascending VC.
func request(r *router.Router, p *router.Packet, out int) router.Request {
	return router.Request{Out: out, VC: nextVC(r, p, out), OK: true}
}

// minimalOut returns the minimal output toward the packet's final
// destination from router r.
func minimalOut(r *router.Router, p *router.Packet) int {
	return r.Net().Topo.MinimalNextPort(r.ID, int(p.Dst))
}

// phaseDest returns the node the packet is currently steering toward:
// the Valiant intermediate while ToInter, the real destination otherwise.
// It also performs the phase flip when the packet reaches the
// intermediate router.
func phaseDest(r *router.Router, p *router.Packet) int {
	if p.ToInter {
		if int(p.Inter) >= 0 && r.Net().Topo.RouterOfNode(int(p.Inter)) == r.ID {
			p.ToInter = false
			return int(p.Dst)
		}
		return int(p.Inter)
	}
	return int(p.Dst)
}

// canGlobalMisroute reports whether the misrouting policy permits a
// nonminimal global hop for p at router r: inter-group traffic still in
// its source-group phase (no global hop taken yet) that has not already
// committed to a nonminimal global path. Together with minimal routing
// this limits the packet to one source-group local hop before the global
// decision, the PAR-style "at injection or after a first hop" rule.
func canGlobalMisroute(r *router.Router, p *router.Packet) bool {
	if p.GlobalMisroute || p.GlobalHops != 0 {
		return false
	}
	t := r.Net().Topo
	return t.GroupOf(r.ID) != t.GroupOfNode(int(p.Dst))
}

// canLocalMisroute reports whether the policy permits a nonminimal local
// hop: the minimal continuation is a local hop in the intermediate or
// destination group (never the source group of inter-group traffic), no
// local misroute was taken in this group yet, and the hop after the
// misroute still fits the ascending-VC ladder (otherwise the misroute
// could close a virtual-channel dependency cycle).
func canLocalMisroute(r *router.Router, p *router.Packet, minOut int) bool {
	if p.LocalMisThisGroup || r.Kind(minOut) != router.Local {
		return false
	}
	// The misroute is hop base+LocalHopsGroup; the forced minimal hop
	// after it is base+LocalHopsGroup+1, which must stay within the
	// local VC count.
	if localVCBase(p.GlobalHops)+int(p.LocalHopsGroup)+1 > r.OutVCs(minOut)-1 {
		return false
	}
	t := r.Net().Topo
	inDestGroup := t.GroupOf(r.ID) == t.GroupOfNode(int(p.Dst))
	return inDestGroup || p.GlobalHops > 0
}

// pickGlobal reservoir-samples one global port of r, excluding `exclude`
// (pass -1 to exclude none), among those satisfying eligible. Dead ports
// (failed links or routers, see router/faults.go) are never candidates:
// the adaptive algorithms misroute around faults for free. It returns
// ok=false when no candidate qualifies.
func pickGlobal(r *router.Router, exclude int, eligible func(port int) bool) (int, bool) {
	t := r.Net().Topo
	first := t.FirstGlobalPort()
	pick, count := -1, 0
	for k := 0; k < t.H; k++ {
		port := first + k
		if port == exclude || !r.PortAlive(port) || !eligible(port) {
			continue
		}
		count++
		if r.RNG.Intn(count) == 0 {
			pick = port
		}
	}
	return pick, pick >= 0
}

// pickLocal reservoir-samples one local port of r, excluding `exclude`,
// among those satisfying eligible.
func pickLocal(r *router.Router, exclude int, eligible func(port int) bool) (int, bool) {
	t := r.Net().Topo
	first := t.FirstLocalPort()
	pick, count := -1, 0
	for j := 0; j < t.A-1; j++ {
		port := first + j
		if port == exclude || !r.PortAlive(port) || !eligible(port) {
			continue
		}
		count++
		if r.RNG.Intn(count) == 0 {
			pick = port
		}
	}
	return pick, pick >= 0
}

// markDeviation records misroute commitments at grant time by comparing
// the granted output with the packet's minimal continuation. Algorithms
// whose nonminimal decisions happen in-transit (OLM, Base, Hybrid, ECtN)
// use it as their OnGrant hook.
func markDeviation(r *router.Router, p *router.Packet, out int) {
	min := minimalOut(r, p)
	if out == min {
		return
	}
	switch r.Kind(out) {
	case router.Global:
		p.GlobalMisroute = true
	case router.Local:
		p.LocalMisroutes++
		p.LocalMisThisGroup = true
	}
}

// minGlobalLinkIndex returns the group-wide index of the global link the
// packet would minimally leave r's group through, and ok=false for
// intra-group destinations.
func minGlobalLinkIndex(t *topology.Dragonfly, r *router.Router, p *router.Packet) (int, bool) {
	g := t.GroupOf(r.ID)
	dg := t.GroupOfNode(int(p.Dst))
	if g == dg {
		return 0, false
	}
	return t.GlobalLinkToGroup(g, dg), true
}
