// Package routing implements the seven routing mechanisms evaluated in
// the paper on top of the router fabric:
//
//   - MIN and VAL (Valiant), the oblivious references;
//   - PB (PiggyBacking) and OLM (Opportunistic Local Misrouting), the
//     congestion-based adaptive baselines, triggered by credit/occupancy
//     estimates;
//   - Base, Hybrid and ECtN, the paper's contention-based mechanisms
//     (§III), triggered by the contention counters of internal/core.
//
// All mechanisms share the Dragonfly misrouting policy of the paper's
// §IV-A: nonminimal global hops may be taken in the source group (at
// injection or after the first local hop, PAR-style) toward a random
// global link of the current router; nonminimal local hops may be taken
// in the intermediate or destination group, at most once per visited
// group. Deadlock avoidance uses the ascending-VC discipline: a hop's VC
// index equals the number of previous hops of the same class, capped at
// the port's VC count.
package routing

import (
	"fmt"
	"strings"

	"cbar/internal/router"
)

// Algo identifies a routing mechanism.
type Algo int

// The seven mechanisms of the paper's evaluation, plus BaseProb, the
// §VI-C statistical-trigger extension the paper describes but leaves
// unexplored.
const (
	Min Algo = iota
	Valiant
	PB
	OLM
	Base
	Hybrid
	ECtN
	BaseProb
)

// All returns every mechanism, in the paper's presentation order
// (evaluated set first, then the §VI-C extension).
func All() []Algo { return []Algo{Min, Valiant, PB, OLM, Base, Hybrid, ECtN, BaseProb} }

// Evaluated returns the seven mechanisms of the paper's evaluation
// section (without the §VI-C extension).
func Evaluated() []Algo { return []Algo{Min, Valiant, PB, OLM, Base, Hybrid, ECtN} }

func (a Algo) String() string {
	switch a {
	case Min:
		return "MIN"
	case Valiant:
		return "VAL"
	case PB:
		return "PB"
	case OLM:
		return "OLM"
	case Base:
		return "Base"
	case Hybrid:
		return "Hybrid"
	case ECtN:
		return "ECtN"
	case BaseProb:
		return "Base-P"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// Parse resolves a case-insensitive mechanism name.
func Parse(s string) (Algo, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "min", "minimal":
		return Min, nil
	case "val", "valiant":
		return Valiant, nil
	case "pb", "piggyback", "piggybacking":
		return PB, nil
	case "olm":
		return OLM, nil
	case "base":
		return Base, nil
	case "hybrid":
		return Hybrid, nil
	case "ectn":
		return ECtN, nil
	case "base-p", "basep", "baseprob":
		return BaseProb, nil
	}
	return 0, fmt.Errorf("routing: unknown algorithm %q", s)
}

// IsContentionBased reports whether the mechanism uses contention
// counters (the paper's contribution).
func (a Algo) IsContentionBased() bool {
	return a == Base || a == Hybrid || a == ECtN || a == BaseProb
}

// IsAdaptive reports whether the mechanism adapts to network state.
func (a Algo) IsAdaptive() bool { return a != Min && a != Valiant }

// RequiredLocalVCs returns the number of local (and injection) VCs the
// mechanism needs for deadlock freedom: VAL and PB route through an
// intermediate node (up to four local hops, Table I), the rest need
// three.
func RequiredLocalVCs(a Algo) int {
	if a == Valiant || a == PB {
		return 4
	}
	return 3
}

// Options carries every policy parameter, defaulted to Table I.
type Options struct {
	// BaseTh is the contention threshold of Base and of ECtN's local
	// counters (Table I: 6).
	BaseTh int32
	// HybridTh is Hybrid's contention threshold (Table I: 7).
	HybridTh int32
	// CombinedTh is ECtN's combined-counter threshold (Table I: 10).
	CombinedTh int32
	// ECtNPeriod is the partial-array exchange period in cycles
	// (Table I: 100).
	ECtNPeriod int64
	// OLMRelPct is OLM's relative congestion threshold: misroute when
	// the nonminimal occupancy is below this percentage of the minimal
	// occupancy (Table I: 50).
	OLMRelPct int32
	// HybridRelPct is the same threshold for Hybrid's credit component
	// (Table I: 35).
	HybridRelPct int32
	// PBSatPackets is PB's global-channel saturation threshold, in
	// packets of queued-estimate (Table I: T = 3).
	PBSatPackets int32
	// PBUgalOffsetPhits is the constant offset of PB's UGAL-style
	// source comparison, in phits, biasing ties toward the minimal
	// path.
	PBUgalOffsetPhits int32
	// ProbRamp is BaseProb's (§VI-C) counter-to-probability slope: the
	// nonminimal probability reaches its cap once the counter exceeds
	// the threshold by ProbRamp. Zero defaults to BaseTh.
	ProbRamp int32
	// ProbMaxPct caps BaseProb's nonminimal probability (percent), so
	// the minimal path always keeps a share. Zero defaults to 90.
	ProbMaxPct int32
	// ReferenceScan selects the retained full-recompute reference
	// implementations of the per-cycle algorithm state — PB recomputes
	// every group's saturation flags from occupancy each cycle and ECtN
	// combines every group each period — instead of the event-driven
	// watchers and dirty-group sets. The two modes are cycle-for-cycle
	// identical (pinned by the algorithm-state equivalence tests); the
	// flag exists for those tests and for debugging.
	ReferenceScan bool
}

// DefaultOptions returns the Table I parameter set.
func DefaultOptions() Options {
	return Options{
		BaseTh:            6,
		HybridTh:          7,
		CombinedTh:        10,
		ECtNPeriod:        100,
		OLMRelPct:         50,
		HybridRelPct:      35,
		PBSatPackets:      3,
		PBUgalOffsetPhits: 32,
	}
}

// New builds the requested mechanism with the given options.
func New(a Algo, o Options) (router.Algorithm, error) {
	switch a {
	case Min:
		return &minAlg{}, nil
	case Valiant:
		return &valiantAlg{}, nil
	case PB:
		return newPB(o), nil
	case OLM:
		return newOLM(o), nil
	case Base:
		return newBase(o.BaseTh), nil
	case Hybrid:
		return newHybrid(o), nil
	case ECtN:
		return newECtN(o), nil
	case BaseProb:
		return newBaseProb(o.BaseTh, o.ProbRamp, o.ProbMaxPct), nil
	}
	return nil, fmt.Errorf("routing: unknown algorithm %v", a)
}

// MustNew is New panicking on error, for tests and fixed setups.
func MustNew(a Algo, o Options) router.Algorithm {
	alg, err := New(a, o)
	if err != nil {
		panic(err)
	}
	return alg
}
