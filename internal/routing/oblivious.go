package routing

import (
	"cbar/internal/router"
)

// minAlg is MIN: oblivious hierarchical minimal routing (§IV-A). Optimal
// latency under uniform traffic, catastrophic under adversarial patterns
// (the single minimal global link between two groups saturates).
type minAlg struct{ router.NopHooks }

func (*minAlg) Name() string { return Min.String() }

func (*minAlg) Route(r *router.Router, p *router.Packet, port, vc int) router.Request {
	return request(r, p, minimalOut(r, p))
}

// valiantAlg is VAL: Valiant routing to a random intermediate node
// (l g l - l g l), the paper's implementation choice ("misroute traffic
// to an intermediate node ..., not to the intermediate group", §V-A).
// Intra-group traffic routes minimally. The two local hops in the
// intermediate group act as local misrouting and avoid the ADV+h
// pathological local congestion.
type valiantAlg struct{ router.NopHooks }

func (*valiantAlg) Name() string { return Valiant.String() }

func (*valiantAlg) Route(r *router.Router, p *router.Packet, port, vc int) router.Request {
	t := r.Net().Topo
	if p.Inter < 0 && !p.Decided && t.IsInjectionPort(port) {
		p.Decided = true
		if t.GroupOfNode(int(p.Src)) != t.GroupOfNode(int(p.Dst)) {
			if inter := randomInterNode(r, p); inter >= 0 {
				p.Inter = int32(inter)
				p.ToInter = true
				p.GlobalMisroute = true
			}
		}
	}
	return request(r, p, t.MinimalNextPort(r.ID, phaseDest(r, p)))
}

// randomInterNode picks a uniform intermediate node on a router other
// than the source and destination routers. Under an active fault plan
// the intermediate must additionally be reachable from the deciding
// router (a packet steered toward a partitioned intermediate would only
// wander until the detour cap kills it); when the bounded rejection
// sampling finds no such router, -1 is returned and the caller falls
// back to the minimal path.
func randomInterNode(r *router.Router, p *router.Packet) int {
	t := r.Net().Topo
	srcR := t.RouterOfNode(int(p.Src))
	dstR := int(p.DstRouter)
	n := r.Net()
	if !n.FaultsActive() {
		for {
			ir := r.RNG.Intn(t.Routers)
			if ir != srcR && ir != dstR {
				return t.NodeID(ir, 0)
			}
		}
	}
	for tries := 0; tries < 4*t.Routers; tries++ {
		ir := r.RNG.Intn(t.Routers)
		if ir != srcR && ir != dstR && n.Reachable(r.ID, ir) {
			return t.NodeID(ir, 0)
		}
	}
	return -1
}
