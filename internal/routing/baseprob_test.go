package routing

import (
	"testing"

	"cbar/internal/router"
)

func TestBaseProbRamp(t *testing.T) {
	a := newBaseProb(6, 0, 0) // defaults: ramp=th=6, cap 90%
	cases := []struct {
		counter int32
		want    int32 // permille
	}{
		{0, 0}, {6, 0}, {7, 166}, {9, 500}, {12, 900}, {100, 900},
	}
	for _, c := range cases {
		if got := a.misroutePermille(c.counter); got != c.want {
			t.Errorf("permille(%d) = %d, want %d", c.counter, got, c.want)
		}
	}
}

func TestBaseProbDefaultsAndClamps(t *testing.T) {
	a := newBaseProb(0, 0, 0) // degenerate threshold
	if a.ramp < 1 {
		t.Fatal("ramp not defaulted")
	}
	b := newBaseProb(6, 3, 150) // cap beyond 100%
	if got := b.misroutePermille(100); got != 1000 {
		t.Fatalf("clamped cap permille = %d, want 1000", got)
	}
}

// TestBaseProbKeepsMinimalShare: under sustained ADV+1 pressure, Base
// diverts essentially everything while BaseProb keeps a visible share of
// traffic on the minimal path — the §VI-C behavior.
func TestBaseProbKeepsMinimalShare(t *testing.T) {
	t.Parallel()
	run := func(a Algo) float64 {
		n := build(t, a, testOptions(), 51)
		rnd := &testRand{s: 207}
		driveAdversarial(n, rnd, 800, 25, 1)
		var mis, tot int
		n.OnDeliver = func(p *router.Packet, _ int64) {
			tot++
			if p.GlobalMisroute {
				mis++
			}
		}
		driveAdversarial(n, rnd, 400, 25, 1)
		n.Drain(60000)
		if tot == 0 {
			t.Fatal("no deliveries")
		}
		return float64(mis) / float64(tot)
	}
	base := run(Base)
	prob := run(BaseProb)
	if base < 0.7 {
		t.Fatalf("Base misrouted only %.2f under ADV", base)
	}
	if prob >= base {
		t.Fatalf("BaseProb misroute fraction %.2f not below Base %.2f", prob, base)
	}
	if prob < 0.2 {
		t.Fatalf("BaseProb misroute fraction %.2f suspiciously low", prob)
	}
}

// TestBaseProbMinimalAtLowLoad: with counters under threshold the
// statistical trigger never fires.
func TestBaseProbMinimalAtLowLoad(t *testing.T) {
	t.Parallel()
	n := build(t, BaseProb, DefaultOptions(), 53)
	var mis int
	n.OnDeliver = func(p *router.Packet, _ int64) {
		if p.GlobalMisroute || p.LocalMisroutes > 0 {
			mis++
		}
	}
	rnd := &testRand{s: 209}
	driveUniform(n, rnd, 400, 4)
	n.Drain(30000)
	if n.NumDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	if frac := float64(mis) / float64(n.NumDelivered); frac > 0.01 {
		t.Fatalf("BaseProb misrouted %.2f%% at light uniform load", frac*100)
	}
}
