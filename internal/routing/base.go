package routing

import (
	"cbar/internal/router"
)

// baseAlg is the paper's Base mechanism (§III-B): OLM's misrouting
// policy with the misrouting trigger replaced by contention counters.
//
// Counter discipline (exactly §III-B):
//   - when a packet reaches the head of an input VC, the counter of its
//     minimal output is incremented — every VC of every port contributes
//     concurrently;
//   - the counter stays raised until the packet's tail leaves the input
//     buffer, even if the packet is forwarded through another port;
//   - misrouting triggers when the minimal output's counter strictly
//     exceeds th; the nonminimal port is chosen uniformly among the
//     policy's candidates whose own counter is under th.
//
// The trigger never reads buffer occupancy, which decouples the routing
// decision from buffer sizes and gives the immediate adaptation of
// Figures 7-8.
type baseAlg struct {
	router.NopHooks
	th int32
}

func newBase(th int32) *baseAlg { return &baseAlg{th: th} }

func (*baseAlg) Name() string { return Base.String() }

func (a *baseAlg) OnHead(r *router.Router, p *router.Packet, port, vc int) {
	countHead(r, p)
}

func (a *baseAlg) OnDequeue(r *router.Router, p *router.Packet, port, vc int) {
	uncount(r, p)
}

func (a *baseAlg) OnGrant(r *router.Router, p *router.Packet, port, vc, out, outVC int) {
	markDeviation(r, p, out)
}

func (a *baseAlg) Route(r *router.Router, p *router.Packet, port, vc int) router.Request {
	return contentionRoute(r, p, a.th)
}

// countHead increments the contention counter of p's minimal output and
// records it on the packet for the matching decrement.
func countHead(r *router.Router, p *router.Packet) {
	min := minimalOut(r, p)
	r.Contention.Inc(min)
	p.CountedPort = int16(min)
}

// uncount reverses countHead once the packet's tail leaves the queue.
func uncount(r *router.Router, p *router.Packet) {
	if p.CountedPort >= 0 {
		r.Contention.Dec(int(p.CountedPort))
		p.CountedPort = -1
	}
}

// contentionRoute is the shared Base decision, reused by Hybrid and ECtN:
// minimal unless the minimal output's counter exceeds th, in which case a
// policy-legal nonminimal port with a counter under th is chosen at
// random; minimal remains the fallback when no candidate qualifies.
func contentionRoute(r *router.Router, p *router.Packet, th int32) router.Request {
	min := minimalOut(r, p)
	if r.Kind(min) == router.Injection {
		return request(r, p, min)
	}
	if r.Contention.Exceeds(min, th) {
		if out, ok := contentionAlternative(r, p, min, th); ok {
			return request(r, p, out)
		}
	}
	return request(r, p, min)
}

// contentionAlternative picks a nonminimal port with contention under th,
// honoring the misrouting policy.
func contentionAlternative(r *router.Router, p *router.Packet, min int, th int32) (int, bool) {
	//lint:alloc non-escaping predicate: the pick helpers only invoke it, so it stays on the stack
	calm := func(out int) bool { return r.Contention.Get(out) < th }
	if canGlobalMisroute(r, p) {
		if out, ok := pickGlobal(r, min, calm); ok {
			return out, true
		}
	}
	if canLocalMisroute(r, p, min) {
		if out, ok := pickLocal(r, min, calm); ok {
			return out, true
		}
	}
	return 0, false
}
