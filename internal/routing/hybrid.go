package routing

import (
	"cbar/internal/router"
)

// hybridAlg is the paper's Hybrid mechanism (§III-C): contention counters
// and credit occupancy are two independent misrouting triggers, each with
// its own threshold, and traffic is routed nonminimally when either
// fires. Because each trigger can be set higher for the same final
// accuracy, Hybrid peaks the throughput of the studied mechanisms
// (Fig. 5a) at the cost of slightly worse uniform-traffic latency than
// Base (credits occasionally divert traffic at low load).
type hybridAlg struct {
	router.NopHooks
	th     int32
	relPct int64
}

func newHybrid(o Options) *hybridAlg {
	return &hybridAlg{th: o.HybridTh, relPct: int64(o.HybridRelPct)}
}

func (*hybridAlg) Name() string { return Hybrid.String() }

func (a *hybridAlg) OnHead(r *router.Router, p *router.Packet, port, vc int) {
	countHead(r, p)
}

func (a *hybridAlg) OnDequeue(r *router.Router, p *router.Packet, port, vc int) {
	uncount(r, p)
}

func (a *hybridAlg) OnGrant(r *router.Router, p *router.Packet, port, vc, out, outVC int) {
	markDeviation(r, p, out)
}

func (a *hybridAlg) Route(r *router.Router, p *router.Packet, port, vc int) router.Request {
	min := minimalOut(r, p)
	if r.Kind(min) == router.Injection {
		return request(r, p, min)
	}
	// Contention trigger, as in Base (candidates selected by counter).
	if r.Contention.Exceeds(min, a.th) {
		if out, ok := contentionAlternative(r, p, min, a.th); ok {
			return request(r, p, out)
		}
	}
	// Credit trigger, as in OLM (candidates selected by
	// capacity-normalized occupancy), with the same one-packet floor
	// on the minimal occupancy.
	qMin := int64(r.Occupancy(min))
	if qMin > int64(r.Net().Cfg.PacketSize) {
		capMin := int64(r.OccupancyCap(min))
		//lint:alloc non-escaping predicate: the pick helpers only invoke it, so it stays on the stack
		cheaper := func(out int) bool {
			q := int64(r.Occupancy(out))
			return q*capMin*100 < a.relPct*qMin*int64(r.OccupancyCap(out))
		}
		if canGlobalMisroute(r, p) {
			if out, ok := pickGlobal(r, min, cheaper); ok {
				return request(r, p, out)
			}
		}
		if canLocalMisroute(r, p, min) {
			if out, ok := pickLocal(r, min, cheaper); ok {
				return request(r, p, out)
			}
		}
	}
	return request(r, p, min)
}
