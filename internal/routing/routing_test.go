package routing

import (
	"testing"

	"cbar/internal/router"
	"cbar/internal/topology"
)

// Test topology: p=4,a=4,h=2 -> 9 groups, 36 routers, 144 nodes. Chosen
// over the smallest possible network because Base-style injection
// misrouting needs th <~ p (§VI-A), so p must leave headroom for a
// meaningful threshold.
func testParams() topology.Params { return topology.Params{P: 4, A: 4, H: 2} }

// testOptions scales Table I thresholds to the small router radix
// following the §VI-A analysis (th between the saturated-counter mean and
// the injection-port count).
func testOptions() Options {
	o := DefaultOptions()
	o.BaseTh = 3
	o.HybridTh = 4
	o.CombinedTh = 4
	return o
}

func build(t *testing.T, a Algo, o Options, seed uint64) *router.Network {
	t.Helper()
	cfg := router.DefaultConfig(testParams())
	cfg.VCsLocal = RequiredLocalVCs(a)
	cfg.VCsInjection = RequiredLocalVCs(a)
	alg, err := New(a, o)
	if err != nil {
		t.Fatal(err)
	}
	n, err := router.Build(cfg, alg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// xorshift for test traffic, independent of internal/rng.
type testRand struct{ s uint64 }

func (r *testRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *testRand) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *testRand) hit(pct int) bool { return r.intn(100) < pct }

// driveUniform injects ~loadPct% packet-rate uniform traffic for cycles.
func driveUniform(n *router.Network, rnd *testRand, cycles, loadPct int) {
	for c := 0; c < cycles; c++ {
		for node := 0; node < n.Topo.Nodes; node++ {
			if rnd.hit(loadPct) {
				dst := rnd.intn(n.Topo.Nodes)
				if dst != node {
					n.Inject(node, dst)
				}
			}
		}
		n.Step()
	}
}

// driveAdversarial injects ADV+offset traffic: every node sends to a
// random node in the group `offset` positions away.
func driveAdversarial(n *router.Network, rnd *testRand, cycles, loadPct, offset int) {
	t := n.Topo
	nodesPerGroup := t.A * t.P
	for c := 0; c < cycles; c++ {
		for node := 0; node < t.Nodes; node++ {
			if rnd.hit(loadPct) {
				dg := (t.GroupOfNode(node) + offset) % t.Groups
				dst := dg*nodesPerGroup + rnd.intn(nodesPerGroup)
				n.Inject(node, dst)
			}
		}
		n.Step()
	}
}

func TestParseAndString(t *testing.T) {
	for _, a := range All() {
		got, err := Parse(a.String())
		if err != nil || got != a {
			t.Errorf("Parse(%q) = %v, %v", a.String(), got, err)
		}
	}
	//lint:ordered per-key Parse assertion; order cannot affect outcomes
	for name, want := range map[string]Algo{
		"min": Min, "MINIMAL": Min, "val": Valiant, "Valiant": Valiant,
		"pb": PB, "piggybacking": PB, "olm": OLM,
		"base": Base, "hybrid": Hybrid, "ECTN": ECtN,
	} {
		got, err := Parse(name)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse accepted garbage")
	}
	if Algo(99).String() == "" {
		t.Error("unknown algo has empty name")
	}
}

func TestAlgoPredicates(t *testing.T) {
	if Min.IsAdaptive() || Valiant.IsAdaptive() {
		t.Error("oblivious mechanisms flagged adaptive")
	}
	for _, a := range []Algo{PB, OLM, Base, Hybrid, ECtN} {
		if !a.IsAdaptive() {
			t.Errorf("%v not adaptive", a)
		}
	}
	for _, a := range []Algo{Base, Hybrid, ECtN, BaseProb} {
		if !a.IsContentionBased() {
			t.Errorf("%v not contention-based", a)
		}
	}
	for _, a := range []Algo{Min, Valiant, PB, OLM} {
		if a.IsContentionBased() {
			t.Errorf("%v wrongly contention-based", a)
		}
	}
	if len(Evaluated()) != 7 || len(All()) != 8 {
		t.Errorf("algorithm sets sized %d/%d, want 7/8", len(Evaluated()), len(All()))
	}
	if RequiredLocalVCs(Valiant) != 4 || RequiredLocalVCs(PB) != 4 || RequiredLocalVCs(Base) != 3 {
		t.Error("RequiredLocalVCs wrong")
	}
}

func TestDefaultOptionsMatchTableI(t *testing.T) {
	o := DefaultOptions()
	if o.BaseTh != 6 || o.HybridTh != 7 || o.CombinedTh != 10 {
		t.Fatalf("contention thresholds %+v", o)
	}
	if o.OLMRelPct != 50 || o.HybridRelPct != 35 || o.PBSatPackets != 3 {
		t.Fatalf("congestion thresholds %+v", o)
	}
	if o.ECtNPeriod != 100 {
		t.Fatalf("ECtN period %d", o.ECtNPeriod)
	}
}

func TestNewRejectsUnknown(t *testing.T) {
	if _, err := New(Algo(42), DefaultOptions()); err == nil {
		t.Fatal("unknown algo accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Algo(42), DefaultOptions())
}

// TestAllAlgorithmsDeliver drives every mechanism with mixed traffic and
// checks conservation, invariants and full drain (progress/deadlock
// freedom in practice).
func TestAllAlgorithmsDeliver(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			t.Parallel()
			n := build(t, a, testOptions(), 7)
			rnd := &testRand{s: 0xfeed + uint64(a)}
			driveUniform(n, rnd, 300, 8)
			driveAdversarial(n, rnd, 300, 8, 1)
			if err := n.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if !n.Drain(60000) {
				t.Fatalf("%v: %d packets stuck", a, n.InFlight)
			}
			if err := n.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if n.NumDelivered != n.NumGenerated {
				t.Fatalf("%v: delivered %d of %d", a, n.NumDelivered, n.NumGenerated)
			}
		})
	}
}

// TestMinIsMinimal: MIN packets never misroute and never exceed the
// hierarchical hop bounds (2 local + 1 global).
func TestMinIsMinimal(t *testing.T) {
	n := build(t, Min, DefaultOptions(), 3)
	bad := 0
	n.OnDeliver = func(p *router.Packet, _ int64) {
		if p.GlobalMisroute || p.LocalMisroutes > 0 || p.GlobalHops > 1 || p.LocalHops > 2 {
			bad++
		}
	}
	rnd := &testRand{s: 11}
	driveUniform(n, rnd, 400, 10)
	n.Drain(30000)
	if bad != 0 {
		t.Fatalf("%d MIN packets were nonminimal", bad)
	}
	if n.NumDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestValiantPathShape: VAL inter-group packets are globally misrouted
// with at most 2 global and 4 local hops; intra-group packets stay
// minimal.
func TestValiantPathShape(t *testing.T) {
	n := build(t, Valiant, DefaultOptions(), 5)
	topo := n.Topo
	var interGroup, marked, tooLong int
	n.OnDeliver = func(p *router.Packet, _ int64) {
		if topo.GroupOfNode(int(p.Src)) != topo.GroupOfNode(int(p.Dst)) {
			interGroup++
			if p.GlobalMisroute {
				marked++
			}
			if p.GlobalHops > 2 || p.LocalHops > 4 {
				tooLong++
			}
		} else if p.GlobalHops != 0 {
			tooLong++
		}
	}
	rnd := &testRand{s: 13}
	driveUniform(n, rnd, 400, 10)
	n.Drain(30000)
	if interGroup == 0 {
		t.Fatal("no inter-group packets observed")
	}
	if marked != interGroup {
		t.Fatalf("only %d/%d inter-group VAL packets marked misrouted", marked, interGroup)
	}
	if tooLong != 0 {
		t.Fatalf("%d packets exceeded Valiant hop bounds", tooLong)
	}
}

// TestGlobalHopBound: no mechanism may ever take more than 2 global hops.
func TestGlobalHopBound(t *testing.T) {
	for _, a := range All() {
		n := build(t, a, testOptions(), 9)
		over := 0
		n.OnDeliver = func(p *router.Packet, _ int64) {
			if p.GlobalHops > 2 {
				over++
			}
		}
		rnd := &testRand{s: 0xabc + uint64(a)}
		driveAdversarial(n, rnd, 300, 15, 1)
		n.Drain(60000)
		if over > 0 {
			t.Errorf("%v: %d packets took >2 global hops", a, over)
		}
	}
}

// TestBaseCounterCensus: at any instant, every contention counter equals
// the number of input-VC head packets whose minimal output it is — the
// defining invariant of §III-B.
func TestBaseCounterCensus(t *testing.T) {
	n := build(t, Base, testOptions(), 21)
	rnd := &testRand{s: 17}
	check := func() {
		for _, r := range n.Routers {
			census := make([]int32, r.NumPorts())
			for port := 0; port < r.NumPorts(); port++ {
				for vc := 0; vc < r.VCs(port); vc++ {
					p := r.HeadPacket(port, vc)
					if p == nil || !p.HeadSeen {
						continue
					}
					if p.CountedPort >= 0 {
						census[p.CountedPort]++
					}
				}
			}
			for port := 0; port < r.NumPorts(); port++ {
				if got := r.Contention.Get(port); got != census[port] {
					t.Fatalf("router %d port %d: counter %d, census %d",
						r.ID, port, got, census[port])
				}
			}
		}
	}
	for c := 0; c < 200; c++ {
		for node := 0; node < n.Topo.Nodes; node++ {
			if rnd.hit(20) {
				dst := rnd.intn(n.Topo.Nodes)
				if dst != node {
					n.Inject(node, dst)
				}
			}
		}
		n.Step()
		if c%10 == 0 {
			check()
		}
	}
	n.Drain(30000)
	check()
	// After a full drain every counter must be zero.
	for _, r := range n.Routers {
		if r.Contention.Sum() != 0 {
			t.Fatalf("router %d: residual contention %d", r.ID, r.Contention.Sum())
		}
	}
}

// TestCountedEqualsHeadSeen: every head-seen packet holds exactly one
// counter reference under Base (CountedPort set on head, cleared on
// dequeue).
func TestCountedEqualsHeadSeen(t *testing.T) {
	n := build(t, Base, testOptions(), 23)
	rnd := &testRand{s: 29}
	driveUniform(n, rnd, 150, 15)
	for _, r := range n.Routers {
		for port := 0; port < r.NumPorts(); port++ {
			for vc := 0; vc < r.VCs(port); vc++ {
				p := r.HeadPacket(port, vc)
				if p == nil {
					continue
				}
				if p.HeadSeen && p.CountedPort < 0 {
					t.Fatalf("head-seen packet without counter: %v", p)
				}
				if !p.HeadSeen && p.CountedPort >= 0 {
					t.Fatalf("unseen packet holding counter: %v", p)
				}
			}
		}
	}
	n.Drain(30000)
}

// TestMinSaturatesAdversarialBaseDoesNot: the headline behavior — under
// ADV+1 traffic at a load well above the single minimal global link's
// capacity, Base (contention counters) sustains far more throughput than
// MIN, approaching Valiant.
func TestMinSaturatesAdversarialBaseDoesNot(t *testing.T) {
	throughput := func(a Algo) float64 {
		n := build(t, a, testOptions(), 31)
		rnd := &testRand{s: 37}
		warm := 600
		driveAdversarial(n, rnd, warm, 30, 1) // 0.3 pkt/node/cycle >> MIN capacity
		before := n.NumDelivered
		meas := 600
		driveAdversarial(n, rnd, meas, 30, 1)
		return float64(n.NumDelivered-before) / float64(meas) / float64(n.Topo.Nodes)
	}
	minTp := throughput(Min)
	baseTp := throughput(Base)
	valTp := throughput(Valiant)
	if baseTp < 1.5*minTp {
		t.Fatalf("Base (%f pkt/node/cyc) not clearly above MIN (%f)", baseTp, minTp)
	}
	if baseTp < 0.6*valTp {
		t.Fatalf("Base (%f) far below Valiant (%f)", baseTp, valTp)
	}
}

// TestBaseMisroutesNearlyAllAdversarialTraffic: §V-B observes misrouting
// stabilizes near 100% under sustained ADV+1 with contention counters.
func TestBaseMisroutesNearlyAllAdversarialTraffic(t *testing.T) {
	n := build(t, Base, testOptions(), 41)
	rnd := &testRand{s: 43}
	driveAdversarial(n, rnd, 800, 25, 1)
	var mis, tot int
	n.OnDeliver = func(p *router.Packet, _ int64) {
		tot++
		if p.GlobalMisroute {
			mis++
		}
	}
	driveAdversarial(n, rnd, 400, 25, 1)
	if tot == 0 {
		t.Fatal("no deliveries in measurement window")
	}
	frac := float64(mis) / float64(tot)
	if frac < 0.7 {
		t.Fatalf("only %.0f%% of adversarial traffic misrouted", frac*100)
	}
	n.Drain(60000)
}

// TestBaseStaysMinimalUnderLowUniform: under light uniform traffic the
// counters stay below threshold and Base behaves exactly like MIN
// (optimal latency claim of Fig. 5a).
func TestBaseStaysMinimalUnderLowUniform(t *testing.T) {
	// Table I thresholds: th=6 is calibrated to avoid false triggers
	// under uniform traffic (§VI-A), so use the defaults here rather
	// than the small-radix adversarial-friendly thresholds.
	n := build(t, Base, DefaultOptions(), 47)
	var mis int
	n.OnDeliver = func(p *router.Packet, _ int64) {
		if p.GlobalMisroute || p.LocalMisroutes > 0 {
			mis++
		}
	}
	rnd := &testRand{s: 53}
	driveUniform(n, rnd, 500, 4) // ~4% packet rate: light load
	n.Drain(30000)
	if n.NumDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	frac := float64(mis) / float64(n.NumDelivered)
	if frac > 0.01 {
		t.Fatalf("%.2f%% of light uniform traffic misrouted; counters trigger falsely", frac*100)
	}
}

// TestOLMNoMisrouteAtZeroOccupancy: OLM's relative trigger cannot fire
// when the minimal path is empty.
func TestOLMNoMisrouteAtZeroOccupancy(t *testing.T) {
	n := build(t, OLM, DefaultOptions(), 59)
	var mis int
	n.OnDeliver = func(p *router.Packet, _ int64) {
		if p.GlobalMisroute || p.LocalMisroutes > 0 {
			mis++
		}
	}
	// One packet at a time: occupancies are always 0 at decision time.
	rnd := &testRand{s: 61}
	for i := 0; i < 40; i++ {
		src := rnd.intn(n.Topo.Nodes)
		dst := rnd.intn(n.Topo.Nodes)
		if src == dst {
			continue
		}
		n.Inject(src, dst)
		n.Drain(5000)
	}
	if mis != 0 {
		t.Fatalf("%d packets misrouted on an idle network", mis)
	}
}

// TestPBSaturationFlags: hammer one group's minimal global link; PB must
// flag it and divert traffic to Valiant paths.
func TestPBSaturationFlags(t *testing.T) {
	n := build(t, PB, testOptions(), 67)
	rnd := &testRand{s: 71}
	var val, tot int
	n.OnDeliver = func(p *router.Packet, _ int64) {
		tot++
		if p.GlobalMisroute {
			val++
		}
	}
	driveAdversarial(n, rnd, 1500, 25, 1)
	n.Drain(60000)
	if tot == 0 {
		t.Fatal("nothing delivered")
	}
	frac := float64(val) / float64(tot)
	if frac < 0.3 {
		t.Fatalf("PB diverted only %.0f%% under heavy adversarial traffic", frac*100)
	}
}

// TestPBMostlyMinimalUnderLightUniform: PB should rarely divert at light
// uniform load.
func TestPBMostlyMinimalUnderLightUniform(t *testing.T) {
	n := build(t, PB, testOptions(), 73)
	var val int
	n.OnDeliver = func(p *router.Packet, _ int64) {
		if p.GlobalMisroute {
			val++
		}
	}
	rnd := &testRand{s: 79}
	// 1% packet rate = 0.08 phits/(node·cycle): genuinely light load.
	// (PB legitimately diverts 10-20% at mid loads — that is the
	// latency gap above MIN the paper shows in Fig. 5a.)
	driveUniform(n, rnd, 500, 1)
	n.Drain(30000)
	frac := float64(val) / float64(n.NumDelivered)
	if frac > 0.15 {
		t.Fatalf("PB diverted %.0f%% of light uniform traffic", frac*100)
	}
}

// TestECtNPartialPropagation: under adversarial pressure the combined
// counters must become visible at routers that only see their own local
// slice of the demand, after the exchange period.
func TestECtNPartialPropagation(t *testing.T) {
	o := testOptions()
	n := build(t, ECtN, o, 83)
	rnd := &testRand{s: 89}
	driveAdversarial(n, rnd, int(o.ECtNPeriod)+50, 25, 1)
	topo := n.Topo
	// For group 0, the minimal link to group 1 is link 0; after one
	// exchange every router of group 0 must agree on a nonzero
	// combined counter for it.
	l := topo.GlobalLinkToGroup(0, 1)
	agree := 0
	for _, r := range n.Group(0) {
		if r.Ectn.Combined(l) > 0 {
			agree++
		}
	}
	if agree != topo.A {
		t.Fatalf("only %d/%d routers of group 0 see combined demand", agree, topo.A)
	}
	n.Drain(60000)
	// Partial counters must fully unwind.
	for _, r := range n.Routers {
		for i := 0; i < r.Ectn.Links(); i++ {
			if r.Ectn.Partial(i) != 0 {
				t.Fatalf("router %d: residual partial[%d]=%d", r.ID, i, r.Ectn.Partial(i))
			}
		}
	}
}

// TestECtNMisroutesAtInjection: with combined counters over threshold,
// ECtN packets divert on their very first hop (global port of the source
// router) instead of crowding the local path — observable as misrouted
// packets whose first hop was global (no source-group local hop).
func TestECtNMisroutesAtInjection(t *testing.T) {
	o := testOptions()
	n := build(t, ECtN, o, 97)
	rnd := &testRand{s: 101}
	driveAdversarial(n, rnd, 600, 25, 1)
	var injMis, tot int
	n.OnDeliver = func(p *router.Packet, _ int64) {
		tot++
		if p.GlobalMisroute && p.GlobalHops == 2 && p.LocalHops <= 2 {
			injMis++
		}
	}
	driveAdversarial(n, rnd, 400, 25, 1)
	if tot == 0 || injMis == 0 {
		t.Fatalf("no injection-misrouted packets observed (%d/%d)", injMis, tot)
	}
	n.Drain(60000)
}

// TestHybridMisroutesUnderAdversarial: Hybrid must adapt via either
// trigger.
func TestHybridMisroutesUnderAdversarial(t *testing.T) {
	n := build(t, Hybrid, testOptions(), 103)
	rnd := &testRand{s: 107}
	driveAdversarial(n, rnd, 800, 25, 1)
	var mis, tot int
	n.OnDeliver = func(p *router.Packet, _ int64) {
		tot++
		if p.GlobalMisroute {
			mis++
		}
	}
	driveAdversarial(n, rnd, 400, 25, 1)
	if tot == 0 {
		t.Fatal("no deliveries")
	}
	if float64(mis)/float64(tot) < 0.5 {
		t.Fatalf("Hybrid misrouted only %d/%d under adversarial load", mis, tot)
	}
	n.Drain(60000)
}

// TestThresholdDirection: raising Base's threshold must not increase
// misrouting under uniform traffic (§VI-A: higher thresholds favor UN).
func TestThresholdDirection(t *testing.T) {
	misFrac := func(th int32) float64 {
		o := DefaultOptions()
		o.BaseTh = th
		n := build(t, Base, o, 113)
		var mis int
		n.OnDeliver = func(p *router.Packet, _ int64) {
			if p.GlobalMisroute || p.LocalMisroutes > 0 {
				mis++
			}
		}
		rnd := &testRand{s: 127}
		driveUniform(n, rnd, 400, 25)
		n.Drain(30000)
		return float64(mis) / float64(n.NumDelivered)
	}
	low := misFrac(1)
	high := misFrac(50)
	if low < high {
		t.Fatalf("misroute fraction low-th %.3f < high-th %.3f", low, high)
	}
	if high > 0.001 {
		t.Fatalf("astronomic threshold still misroutes (%.3f)", high)
	}
}

// TestDeterministicAcrossRuns: every algorithm must produce identical
// results for identical seeds.
func TestDeterministicAcrossRuns(t *testing.T) {
	for _, a := range All() {
		run := func() (uint64, uint64) {
			n := build(t, a, testOptions(), 999)
			rnd := &testRand{s: 131}
			driveUniform(n, rnd, 200, 10)
			driveAdversarial(n, rnd, 200, 10, 1)
			n.Drain(60000)
			return n.NumDelivered, n.DeliveredPhits
		}
		d1, p1 := run()
		d2, p2 := run()
		if d1 != d2 || p1 != p2 {
			t.Errorf("%v: nondeterministic (%d/%d vs %d/%d)", a, d1, p1, d2, p2)
		}
	}
}

// TestAdvHLocalMisrouting: ADV+h requires local misrouting in the
// intermediate group (§IV-A); contention mechanisms must deliver local
// misroutes there.
func TestAdvHLocalMisrouting(t *testing.T) {
	n := build(t, Base, testOptions(), 137)
	rnd := &testRand{s: 139}
	h := n.Topo.H
	driveAdversarial(n, rnd, 800, 25, h)
	var localMis int
	n.OnDeliver = func(p *router.Packet, _ int64) {
		if p.LocalMisroutes > 0 {
			localMis++
		}
	}
	driveAdversarial(n, rnd, 400, 25, h)
	n.Drain(60000)
	if localMis == 0 {
		t.Fatal("no local misroutes under ADV+h")
	}
}
