package routing

import (
	"testing"

	"cbar/internal/router"
	"cbar/internal/topology"
)

// helperNet builds a bare network for direct helper-level tests.
func helperNet(t *testing.T, a Algo) *router.Network {
	t.Helper()
	cfg := router.DefaultConfig(topology.Params{P: 4, A: 4, H: 2})
	cfg.VCsLocal = RequiredLocalVCs(a)
	n, err := router.Build(cfg, MustNew(a, testOptions()), 5)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLocalVCBase(t *testing.T) {
	cases := map[int8]int{0: 0, 1: 1, 2: 3, 3: 3}
	for gh, want := range cases { //lint:ordered per-key assertion on a pure function; order cannot affect outcomes
		if got := localVCBase(gh); got != want {
			t.Errorf("localVCBase(%d) = %d, want %d", gh, got, want)
		}
	}
}

// TestNextVCLadder walks the canonical paths and checks the requested VC
// indices follow the ascending ladder of DESIGN.md.
func TestNextVCLadder(t *testing.T) {
	n := helperNet(t, Valiant) // 4 local VCs
	r := n.Routers[0]
	topo := n.Topo
	localPort := topo.FirstLocalPort()
	globalPort := topo.FirstGlobalPort()

	cases := []struct {
		name                   string
		globalHops, localGroup int8
		port                   int
		want                   int
	}{
		{"source-group local", 0, 0, localPort, 0},
		{"first global", 0, 0, globalPort, 0},
		{"intermediate arrival local", 1, 0, localPort, 1},
		{"intermediate second local", 1, 1, localPort, 2},
		{"second global", 1, 1, globalPort, 1},
		{"dest-group local after 2 globals", 2, 0, localPort, 3},
		{"ejection", 2, 1, 0, 0},
	}
	for _, c := range cases {
		p := &router.Packet{GlobalHops: c.globalHops, LocalHopsGroup: c.localGroup}
		if got := nextVC(r, p, c.port); got != c.want {
			t.Errorf("%s: nextVC = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestNextVCCapsAtPortWidth: with 3 local VCs, the dest-group hop after
// two globals caps at VC2.
func TestNextVCCapsAtPortWidth(t *testing.T) {
	n := helperNet(t, Base) // 3 local VCs
	r := n.Routers[0]
	p := &router.Packet{GlobalHops: 2, LocalHopsGroup: 0}
	if got := nextVC(r, p, n.Topo.FirstLocalPort()); got != 2 {
		t.Fatalf("capped VC = %d, want 2", got)
	}
}

func TestCanGlobalMisroutePolicy(t *testing.T) {
	n := helperNet(t, Base)
	r := n.Routers[0] // group 0
	remote := int32(n.Topo.NodeID(n.Topo.RouterID(3, 0), 0))
	local := int32(n.Topo.NodeID(1, 0)) // router 1 is in group 0

	fresh := &router.Packet{Dst: remote}
	if !canGlobalMisroute(r, fresh) {
		t.Error("fresh inter-group packet denied global misroute")
	}
	already := &router.Packet{Dst: remote, GlobalMisroute: true}
	if canGlobalMisroute(r, already) {
		t.Error("second global misroute allowed")
	}
	hopped := &router.Packet{Dst: remote, GlobalHops: 1}
	if canGlobalMisroute(r, hopped) {
		t.Error("global misroute allowed after a global hop")
	}
	intra := &router.Packet{Dst: local}
	if canGlobalMisroute(r, intra) {
		t.Error("global misroute allowed for intra-group traffic")
	}
}

func TestCanLocalMisroutePolicy(t *testing.T) {
	n := helperNet(t, Base) // 3 local VCs
	topo := n.Topo
	r := n.Routers[0] // group 0, pos 0
	localMin := topo.FirstLocalPort()
	globalMin := topo.FirstGlobalPort()
	destInGroup := int32(topo.NodeID(1, 0))                  // dest group == group 0
	destRemote := int32(topo.NodeID(topo.RouterID(4, 1), 0)) // another group

	// Dest-group local hop, no global hops: allowed.
	p := &router.Packet{Dst: destInGroup}
	if !canLocalMisroute(r, p, localMin) {
		t.Error("dest-group local misroute denied")
	}
	// Minimal continuation not local: denied.
	if canLocalMisroute(r, p, globalMin) {
		t.Error("local misroute allowed with global minimal port")
	}
	// Already misrouted locally in this group: denied.
	p2 := &router.Packet{Dst: destInGroup, LocalMisThisGroup: true}
	if canLocalMisroute(r, p2, localMin) {
		t.Error("second local misroute in group allowed")
	}
	// Source group of inter-group traffic: denied.
	p3 := &router.Packet{Dst: destRemote}
	if canLocalMisroute(r, p3, localMin) {
		t.Error("source-group local misroute allowed")
	}
	// Intermediate group (one global hop): allowed, budget 1+0+1=2 <= 2.
	p4 := &router.Packet{Dst: destRemote, GlobalHops: 1}
	if !canLocalMisroute(r, p4, localMin) {
		t.Error("intermediate-group local misroute denied")
	}
	// Dest group after two globals with 3 local VCs: denied by the VC
	// budget guard (base 3 exceeds the ladder).
	p5 := &router.Packet{Dst: destInGroup, GlobalHops: 2}
	if canLocalMisroute(r, p5, localMin) {
		t.Error("local misroute allowed beyond VC budget")
	}
}

// TestCanLocalMisrouteWithFourVCs: VAL/PB-style routers (4 local VCs)
// lift the budget restriction for the 1-global-hop cases but still deny
// the 2-global-hop dest-group misroute (base 3 + 1 > 3).
func TestCanLocalMisrouteWithFourVCs(t *testing.T) {
	n := helperNet(t, Valiant)
	topo := n.Topo
	r := n.Routers[0]
	localMin := topo.FirstLocalPort()
	destInGroup := int32(topo.NodeID(1, 0))
	p := &router.Packet{Dst: destInGroup, GlobalHops: 2}
	if canLocalMisroute(r, p, localMin) {
		t.Error("4-VC router allowed misroute beyond ladder top")
	}
}

func TestPickGlobalRespectsEligibility(t *testing.T) {
	n := helperNet(t, Base)
	r := n.Routers[0]
	topo := n.Topo
	// No candidates.
	if _, ok := pickGlobal(r, -1, func(int) bool { return false }); ok {
		t.Error("pick with no eligible ports succeeded")
	}
	// Single candidate, excluding the other.
	only := topo.FirstGlobalPort()
	got, ok := pickGlobal(r, topo.FirstGlobalPort()+1, func(p int) bool { return p == only })
	if !ok || got != only {
		t.Errorf("pick = %d, %v", got, ok)
	}
	// Exclusion honored over many draws.
	for i := 0; i < 100; i++ {
		got, ok := pickGlobal(r, only, func(int) bool { return true })
		if !ok || got == only {
			t.Fatalf("excluded port picked: %d %v", got, ok)
		}
	}
}

func TestPickLocalUniformity(t *testing.T) {
	n := helperNet(t, Base)
	r := n.Routers[0]
	topo := n.Topo
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		got, ok := pickLocal(r, -1, func(int) bool { return true })
		if !ok {
			t.Fatal("no local pick")
		}
		counts[got]++
	}
	if len(counts) != topo.A-1 {
		t.Fatalf("picked %d distinct locals, want %d", len(counts), topo.A-1)
	}
	for port, c := range counts { //lint:ordered independent per-port starvation checks; any order finds the same violations
		if c < 3000/(topo.A-1)/2 {
			t.Fatalf("port %d starved: %d", port, c)
		}
	}
}

func TestMinGlobalLinkIndex(t *testing.T) {
	n := helperNet(t, ECtN)
	topo := n.Topo
	r := n.Routers[0] // group 0
	remote := &router.Packet{Dst: int32(topo.NodeID(topo.RouterID(2, 0), 0))}
	l, ok := minGlobalLinkIndex(topo, r, remote)
	if !ok {
		t.Fatal("remote dest returned no link")
	}
	if topo.GlobalLinkTarget(0, l) != 2 {
		t.Fatalf("link %d targets group %d, want 2", l, topo.GlobalLinkTarget(0, l))
	}
	intra := &router.Packet{Dst: int32(topo.NodeID(1, 0))}
	if _, ok := minGlobalLinkIndex(topo, r, intra); ok {
		t.Fatal("intra-group dest returned a link")
	}
}

// TestMarkDeviation checks misroute commitments are recorded only for
// nonminimal grants.
func TestMarkDeviation(t *testing.T) {
	n := helperNet(t, Base)
	topo := n.Topo
	r := n.Routers[0]
	dst := int32(topo.NodeID(topo.RouterID(3, 0), 0))
	min := topo.MinimalNextPort(r.ID, int(dst))

	p := &router.Packet{Dst: dst}
	markDeviation(r, p, min)
	if p.GlobalMisroute || p.LocalMisroutes != 0 {
		t.Fatal("minimal grant marked as deviation")
	}
	// A global port other than the minimal one.
	var alt int
	for k := 0; k < topo.H; k++ {
		if port := topo.GlobalPort(k); port != min {
			alt = port
			break
		}
	}
	markDeviation(r, p, alt)
	if !p.GlobalMisroute {
		t.Fatal("global deviation not marked")
	}
	// Local deviation.
	p2 := &router.Packet{Dst: dst}
	var altLocal int
	for j := 0; j < topo.A-1; j++ {
		if port := topo.FirstLocalPort() + j; port != min {
			altLocal = port
			break
		}
	}
	markDeviation(r, p2, altLocal)
	if p2.LocalMisroutes != 1 || !p2.LocalMisThisGroup {
		t.Fatal("local deviation not marked")
	}
}
