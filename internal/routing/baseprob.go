package routing

import (
	"cbar/internal/router"
)

// baseProbAlg implements the statistical misrouting trigger the paper
// sketches but does not evaluate (§VI-C): instead of Base's hard
// decision — misroute whenever the minimal output's counter exceeds th —
// the probability of routing nonminimally grows with the counter value
// above the threshold, so the minimal path keeps carrying a share of the
// traffic even under heavy adversarial load. §VI-C motivates this with
// the observation that a fixed threshold can leave the minimal path
// completely empty while everything detours around it (in real systems
// some traffic classes must stay minimal anyway, e.g. Cascade's
// in-order packets).
//
// The probability ramp is linear: p = (counter - th) / ramp, clamped to
// maxPct/100. With ramp = th (the default) the misrouting probability
// reaches its cap when the counter doubles the threshold.
type baseProbAlg struct {
	th     int32
	ramp   int32
	maxPct int32
}

// newBaseProb builds the §VI-C statistical variant. ramp and maxPct
// default to th and 90 when zero.
func newBaseProb(th, ramp, maxPct int32) *baseProbAlg {
	if ramp <= 0 {
		ramp = th
		if ramp <= 0 {
			ramp = 1
		}
	}
	if maxPct <= 0 {
		maxPct = 90
	}
	if maxPct > 100 {
		maxPct = 100
	}
	return &baseProbAlg{th: th, ramp: ramp, maxPct: maxPct}
}

func (*baseProbAlg) Name() string { return BaseProb.String() }

func (a *baseProbAlg) Attach(*router.Network)     {}
func (a *baseProbAlg) BeginCycle(*router.Network) {}

func (a *baseProbAlg) OnArrive(r *router.Router, p *router.Packet, port, vc int) {}

func (a *baseProbAlg) OnHead(r *router.Router, p *router.Packet, port, vc int) {
	countHead(r, p)
}

func (a *baseProbAlg) OnDequeue(r *router.Router, p *router.Packet, port, vc int) {
	uncount(r, p)
}

func (a *baseProbAlg) OnGrant(r *router.Router, p *router.Packet, port, vc, out, outVC int) {
	markDeviation(r, p, out)
}

// misroutePermille returns the per-decision nonminimal probability in
// 1/1000 units for a given counter value.
func (a *baseProbAlg) misroutePermille(counter int32) int32 {
	if counter <= a.th {
		return 0
	}
	pm := (counter - a.th) * 1000 / a.ramp
	if cap := a.maxPct * 10; pm > cap {
		pm = cap
	}
	return pm
}

func (a *baseProbAlg) Route(r *router.Router, p *router.Packet, port, vc int) router.Request {
	min := minimalOut(r, p)
	if r.Kind(min) == router.Injection {
		return request(r, p, min)
	}
	pm := a.misroutePermille(r.Contention.Get(min))
	if pm > 0 && int32(r.RNG.Intn(1000)) < pm {
		if out, ok := contentionAlternative(r, p, min, a.th); ok {
			return request(r, p, out)
		}
	}
	return request(r, p, min)
}
