package routing

import (
	"cbar/internal/router"
)

// olmAlg is Opportunistic Local Misrouting (García et al., ICPP 2013),
// the paper's in-transit congestion-based baseline. Every head-of-queue
// packet re-evaluates its route each cycle:
//
//   - in the source group (at injection or after the first local hop,
//     PAR-style) an inter-group packet may take a nonminimal global hop
//     through a random global port of the current router when that
//     port's occupancy is below OLMRelPct% of the minimal port's;
//   - in the intermediate or destination group a packet may take one
//     nonminimal local hop per group under the same relative-occupancy
//     condition.
//
// Occupancy is the credit estimate (output buffer plus outstanding
// credits), so the trigger carries the buffer-size dependence and
// round-trip uncertainty the paper's §II attributes to congestion-based
// mechanisms — that is the point of the baseline.
type olmAlg struct {
	router.NopHooks
	relPct int64
}

func newOLM(o Options) *olmAlg { return &olmAlg{relPct: int64(o.OLMRelPct)} }

func (*olmAlg) Name() string { return OLM.String() }

func (a *olmAlg) Route(r *router.Router, p *router.Packet, port, vc int) router.Request {
	min := minimalOut(r, p)
	if r.Kind(min) == router.Injection {
		return request(r, p, min) // ejection: we are home
	}
	qMin := int64(r.Occupancy(min))
	// The relative comparison only engages once more than one packet is
	// outstanding on the minimal port: a single packet's credit shadow
	// (still in flight on the link round trip) is not congestion, and
	// without the floor OLM would misroute a large share of light
	// uniform traffic instead of the paper's small penalty over MIN.
	if qMin > int64(r.Net().Cfg.PacketSize) {
		// Occupancies are normalized by each port's capacity before
		// the percentage comparison: the minimal continuation is
		// often a local port (128-phit depth at Table I) while the
		// nonminimal candidates are global ports (544-phit depth);
		// comparing raw phit counts would stop all misrouting once
		// the deep global buffers carry a moderate load.
		capMin := int64(r.OccupancyCap(min))
		//lint:alloc non-escaping predicate: the pick helpers only invoke it, so it stays on the stack
		cheaper := func(out int) bool {
			q := int64(r.Occupancy(out))
			return q*capMin*100 < a.relPct*qMin*int64(r.OccupancyCap(out))
		}
		if canGlobalMisroute(r, p) {
			if out, ok := pickGlobal(r, min, cheaper); ok {
				return request(r, p, out)
			}
		}
		if canLocalMisroute(r, p, min) {
			if out, ok := pickLocal(r, min, cheaper); ok {
				return request(r, p, out)
			}
		}
	}
	return request(r, p, min)
}

func (a *olmAlg) OnGrant(r *router.Router, p *router.Packet, port, vc, out, outVC int) {
	markDeviation(r, p, out)
}
