package routing

import "cbar/internal/router"

// Quiet-cycle elision horizons (router.CycleHorizon): every shipped
// policy declares the next cycle its BeginCycle does observable work, so
// the cycle loops can jump quiet spans (see router/elide.go). The
// contract per implementation:
//
//   - Policies with no BeginCycle work at all (Base and its statistical
//     variant, OLM, MIN, VAL, the hybrid) return NoPendingCycle: the
//     clock may jump any distance without consulting them.
//   - PB's event-driven mode keeps its saturation flags current from
//     occupancy watchers — BeginCycle is empty — so it too returns
//     NoPendingCycle. The reference full-scan mode recomputes the flags
//     every cycle and returns ok=false, pinning the stepping path.
//   - ECtN combines dirty groups every ECtNPeriod cycles: while any
//     group is dirty the horizon is the next combine tick (which may be
//     the current cycle — then no elision happens and Step runs the
//     combine); with a clean dirty-set the next combine would be a
//     no-op and the horizon is NoPendingCycle. The reference
//     combine-every-group mode returns ok=false.
//
// A new Alg implementation that omits NextAlgCycle is simply never
// elided (the safe default); one that implements it must return, at
// every reachable state, a cycle no later than its BeginCycle's next
// observable effect — and must stay allocation-free, as the query runs
// on the stepping hot path.

func (*baseAlg) NextAlgCycle(*router.Network) (int64, bool) {
	return router.NoPendingCycle, true
}

func (*baseProbAlg) NextAlgCycle(*router.Network) (int64, bool) {
	return router.NoPendingCycle, true
}

func (*olmAlg) NextAlgCycle(*router.Network) (int64, bool) {
	return router.NoPendingCycle, true
}

func (*minAlg) NextAlgCycle(*router.Network) (int64, bool) {
	return router.NoPendingCycle, true
}

func (*valiantAlg) NextAlgCycle(*router.Network) (int64, bool) {
	return router.NoPendingCycle, true
}

func (*hybridAlg) NextAlgCycle(*router.Network) (int64, bool) {
	return router.NoPendingCycle, true
}

func (a *pbAlg) NextAlgCycle(*router.Network) (int64, bool) {
	if a.fullScan {
		return 0, false
	}
	return router.NoPendingCycle, true
}

func (a *ectnAlg) NextAlgCycle(n *router.Network) (int64, bool) {
	if a.fullCombine {
		return 0, false
	}
	if a.dirty.Len() == 0 {
		return router.NoPendingCycle, true
	}
	now := n.Now()
	return now + (a.period-now%a.period)%a.period, true
}
