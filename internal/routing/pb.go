package routing

import (
	"cbar/internal/router"
)

// pbAlg is PiggyBacking (Jiang, Kim, Dally, ISCA 2009), the paper's
// source-routed congestion-based baseline. Every router continuously
// flags each of its global channels saturated when the channel's credit
// pool is nearly exhausted — fewer than PBSatPackets packets' worth of
// credits remain. (The threshold is relative to the credit capacity, not
// absolute occupancy: on a 100-cycle global link even uncongested flow
// keeps bandwidth×RTT worth of credits in flight, the §II-B uncertainty,
// so an absolute threshold would flag healthy links.) The flags are
// shared with all routers of the group, modeling the piggybacked
// broadcast as free and instantaneous.
//
// At injection the source router chooses once, UGAL-style, between the
// minimal path and a Valiant path through a random intermediate node:
// Valiant is chosen when the minimal global channel is flagged saturated,
// or when the hop-weighted occupancy of the minimal first hop exceeds
// that of the Valiant first hop by more than an offset. The decision is
// final (source routing), which is what exposes PB to the routing
// oscillations of Figure 9: the control variable (occupancy) is a
// consequence of the earlier decisions it drives.
type pbAlg struct {
	router.NopHooks
	satPackets int32
	satPhits   int32
	offset     int32
	// sat[g][l]: is global link l of group g flagged saturated, as
	// last broadcast within group g.
	sat [][]bool
}

func newPB(o Options) *pbAlg {
	return &pbAlg{offset: o.PBUgalOffsetPhits, satPackets: o.PBSatPackets}
}

func (*pbAlg) Name() string { return PB.String() }

func (a *pbAlg) Attach(n *router.Network) {
	// Saturated when the outstanding phits exceed the global link's
	// bandwidth-delay product by more than satPackets packets: even at
	// full utilization a healthy link keeps only ~BDP phits of credits
	// in flight (the §II-B shadow), so anything beyond BDP + slack is
	// genuine downstream queueing. The threshold is intentionally
	// independent of the buffer size — tying it to capacity would make
	// the flag unreachable with deep buffers (Figure 8's 2048-phit
	// case) or permanently set with shallow ones.
	bdp := int32(2*n.Cfg.LatencyGlobal + n.Cfg.PacketSize)
	a.satPhits = bdp + a.satPackets*int32(n.Cfg.PacketSize)
	a.sat = make([][]bool, n.Topo.Groups)
	for g := range a.sat {
		a.sat[g] = make([]bool, n.Topo.GlobalLinks)
	}
}

// BeginCycle refreshes every group's saturation flags from the current
// global-channel occupancies.
func (a *pbAlg) BeginCycle(n *router.Network) {
	t := n.Topo
	first := t.FirstGlobalPort()
	for g := 0; g < t.Groups; g++ {
		flags := a.sat[g]
		for pos, r := range n.Group(g) {
			for k := 0; k < t.H; k++ {
				flags[pos*t.H+k] = r.Occupancy(first+k) > a.satPhits
			}
		}
	}
}

func (a *pbAlg) Route(r *router.Router, p *router.Packet, port, vc int) router.Request {
	t := r.Net().Topo
	if !p.Decided && t.IsInjectionPort(port) {
		p.Decided = true
		a.decide(r, p)
	}
	return request(r, p, t.MinimalNextPort(r.ID, phaseDest(r, p)))
}

// decide makes PB's one-time source decision for an inter-group packet.
func (a *pbAlg) decide(r *router.Router, p *router.Packet) {
	t := r.Net().Topo
	g := t.GroupOf(r.ID)
	dg := t.GroupOfNode(int(p.Dst))
	if g == dg {
		return // intra-group traffic is always minimal
	}
	inter := randomInterNode(r, p)
	interR := t.RouterOfNode(inter)

	minLink := t.GlobalLinkToGroup(g, dg)
	saturated := a.sat[g][minLink]

	minFirst := t.MinimalNextPort(r.ID, int(p.Dst))
	valFirst := t.MinimalNextPort(r.ID, inter)
	qMin := int64(r.Occupancy(minFirst))
	qVal := int64(r.Occupancy(valFirst))
	hMin := int64(t.MinimalHops(r.ID, int(p.DstRouter)) + 1)
	hVal := int64(t.MinimalHops(r.ID, interR) + t.MinimalHops(interR, int(p.DstRouter)) + 1)

	if saturated || qMin*hMin > qVal*hVal+int64(a.offset) {
		p.Inter = int32(inter)
		p.ToInter = true
		p.GlobalMisroute = true
	}
}
