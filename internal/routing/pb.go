package routing

import (
	"fmt"

	"cbar/internal/router"
)

// pbAlg is PiggyBacking (Jiang, Kim, Dally, ISCA 2009), the paper's
// source-routed congestion-based baseline. Every router continuously
// flags each of its global channels saturated when the channel's credit
// pool is nearly exhausted — fewer than PBSatPackets packets' worth of
// credits remain. (The threshold is relative to the credit capacity, not
// absolute occupancy: on a 100-cycle global link even uncongested flow
// keeps bandwidth×RTT worth of credits in flight, the §II-B uncertainty,
// so an absolute threshold would flag healthy links.) The flags are
// shared with all routers of the group, modeling the piggybacked
// broadcast as free and instantaneous.
//
// The flags are maintained change-driven: an occupancy-threshold watcher
// on each global port (router.Network.WatchOccupancy) flips the flag at
// the instant the occupancy crosses the saturation threshold, exactly as
// a hardware credit comparator would raise the piggybacked bit. This
// removes the per-cycle O(groups × routers × global ports) recompute;
// the recompute survives behind Options.ReferenceScan as the reference
// semantics, pinned to the event-driven mode by equivalence tests.
//
// At injection the source router chooses once, UGAL-style, between the
// minimal path and a Valiant path through a random intermediate node:
// Valiant is chosen when the minimal global channel is flagged saturated,
// or when the hop-weighted occupancy of the minimal first hop exceeds
// that of the Valiant first hop by more than an offset. The decision is
// final (source routing), which is what exposes PB to the routing
// oscillations of Figure 9: the control variable (occupancy) is a
// consequence of the earlier decisions it drives.
type pbAlg struct {
	router.NopHooks
	satPackets int32
	satPhits   int32
	offset     int32
	// sat[g][l]: is global link l of group g flagged saturated, as
	// last broadcast within group g.
	sat [][]bool
	// fullScan selects the reference per-cycle recompute instead of the
	// occupancy watchers (Options.ReferenceScan).
	fullScan bool
}

func newPB(o Options) *pbAlg {
	return &pbAlg{offset: o.PBUgalOffsetPhits, satPackets: o.PBSatPackets, fullScan: o.ReferenceScan}
}

func (*pbAlg) Name() string { return PB.String() }

func (a *pbAlg) Attach(n *router.Network) {
	// Saturated when the outstanding phits exceed the global link's
	// bandwidth-delay product by more than satPackets packets: even at
	// full utilization a healthy link keeps only ~BDP phits of credits
	// in flight (the §II-B shadow), so anything beyond BDP + slack is
	// genuine downstream queueing. The threshold is intentionally
	// independent of the buffer size — tying it to capacity would make
	// the flag unreachable with deep buffers (Figure 8's 2048-phit
	// case) or permanently set with shallow ones.
	bdp := int32(2*n.Cfg.LatencyGlobal + n.Cfg.PacketSize)
	a.satPhits = bdp + a.satPackets*int32(n.Cfg.PacketSize)
	t := n.Topo
	a.sat = make([][]bool, t.Groups)
	for g := range a.sat {
		a.sat[g] = make([]bool, t.GlobalLinks)
	}
	if a.fullScan {
		return
	}
	// Event-driven mode: one occupancy watcher per global port flips the
	// flag the reference scan would compute. Occupancy mutates only at
	// event handling (before BeginCycle) and at allocation grants (after
	// every Route call of the cycle), so at each routing decision the
	// watched flag equals the flag a start-of-cycle recompute would have
	// produced — the modes are decision-for-decision identical.
	first := t.FirstGlobalPort()
	for g := 0; g < t.Groups; g++ {
		flags := a.sat[g]
		for pos, r := range n.Group(g) {
			for k := 0; k < t.H; k++ {
				l := pos*t.H + k
				//lint:sharded sat[g] is group g's own lane and a group's routers never span shards; the watcher fires on their shard
				n.WatchOccupancy(r.ID, first+k, a.satPhits, func(above bool) { flags[l] = above })
			}
		}
	}
}

// BeginCycle refreshes every group's saturation flags from the current
// global-channel occupancies — but only in the reference full-scan mode.
// In the event-driven mode the watchers already keep the flags current
// and PB contributes no per-cycle O(network) term.
func (a *pbAlg) BeginCycle(n *router.Network) {
	if !a.fullScan {
		return
	}
	t := n.Topo
	first := t.FirstGlobalPort()
	for g := 0; g < t.Groups; g++ {
		flags := a.sat[g]
		for pos, r := range n.Group(g) {
			for k := 0; k < t.H; k++ {
				flags[pos*t.H+k] = r.Occupancy(first+k) > a.satPhits
			}
		}
	}
}

// CheckState cross-checks the event-driven saturation flags against a
// fresh recompute from occupancy (router.StateChecker): in watcher mode
// sat[g][l] == (occupancy > threshold) holds at every instant. The
// reference mode is exempt — its flags legitimately lag occupancy
// mutations between BeginCycle refreshes.
func (a *pbAlg) CheckState(n *router.Network) error {
	if a.fullScan {
		return nil
	}
	t := n.Topo
	first := t.FirstGlobalPort()
	for g := 0; g < t.Groups; g++ {
		flags := a.sat[g]
		for pos, r := range n.Group(g) {
			for k := 0; k < t.H; k++ {
				occ := r.Occupancy(first + k)
				if want := occ > a.satPhits; flags[pos*t.H+k] != want {
					return fmt.Errorf("routing: PB sat[%d][%d] = %v but occupancy %d vs threshold %d says %v",
						g, pos*t.H+k, flags[pos*t.H+k], occ, a.satPhits, want)
				}
			}
		}
	}
	return nil
}

func (a *pbAlg) Route(r *router.Router, p *router.Packet, port, vc int) router.Request {
	t := r.Net().Topo
	if !p.Decided && t.IsInjectionPort(port) {
		p.Decided = true
		a.decide(r, p)
	}
	return request(r, p, t.MinimalNextPort(r.ID, phaseDest(r, p)))
}

// decide makes PB's one-time source decision for an inter-group packet.
func (a *pbAlg) decide(r *router.Router, p *router.Packet) {
	t := r.Net().Topo
	g := t.GroupOf(r.ID)
	dg := t.GroupOfNode(int(p.Dst))
	if g == dg {
		return // intra-group traffic is always minimal
	}
	inter := randomInterNode(r, p)
	if inter < 0 {
		return // no live intermediate reachable: stay minimal
	}
	interR := t.RouterOfNode(inter)

	minLink := t.GlobalLinkToGroup(g, dg)
	// A dead minimal channel reads as saturated: the piggybacked
	// broadcast carries liveness exactly as it carries the credit flag,
	// so the source diverts those flows onto Valiant paths instead of
	// shoveling them at the router-level escape detour.
	saturated := a.sat[g][minLink] || !r.Net().GlobalLinkAlive(g, minLink)

	minFirst := t.MinimalNextPort(r.ID, int(p.Dst))
	valFirst := t.MinimalNextPort(r.ID, inter)
	qMin := int64(r.Occupancy(minFirst))
	qVal := int64(r.Occupancy(valFirst))
	hMin := int64(t.MinimalHops(r.ID, int(p.DstRouter)) + 1)
	hVal := int64(t.MinimalHops(r.ID, interR) + t.MinimalHops(interR, int(p.DstRouter)) + 1)

	if saturated || qMin*hMin > qVal*hVal+int64(a.offset) {
		p.Inter = int32(inter)
		p.ToInter = true
		p.GlobalMisroute = true
	}
}
