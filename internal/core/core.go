// Package core implements the paper's primary contribution: contention
// counters as a misrouting trigger (Fuentes et al., IPDPS 2015, §III).
//
// A contention counter estimates the *demand* for an output port — how
// many packets currently at the head of input virtual-channel queues
// would proceed minimally through it — as opposed to the *occupancy* of
// the buffers behind it. The package provides:
//
//   - Counters: the per-output-port counter bank of the Base and Hybrid
//     mechanisms (§III-B, §III-C). A counter is incremented when a packet
//     header reaches the head of an input VC (its minimal output is known
//     then) and decremented when the packet's tail leaves that input
//     queue, even if the packet was actually forwarded through another
//     port. Every VC of every input port contributes concurrently.
//
//   - ECtN: the Explicit Contention Notification state of §III-D. Each
//     router keeps a partial array with one counter per global link of
//     its group, fed by packets entering the group (injection-queue heads
//     and global-input arrivals) and indexed by the global link the
//     packet would minimally leave the group through. Partial arrays are
//     periodically combined (summed) group-wide into the combined array
//     used to trigger misrouting at injection.
//
// The package is deliberately free of router mechanics: the router layer
// calls Inc/Dec at the right micro-architectural instants and the routing
// layer reads the counters to take decisions, which mirrors the paper's
// claim that the counters sit beside, not inside, the critical path.
package core

import (
	"fmt"
	"slices"
)

// Counters is a bank of per-output-port contention counters (§III-B).
// It is owned by a single router and is not safe for concurrent use, as
// each simulated router is stepped by one goroutine at a time.
type Counters struct {
	c []int32
}

// NewCounters returns a bank of `ports` zeroed counters.
func NewCounters(ports int) *Counters {
	return &Counters{c: make([]int32, ports)}
}

// Len returns the number of counters in the bank.
func (k *Counters) Len() int { return len(k.c) }

// Inc registers one more head-of-queue packet whose minimal output is
// port.
func (k *Counters) Inc(port int) { k.c[port]++ }

// Dec unregisters a packet whose tail left its input queue. It panics if
// the counter would go negative: that is always a bookkeeping bug in the
// caller (a Dec without a matching Inc), never a legal simulator state.
func (k *Counters) Dec(port int) {
	k.c[port]--
	if k.c[port] < 0 {
		panic(fmt.Sprintf("core: contention counter for port %d went negative", port))
	}
}

// Get returns the current contention estimate for port.
func (k *Counters) Get(port int) int32 { return k.c[port] }

// Exceeds reports whether the counter for port strictly exceeds th, the
// misrouting-trigger condition of §III-B.
func (k *Counters) Exceeds(port int, th int32) bool { return k.c[port] > th }

// Sum returns the total demand registered across all ports (used by
// tests and saturation diagnostics, cf. §VI-A).
func (k *Counters) Sum() int64 {
	var s int64
	for _, v := range k.c {
		s += int64(v)
	}
	return s
}

// Reset zeroes the bank.
func (k *Counters) Reset() {
	for i := range k.c {
		k.c[i] = 0
	}
}

// Snapshot copies the counter values, for tests and tracing.
func (k *Counters) Snapshot() []int32 {
	return append([]int32(nil), k.c...)
}

// DefaultSatCap is the saturation value of the 4-bit counter fields the
// paper sizes the ECtN broadcast with (§VI-B): transmitted partial values
// saturate at 15, enough to exceed the combined threshold of 10.
const DefaultSatCap = 15

// GroupDirty is a dirty-set over group indices: the periodic ECtN
// combiner visits only the groups marked since its last drain, making
// the exchange cost proportional to the groups with changed demand
// rather than the topology's group count. Mark is O(1) (a flag check);
// membership is deduplicated.
//
// The mark path can be sharded (Shard): each group is assigned to one
// lane, Mark appends to the marking group's lane, and Drain gathers all
// lanes. A caller that partitions groups across worker goroutines and
// guarantees each group is only ever marked from its own lane's worker
// may then Mark concurrently from distinct lanes without locks — the
// in-flags are per-group bytes and the mark lists are per-lane — while
// Drain and Marked remain single-threaded (barrier-side) operations.
// Drain has always visited in ascending group order, so sharding does
// not change the combine semantics.
type GroupDirty struct {
	in     []bool
	lanes  [][]int32
	laneOf []int32 // group -> lane; nil means the single lane 0
	drain  []int32 // Drain's gather buffer, so re-entrant Marks land in lanes
}

// NewGroupDirty returns an empty single-lane dirty-set over `groups`
// groups.
func NewGroupDirty(groups int) *GroupDirty {
	return &GroupDirty{
		in:    make([]bool, groups),
		lanes: [][]int32{make([]int32, 0, groups)},
		drain: make([]int32, 0, groups),
	}
}

// Shard partitions the mark path into `lanes` lanes with laneOf(g)
// naming group g's lane. It must be called before any Mark (the set must
// be empty) and is not safe to call concurrently with use.
func (d *GroupDirty) Shard(lanes int, laneOf func(g int) int) {
	if d.Len() != 0 {
		panic("core: GroupDirty.Shard on a non-empty set")
	}
	if lanes < 1 {
		panic("core: GroupDirty.Shard with no lanes")
	}
	d.lanes = make([][]int32, lanes)
	for l := range d.lanes {
		d.lanes[l] = make([]int32, 0, len(d.in)/lanes+1)
	}
	d.laneOf = make([]int32, len(d.in))
	for g := range d.in {
		l := laneOf(g)
		if l < 0 || l >= lanes {
			panic(fmt.Sprintf("core: GroupDirty.Shard lane %d for group %d out of [0,%d)", l, g, lanes))
		}
		d.laneOf[g] = int32(l)
	}
}

// Mark adds group g to the set (no-op if already present). Concurrent
// Marks are permitted only from distinct lanes of a sharded set, each
// lane's marks issued by a single goroutine.
func (d *GroupDirty) Mark(g int32) {
	if !d.in[g] {
		d.in[g] = true
		lane := int32(0)
		if d.laneOf != nil {
			lane = d.laneOf[g]
		}
		d.lanes[lane] = append(d.lanes[lane], g)
	}
}

// Marked reports whether group g is currently in the set.
func (d *GroupDirty) Marked(g int32) bool { return d.in[g] }

// Len returns the number of marked groups.
func (d *GroupDirty) Len() int {
	n := 0
	for _, lane := range d.lanes {
		n += len(lane)
	}
	return n
}

// Drain visits every marked group in ascending order and empties the
// set. A visit callback may Mark groups (including the one being
// visited): the set is gathered and cleared before visiting, so such
// marks land in the next drain rather than being lost. The retained
// buffers make a steady-state drain allocation-free.
func (d *GroupDirty) Drain(visit func(g int32)) {
	d.drain = d.drain[:0]
	for l, lane := range d.lanes {
		d.drain = append(d.drain, lane...)
		d.lanes[l] = lane[:0]
	}
	slices.Sort(d.drain)
	for _, g := range d.drain {
		d.in[g] = false
	}
	for _, g := range d.drain {
		visit(g)
	}
}

// ECtN holds one router's Explicit Contention Notification state (§III-D):
// a partial array updated locally and a combined array refreshed by the
// periodic group-wide exchange. Indices are group-wide global-link
// indices in [0, links).
type ECtN struct {
	partial  []int32
	combined []int32
	// SatCap models the finite width of the broadcast counter fields:
	// each router's contribution to a combined counter saturates at
	// SatCap. Zero disables saturation (infinite-width counters).
	SatCap int32

	// dirty/group, when bound, make every partial mutation mark this
	// router's group in the combiner's dirty-set, so untouched groups
	// can skip their periodic combine.
	dirty *GroupDirty
	group int32
}

// BindDirty wires this router's partial mutations to a group dirty-set:
// every IncPartial/DecPartial marks `group` in d.
func (e *ECtN) BindDirty(d *GroupDirty, group int) {
	e.dirty = d
	e.group = int32(group)
}

// NewECtN returns zeroed ECtN state for a group with `links` global links
// (a*h in a canonical Dragonfly), using the 4-bit saturation cap of the
// paper.
func NewECtN(links int) *ECtN {
	return &ECtN{
		partial:  make([]int32, links),
		combined: make([]int32, links),
		SatCap:   DefaultSatCap,
	}
}

// Links returns the number of global links tracked.
func (e *ECtN) Links() int { return len(e.partial) }

// IncPartial registers a packet that entered this router wanting to leave
// the group through global link l.
func (e *ECtN) IncPartial(l int) {
	e.partial[l]++
	if e.dirty != nil {
		e.dirty.Mark(e.group)
	}
}

// DecPartial unregisters such a packet once it left the input queue. It
// panics on underflow, which is always a caller bookkeeping bug.
func (e *ECtN) DecPartial(l int) {
	e.partial[l]--
	if e.partial[l] < 0 {
		panic(fmt.Sprintf("core: ECtN partial counter for link %d went negative", l))
	}
	if e.dirty != nil {
		e.dirty.Mark(e.group)
	}
}

// Partial returns this router's own demand estimate for global link l.
func (e *ECtN) Partial(l int) int32 { return e.partial[l] }

// Combined returns the group-wide demand estimate for global link l as of
// the last exchange.
func (e *ECtN) Combined(l int) int32 { return e.combined[l] }

// CombinedExceeds reports whether the combined counter for link l strictly
// exceeds th, the ECtN injection-misrouting trigger.
func (e *ECtN) CombinedExceeds(l int, th int32) bool { return e.combined[l] > th }

// contribution returns the partial value as transmitted on the wire,
// honoring the saturation cap.
func (e *ECtN) contribution(l int) int32 {
	v := e.partial[l]
	if e.SatCap > 0 && v > e.SatCap {
		return e.SatCap
	}
	return v
}

// CombineGroup models the periodic exchange of partial arrays within one
// group (§III-D): every router's combined array becomes the sum of all
// routers' (saturated) partial arrays at this instant. The paper's
// simulations, like ours, model the exchange as instantaneous and free;
// its cost is analyzed analytically in §VI-B.
//
// All members must track the same number of links.
func CombineGroup(members []*ECtN) {
	if len(members) == 0 {
		return
	}
	CombineGroupInto(make([]int32, members[0].Links()), members)
}

// CombineGroupInto is CombineGroup with a caller-provided scratch slice
// for the sum (len(scratch) must equal the members' link count), so a
// periodic combiner can run allocation-free.
func CombineGroupInto(scratch []int32, members []*ECtN) {
	if len(members) == 0 {
		return
	}
	links := members[0].Links()
	if len(scratch) != links {
		panic("core: CombineGroupInto scratch length mismatch")
	}
	for l := range scratch {
		scratch[l] = 0
	}
	for _, m := range members {
		if m.Links() != links {
			panic("core: CombineGroup with mismatched link counts")
		}
		for l := 0; l < links; l++ {
			scratch[l] += m.contribution(l)
		}
	}
	for _, m := range members {
		copy(m.combined, scratch)
	}
}

// VerifyGroupCombined audits a group's combined arrays: all members must
// agree element-wise, and — when requireFresh is true — the stored
// combined must equal a fresh recombination of the current partials. A
// dirty-group combiner passes requireFresh for groups it considers clean
// (no partial changed since the last combine implies the stored sums are
// still exact); a mismatch there means a missed dirty mark.
func VerifyGroupCombined(members []*ECtN, requireFresh bool) error {
	if len(members) == 0 {
		return nil
	}
	links := members[0].Links()
	for l := 0; l < links; l++ {
		ref := members[0].combined[l]
		var sum int32
		for i, m := range members {
			if m.combined[l] != ref {
				return fmt.Errorf("core: combined[%d] disagrees: member 0 has %d, member %d has %d", l, ref, i, m.combined[l])
			}
			sum += m.contribution(l)
		}
		if requireFresh && sum != ref {
			return fmt.Errorf("core: combined[%d] = %d stale: fresh partial sum is %d", l, ref, sum)
		}
	}
	return nil
}

// Reset zeroes both arrays.
func (e *ECtN) Reset() {
	for i := range e.partial {
		e.partial[i] = 0
		e.combined[i] = 0
	}
}
