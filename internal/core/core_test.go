package core

import (
	"testing"
	"testing/quick"
)

func TestCountersIncDecGet(t *testing.T) {
	k := NewCounters(4)
	if k.Len() != 4 {
		t.Fatalf("len %d", k.Len())
	}
	k.Inc(2)
	k.Inc(2)
	k.Inc(0)
	if k.Get(2) != 2 || k.Get(0) != 1 || k.Get(1) != 0 {
		t.Fatalf("snapshot %v", k.Snapshot())
	}
	k.Dec(2)
	if k.Get(2) != 1 {
		t.Fatalf("after dec: %d", k.Get(2))
	}
	if k.Sum() != 2 {
		t.Fatalf("sum %d", k.Sum())
	}
}

func TestCountersUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dec below zero did not panic")
		}
	}()
	NewCounters(2).Dec(0)
}

func TestCountersExceeds(t *testing.T) {
	k := NewCounters(1)
	for i := 0; i < 6; i++ {
		k.Inc(0)
	}
	if k.Exceeds(0, 6) {
		t.Fatal("6 > 6 reported true; trigger must be strict")
	}
	k.Inc(0)
	if !k.Exceeds(0, 6) {
		t.Fatal("7 > 6 reported false")
	}
}

func TestCountersReset(t *testing.T) {
	k := NewCounters(3)
	k.Inc(1)
	k.Reset()
	if k.Sum() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	k := NewCounters(2)
	s := k.Snapshot()
	s[0] = 99
	if k.Get(0) != 0 {
		t.Fatal("snapshot aliases internal state")
	}
}

// TestQuickCountersMatchCensus drives a random Inc/Dec-balanced workload
// and checks the bank always equals an independently maintained census.
func TestQuickCountersMatchCensus(t *testing.T) {
	f := func(ops []uint8) bool {
		const ports = 5
		k := NewCounters(ports)
		census := make([]int32, ports)
		for _, op := range ops {
			port := int(op) % ports
			if op&0x80 != 0 && census[port] > 0 {
				k.Dec(port)
				census[port]--
			} else {
				k.Inc(port)
				census[port]++
			}
		}
		for p := 0; p < ports; p++ {
			if k.Get(p) != census[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECtNPartial(t *testing.T) {
	e := NewECtN(8)
	if e.Links() != 8 {
		t.Fatalf("links %d", e.Links())
	}
	e.IncPartial(3)
	e.IncPartial(3)
	e.DecPartial(3)
	if e.Partial(3) != 1 {
		t.Fatalf("partial %d", e.Partial(3))
	}
	if e.Combined(3) != 0 {
		t.Fatal("combined changed without exchange")
	}
}

func TestECtNUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DecPartial below zero did not panic")
		}
	}()
	NewECtN(2).DecPartial(1)
}

func TestCombineGroupSums(t *testing.T) {
	a, b, c := NewECtN(4), NewECtN(4), NewECtN(4)
	a.IncPartial(0)
	b.IncPartial(0)
	b.IncPartial(2)
	c.IncPartial(2)
	CombineGroup([]*ECtN{a, b, c})
	for _, m := range []*ECtN{a, b, c} {
		if m.Combined(0) != 2 || m.Combined(2) != 2 || m.Combined(1) != 0 {
			t.Fatalf("combined wrong: %d %d %d", m.Combined(0), m.Combined(1), m.Combined(2))
		}
	}
	// A second exchange after decrements refreshes, not accumulates.
	b.DecPartial(0)
	CombineGroup([]*ECtN{a, b, c})
	if a.Combined(0) != 1 {
		t.Fatalf("combined after refresh: %d", a.Combined(0))
	}
}

func TestCombineGroupSaturation(t *testing.T) {
	a, b := NewECtN(1), NewECtN(1)
	for i := 0; i < 100; i++ {
		a.IncPartial(0)
	}
	b.IncPartial(0)
	CombineGroup([]*ECtN{a, b})
	// a contributes at most the 4-bit cap of 15, b contributes 1.
	if a.Combined(0) != DefaultSatCap+1 {
		t.Fatalf("combined %d, want %d", a.Combined(0), DefaultSatCap+1)
	}
	// With the cap disabled the full value flows through.
	a.SatCap, b.SatCap = 0, 0
	CombineGroup([]*ECtN{a, b})
	if a.Combined(0) != 101 {
		t.Fatalf("uncapped combined %d, want 101", a.Combined(0))
	}
}

func TestCombinedExceeds(t *testing.T) {
	e := NewECtN(1)
	for i := 0; i < 10; i++ {
		e.IncPartial(0)
	}
	CombineGroup([]*ECtN{e})
	if e.CombinedExceeds(0, 10) {
		t.Fatal("10 > 10 reported true; trigger must be strict")
	}
	e.IncPartial(0)
	CombineGroup([]*ECtN{e})
	if !e.CombinedExceeds(0, 10) {
		t.Fatal("11 > 10 reported false")
	}
}

func TestCombineGroupEmptyAndMismatch(t *testing.T) {
	CombineGroup(nil) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched link counts did not panic")
		}
	}()
	CombineGroup([]*ECtN{NewECtN(2), NewECtN(3)})
}

func TestECtNReset(t *testing.T) {
	e := NewECtN(2)
	e.IncPartial(0)
	CombineGroup([]*ECtN{e})
	e.Reset()
	if e.Partial(0) != 0 || e.Combined(0) != 0 {
		t.Fatal("reset incomplete")
	}
}

// TestQuickCombineGroupConservation: without saturation, the sum of any
// router's combined array equals the total partial sum across the group.
func TestQuickCombineGroupConservation(t *testing.T) {
	f := func(incs []uint8) bool {
		const links, routers = 6, 3
		members := make([]*ECtN, routers)
		for i := range members {
			members[i] = NewECtN(links)
			members[i].SatCap = 0
		}
		var total int64
		for i, v := range incs {
			members[i%routers].IncPartial(int(v) % links)
			total++
		}
		CombineGroup(members)
		var combinedSum int64
		for l := 0; l < links; l++ {
			combinedSum += int64(members[0].Combined(l))
		}
		return combinedSum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupDirtyMarkDrain(t *testing.T) {
	d := NewGroupDirty(5)
	if d.Len() != 0 {
		t.Fatalf("new set has %d members", d.Len())
	}
	d.Mark(3)
	d.Mark(1)
	d.Mark(3) // deduplicated
	if d.Len() != 2 || !d.Marked(3) || !d.Marked(1) || d.Marked(0) {
		t.Fatalf("membership wrong: len=%d", d.Len())
	}
	var got []int32
	d.Drain(func(g int32) { got = append(got, g) })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("drain order %v, want [1 3]", got)
	}
	if d.Len() != 0 || d.Marked(1) || d.Marked(3) {
		t.Fatal("drain did not empty the set")
	}
	// The set is reusable after a drain.
	d.Mark(4)
	if d.Len() != 1 || !d.Marked(4) {
		t.Fatal("set unusable after drain")
	}
}

// TestGroupDirtyReentrantMark: a Mark from inside a Drain visit must
// survive into the next drain, not be silently dropped.
func TestGroupDirtyReentrantMark(t *testing.T) {
	d := NewGroupDirty(4)
	d.Mark(0)
	d.Mark(2)
	var first []int32
	d.Drain(func(g int32) {
		first = append(first, g)
		if g == 0 {
			d.Mark(2) // re-mark a group later in this same drain
			d.Mark(3) // mark a fresh group
		}
	})
	if len(first) != 2 || first[0] != 0 || first[1] != 2 {
		t.Fatalf("first drain visited %v, want [0 2]", first)
	}
	if !d.Marked(2) || !d.Marked(3) || d.Len() != 2 {
		t.Fatalf("re-entrant marks lost: len=%d", d.Len())
	}
	var second []int32
	d.Drain(func(g int32) { second = append(second, g) })
	if len(second) != 2 || second[0] != 2 || second[1] != 3 {
		t.Fatalf("second drain visited %v, want [2 3]", second)
	}
}

// TestGroupDirtySharded: a sharded set must behave exactly like the
// single-lane set — ascending deduplicated drains, re-entrant marks kept
// — while routing each group's marks through its own lane (which is what
// lets shard workers mark concurrently without locks), including under
// concurrent per-lane marking with the race detector watching.
func TestGroupDirtySharded(t *testing.T) {
	d := NewGroupDirty(8)
	d.Shard(2, func(g int) int { return g / 4 }) // groups 0-3 lane 0, 4-7 lane 1
	d.Mark(5)
	d.Mark(1)
	d.Mark(5) // deduplicated
	d.Mark(0)
	if d.Len() != 3 || !d.Marked(5) || !d.Marked(1) || !d.Marked(0) {
		t.Fatalf("membership wrong: len=%d", d.Len())
	}
	var got []int32
	d.Drain(func(g int32) {
		got = append(got, g)
		if g == 0 {
			d.Mark(7) // re-entrant mark lands in the next drain
		}
	})
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 5 {
		t.Fatalf("drain order %v, want [0 1 5]", got)
	}
	if d.Len() != 1 || !d.Marked(7) {
		t.Fatal("re-entrant mark lost")
	}
	d.Drain(func(int32) {})

	// Concurrent marking from distinct lanes is the sharded contract.
	done := make(chan struct{}, 2)
	for lane := 0; lane < 2; lane++ {
		go func(lane int) {
			for i := 0; i < 4; i++ {
				d.Mark(int32(lane*4 + i))
			}
			done <- struct{}{}
		}(lane)
	}
	<-done
	<-done
	got = got[:0]
	d.Drain(func(g int32) { got = append(got, g) })
	if len(got) != 8 {
		t.Fatalf("concurrent marks: drained %v, want all 8 groups", got)
	}
	for i, g := range got {
		if g != int32(i) {
			t.Fatalf("concurrent marks: drained %v, want ascending 0..7", got)
		}
	}
}

func TestGroupDirtyShardRejectsBadLane(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range lane not rejected")
		}
	}()
	NewGroupDirty(4).Shard(2, func(g int) int { return 5 })
}

func TestECtNBindDirtyMarksOnMutation(t *testing.T) {
	d := NewGroupDirty(3)
	e := NewECtN(4)
	e.BindDirty(d, 2)
	e.IncPartial(1)
	if !d.Marked(2) || d.Len() != 1 {
		t.Fatal("IncPartial did not mark the bound group")
	}
	d.Drain(func(int32) {})
	e.DecPartial(1)
	if !d.Marked(2) {
		t.Fatal("DecPartial did not mark the bound group")
	}
	// Unbound state mutates without touching any set.
	NewECtN(2).IncPartial(0)
}

func TestCombineGroupIntoMatchesCombineGroup(t *testing.T) {
	mk := func() []*ECtN {
		a, b := NewECtN(3), NewECtN(3)
		a.IncPartial(0)
		a.IncPartial(2)
		b.IncPartial(2)
		return []*ECtN{a, b}
	}
	ref, got := mk(), mk()
	CombineGroup(ref)
	CombineGroupInto(make([]int32, 3), got)
	for l := 0; l < 3; l++ {
		if ref[0].Combined(l) != got[0].Combined(l) {
			t.Fatalf("link %d: CombineGroup %d vs CombineGroupInto %d", l, ref[0].Combined(l), got[0].Combined(l))
		}
	}
	// Dirty scratch must not leak into the sums.
	scratch := []int32{77, 77, 77}
	again := mk()
	CombineGroupInto(scratch, again)
	if again[0].Combined(1) != 0 {
		t.Fatalf("stale scratch leaked: combined[1]=%d", again[0].Combined(1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scratch length mismatch did not panic")
		}
	}()
	CombineGroupInto(make([]int32, 2), mk())
}

func TestVerifyGroupCombined(t *testing.T) {
	a, b := NewECtN(2), NewECtN(2)
	a.IncPartial(0)
	CombineGroup([]*ECtN{a, b})
	if err := VerifyGroupCombined([]*ECtN{a, b}, true); err != nil {
		t.Fatalf("fresh combine flagged: %v", err)
	}
	// A partial mutation after the combine makes the stored sums stale:
	// requireFresh must catch it, the agreement-only check must not.
	b.IncPartial(0)
	if err := VerifyGroupCombined([]*ECtN{a, b}, true); err == nil {
		t.Fatal("stale combined not flagged with requireFresh")
	}
	if err := VerifyGroupCombined([]*ECtN{a, b}, false); err != nil {
		t.Fatalf("agreement check flagged agreeing members: %v", err)
	}
	// Member disagreement is always an error.
	a.IncPartial(1)
	CombineGroup([]*ECtN{a})
	if err := VerifyGroupCombined([]*ECtN{a, b}, false); err == nil {
		t.Fatal("disagreeing members not flagged")
	}
	if err := VerifyGroupCombined(nil, true); err != nil {
		t.Fatalf("empty group flagged: %v", err)
	}
}

func BenchmarkCountersIncDec(b *testing.B) {
	k := NewCounters(31)
	for i := 0; i < b.N; i++ {
		k.Inc(i % 31)
		k.Dec(i % 31)
	}
}

func BenchmarkCombineGroup(b *testing.B) {
	members := make([]*ECtN, 16)
	for i := range members {
		members[i] = NewECtN(128)
		for l := 0; l < 128; l += 3 {
			members[i].IncPartial(l)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CombineGroup(members)
	}
}
