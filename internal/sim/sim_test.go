package sim

import (
	"math"
	"testing"

	"cbar/internal/routing"
	"cbar/internal/stats"
	"cbar/internal/topology"
)

func tinyCfg(a routing.Algo) Config { return NewConfig(Tiny.Params(), a) }

func TestScaleParams(t *testing.T) {
	if p := Paper.Params(); p != (topology.Params{P: 8, A: 16, H: 8}) {
		t.Fatalf("paper params %+v", p)
	}
	if p := Tiny.Params(); p.P < 2 {
		t.Fatalf("tiny params %+v", p)
	}
	for _, s := range []Scale{Tiny, Small, Paper} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScale(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScale("galactic"); err == nil {
		t.Fatal("bad scale accepted")
	}
	if Scale(9).String() == "" {
		t.Fatal("unknown scale empty string")
	}
}

// TestScaledOptionsPaperIsTableI: at the paper's scale the scaling must
// reproduce Table I exactly.
func TestScaledOptionsPaperIsTableI(t *testing.T) {
	o := ScaledOptions(Paper.Params())
	if o.BaseTh != 6 || o.HybridTh != 7 || o.CombinedTh != 10 {
		t.Fatalf("paper-scale thresholds %d/%d/%d, want 6/7/10", o.BaseTh, o.HybridTh, o.CombinedTh)
	}
}

func TestScaledOptionsSmallRouters(t *testing.T) {
	o := ScaledOptions(Tiny.Params())
	if o.BaseTh < 2 || o.BaseTh > 6 {
		t.Fatalf("tiny BaseTh %d out of range", o.BaseTh)
	}
	if o.HybridTh != o.BaseTh+1 {
		t.Fatalf("HybridTh %d != BaseTh+1", o.HybridTh)
	}
	if o.CombinedTh < 3 {
		t.Fatalf("CombinedTh %d", o.CombinedTh)
	}
}

func TestNormalizedVCs(t *testing.T) {
	for _, a := range routing.All() {
		c := tinyCfg(a).normalized()
		if c.Router.VCsLocal < routing.RequiredLocalVCs(a) {
			t.Fatalf("%v: local VCs %d < required %d", a, c.Router.VCsLocal, routing.RequiredLocalVCs(a))
		}
	}
}

func TestWorkloadNamesAndPatterns(t *testing.T) {
	tp := topology.MustNew(Tiny.Params())
	for _, w := range []Workload{UN(), ADV(1), ADV(2), MixUN(0.5, 1)} {
		if w.Name() == "" {
			t.Fatal("empty workload name")
		}
		if _, err := w.Pattern(tp); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
	}
	if _, err := (Workload{Kind: WorkloadKind(9)}).Pattern(tp); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := ADV(0).Pattern(tp); err == nil {
		t.Fatal("ADV+0 accepted")
	}
}

func TestRunSteadyValidation(t *testing.T) {
	if _, err := RunSteady(tinyCfg(routing.Min), UN(), 0.1, -1, 100, 1); err == nil {
		t.Fatal("negative warmup accepted")
	}
	if _, err := RunSteady(tinyCfg(routing.Min), UN(), 0.1, 10, 0, 1); err == nil {
		t.Fatal("zero measure accepted")
	}
	if _, err := RunSteady(tinyCfg(routing.Min), UN(), 1.7, 10, 10, 1); err == nil {
		t.Fatal("load > 1 accepted")
	}
}

func TestRunSteadyBasics(t *testing.T) {
	t.Parallel()
	r, err := RunSteady(tinyCfg(routing.Min), UN(), 0.2, 800, 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Accepted throughput cannot exceed offered load (plus a little
	// drain of warmup backlog).
	if r.Accepted > 0.25 {
		t.Fatalf("accepted %.3f > offered 0.2", r.Accepted)
	}
	if r.Accepted < 0.15 {
		t.Fatalf("accepted %.3f far below offered 0.2", r.Accepted)
	}
	// Minimum possible latency: 13 cycles (same-router delivery).
	if r.AvgLatency < 13 {
		t.Fatalf("latency %.1f below physical minimum", r.AvgLatency)
	}
	if r.P50 <= 0 || r.P99 < r.P50 {
		t.Fatalf("percentiles p50=%d p99=%d", r.P50, r.P99)
	}
	if r.AvgHops < 1 || r.AvgHops > 4 {
		t.Fatalf("avg hops %.2f", r.AvgHops)
	}
	if r.Algo != "MIN" || r.Workload != "UN" || r.Seeds != 1 {
		t.Fatalf("metadata %+v", r)
	}
}

func TestRunSteadyDeterministicAndSeedsAveraged(t *testing.T) {
	t.Parallel()
	a, err := RunSteady(tinyCfg(routing.Base), UN(), 0.2, 500, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunSteady(tinyCfg(routing.Base), UN(), 0.2, 500, 500, 1)
	if a.AvgLatency != b.AvgLatency || a.Delivered != b.Delivered {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
	m, err := RunSteady(tinyCfg(routing.Base), UN(), 0.2, 500, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seeds != 3 {
		t.Fatalf("seeds %d", m.Seeds)
	}
	if m.Delivered <= a.Delivered {
		t.Fatal("multi-seed did not accumulate deliveries")
	}
	if math.Abs(m.AvgLatency-a.AvgLatency) > 0.25*a.AvgLatency {
		t.Fatalf("seed average %.1f far from single seed %.1f", m.AvgLatency, a.AvgLatency)
	}
}

// TestFig5aShape_UniformLatency is the paper's headline low-load claim
// (Fig. 5a): Base and ECtN match MIN's optimal latency under uniform
// traffic, while the congestion-based adaptives (OLM, PB) pay a
// misrouting penalty above it.
func TestFig5aShape_UniformLatency(t *testing.T) {
	t.Parallel()
	const load, warm, meas = 0.2, 1000, 1000
	lat := map[routing.Algo]float64{}
	for _, a := range []routing.Algo{routing.Min, routing.Base, routing.ECtN, routing.OLM, routing.PB} {
		r, err := RunSteady(tinyCfg(a), UN(), load, warm, meas, 2)
		if err != nil {
			t.Fatal(err)
		}
		lat[a] = r.AvgLatency
	}
	min := lat[routing.Min]
	if lat[routing.Base] > 1.03*min {
		t.Errorf("Base latency %.1f not matching MIN %.1f", lat[routing.Base], min)
	}
	if lat[routing.ECtN] > 1.03*min {
		t.Errorf("ECtN latency %.1f not matching MIN %.1f", lat[routing.ECtN], min)
	}
	if lat[routing.OLM] < 0.99*min {
		t.Errorf("OLM latency %.1f below MIN %.1f: suspicious", lat[routing.OLM], min)
	}
}

// TestFig5bShape_AdversarialThroughput is the paper's headline
// adversarial claim (Fig. 5b): under ADV+1 beyond MIN's capacity, the
// contention mechanisms reach VAL-like throughput while MIN saturates at
// the single-global-link bound.
func TestFig5bShape_AdversarialThroughput(t *testing.T) {
	t.Parallel()
	const load, warm, meas = 0.4, 1500, 1000
	acc := map[routing.Algo]float64{}
	for _, a := range []routing.Algo{routing.Min, routing.Valiant, routing.Base, routing.ECtN, routing.Hybrid} {
		r, err := RunSteady(tinyCfg(a), ADV(1), load, warm, meas, 2)
		if err != nil {
			t.Fatal(err)
		}
		acc[a] = r.Accepted
	}
	// MIN bound: 1 global link shared by a*p=16 nodes -> 1/16 = 0.0625.
	if acc[routing.Min] > 0.12 {
		t.Errorf("MIN accepted %.3f, expected saturation near 0.0625", acc[routing.Min])
	}
	for _, a := range []routing.Algo{routing.Base, routing.ECtN, routing.Hybrid} {
		if acc[a] < 2.5*acc[routing.Min] {
			t.Errorf("%v accepted %.3f, not clearly above MIN %.3f", a, acc[a], acc[routing.Min])
		}
		if acc[a] < 0.6*acc[routing.Valiant] {
			t.Errorf("%v accepted %.3f far below VAL %.3f", a, acc[a], acc[routing.Valiant])
		}
	}
}

// TestFig7Shape_TransientAdaptation: after a UN->ADV+1 switch, the
// contention mechanisms adapt within tens of cycles while the
// credit-based OLM needs far longer (Fig. 7): in the immediate
// post-switch window Base must already be misrouting most traffic.
//
// The paper runs this at 20% load on the 16512-node system, where each
// router sees 1.6 phits/cycle of injection pressure; the tiny test
// network needs 35% load to sit in the same fast-trigger regime (§V-A's
// "low load zone" discussion explains the dependence).
func TestFig7Shape_TransientAdaptation(t *testing.T) {
	t.Parallel()
	const load = 0.35
	run := func(a routing.Algo) TransientResult {
		r, err := RunTransient(tinyCfg(a), UN(), ADV(1), load, 1200, 100, 600, 20, 2)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(routing.Base)
	olm := run(routing.OLM)

	window := func(r TransientResult, lo, hi int64) (misMean float64, n int) {
		var s float64
		for i, tm := range r.Times {
			if tm >= lo && tm < hi {
				s += r.MisroutedPct[i]
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return s / float64(n), n
	}
	// Pre-switch: nobody misroutes much under UN.
	preBase, n1 := window(base, -100, 0)
	if n1 == 0 || preBase > 20 {
		t.Errorf("Base pre-switch misrouting %.0f%% (n=%d)", preBase, n1)
	}
	// The minimal inter-group path takes ~160 cycles on this topology,
	// so packets injected right after the switch deliver from t~170;
	// in the window 250-450 Base is expected to be misrouting nearly
	// everything (the paper's Fig. 7b reaches ~100%).
	postBase, n2 := window(base, 250, 450)
	if n2 == 0 || postBase < 75 {
		t.Errorf("Base post-switch misrouting only %.0f%% (n=%d)", postBase, n2)
	}
	// OLM's credit-based trigger must be visibly slower in the same
	// window (Fig. 7 contrast).
	postOLM, _ := window(olm, 250, 450)
	if postOLM > postBase-10 {
		t.Errorf("OLM misrouting %.0f%% not clearly slower than Base %.0f%%", postOLM, postBase)
	}
}

// TestFig9Shape_ECtNFlatAfterConvergence: after convergence on the new
// pattern, ECtN's latency trace is flat (contention is independent of
// the routing decision), unlike PB whose ECN feedback loop oscillates.
func TestFig9Shape_ECtNFlatAfterConvergence(t *testing.T) {
	t.Parallel()
	const load = 0.2
	run := func(a routing.Algo) TransientResult {
		r, err := RunTransient(tinyCfg(a), UN(), ADV(1), load, 1200, 0, 1600, 50, 2)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ectn := run(routing.ECtN)
	pb := run(routing.PB)
	variance := func(r TransientResult, from int64) float64 {
		var w stats.Welford
		for i, tm := range r.Times {
			if tm >= from {
				w.Add(r.Latency[i])
			}
		}
		return w.Std()
	}
	se, sp := variance(ectn, 600), variance(pb, 600)
	if se > sp*1.5 {
		t.Errorf("ECtN post-convergence latency std %.1f exceeds PB %.1f by >50%%", se, sp)
	}
}

// TestMeanSaturatedContention checks the §VI-A estimate: under saturated
// uniform traffic the mean per-port contention counter approaches the
// mean VC count per port (2.78 for the tiny router).
func TestMeanSaturatedContention(t *testing.T) {
	t.Parallel()
	c := tinyCfg(routing.Base)
	got, err := MeanSaturatedContention(c, 0.95, 1500, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Router.MeanVCsPerPort() // 25 VCs / 9 ports = 2.78
	if got < 0.5*want || got > 1.3*want {
		t.Fatalf("saturated counter mean %.2f outside [%.2f, %.2f] around VI-A estimate %.2f",
			got, 0.5*want, 1.3*want, want)
	}
}

func TestRunTransientValidation(t *testing.T) {
	c := tinyCfg(routing.Base)
	if _, err := RunTransient(c, UN(), ADV(1), 0.2, 50, 100, 600, 10, 1); err == nil {
		t.Fatal("warmup < pre accepted")
	}
	if _, err := RunTransient(c, UN(), ADV(1), 0.2, 500, 100, 5, 10, 1); err == nil {
		t.Fatal("post < bucket accepted")
	}
}

func TestRunTransientTimesRelative(t *testing.T) {
	t.Parallel()
	r, err := RunTransient(tinyCfg(routing.Min), UN(), ADV(1), 0.1, 600, 100, 200, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Times) == 0 {
		t.Fatal("empty trace")
	}
	for i, tm := range r.Times {
		if tm < -100 || tm >= 200 {
			t.Fatalf("time %d outside window", tm)
		}
		if i > 0 && tm <= r.Times[i-1] {
			t.Fatal("times not increasing")
		}
	}
	if len(r.Latency) != len(r.Times) || len(r.MisroutedPct) != len(r.Times) {
		t.Fatal("series lengths differ")
	}
}

func TestForEachTaskErrorPropagates(t *testing.T) {
	err := forEachTask(8, func(i int) error {
		if i == 3 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("got %v", err)
	}
}

var errTest = &simTestError{}

type simTestError struct{}

func (*simTestError) Error() string { return "boom" }

// TestUtilizationUnderADV: ADV+1 saturates global links while local
// links stay lightly loaded under MIN (every group funnels into one
// global link, so mean global utilization is bounded by 1 link's worth),
// and utilizations are sane fractions.
func TestUtilizationUnderADV(t *testing.T) {
	t.Parallel()
	r, err := RunSteady(tinyCfg(routing.Min), ADV(1), 0.4, 800, 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.UtilGlobal <= 0 || r.UtilGlobal > 1 || r.UtilLocal < 0 || r.UtilLocal > 1 {
		t.Fatalf("utilizations out of range: local %.3f global %.3f", r.UtilLocal, r.UtilGlobal)
	}
	// Under MIN/ADV+1 exactly one of the 8 outgoing global links per
	// group carries traffic at ~100%: mean global utilization ~1/8.
	if r.UtilGlobal < 0.08 || r.UtilGlobal > 0.20 {
		t.Fatalf("global utilization %.3f, want ~0.125", r.UtilGlobal)
	}
}

// TestUtilizationScalesWithLoad: uniform-traffic utilization tracks the
// offered load.
func TestUtilizationScalesWithLoad(t *testing.T) {
	t.Parallel()
	lo, err := RunSteady(tinyCfg(routing.Min), UN(), 0.1, 600, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunSteady(tinyCfg(routing.Min), UN(), 0.3, 600, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hi.UtilGlobal < 2*lo.UtilGlobal {
		t.Fatalf("global utilization did not scale: %.3f -> %.3f", lo.UtilGlobal, hi.UtilGlobal)
	}
	if hi.UtilLocal < 2*lo.UtilLocal {
		t.Fatalf("local utilization did not scale: %.3f -> %.3f", lo.UtilLocal, hi.UtilLocal)
	}
}
