package sim

import (
	"bytes"
	"strings"
	"testing"

	"cbar/internal/routing"
	"cbar/internal/topology"
)

func TestDefaultBudgets(t *testing.T) {
	for _, s := range []Scale{Tiny, Small, Paper} {
		b := DefaultBudget(s)
		if b.Warmup <= 0 || b.Measure <= 0 || b.Seeds <= 0 {
			t.Fatalf("%v: bad steady budget %+v", s, b)
		}
		if b.TransientWarmup <= 0 || b.Post <= 0 || b.PostLong < b.Post || b.Bucket <= 0 {
			t.Fatalf("%v: bad transient budget %+v", s, b)
		}
		if len(b.Loads) == 0 {
			t.Fatalf("%v: empty load grid", s)
		}
		for i := 1; i < len(b.Loads); i++ {
			if b.Loads[i] <= b.Loads[i-1] {
				t.Fatalf("%v: loads not increasing", s)
			}
		}
	}
	// The paper budget must match §IV-B: 15000 measured cycles, 10
	// repeats.
	p := DefaultBudget(Paper)
	if p.Measure != 15000 || p.Seeds != 10 {
		t.Fatalf("paper budget %+v", p)
	}
}

func TestTransientAndMixLoads(t *testing.T) {
	if transientLoad(Paper) != 0.2 || mixLoad(Paper) != 0.35 {
		t.Fatal("paper-scale loads must match the paper (0.2 / 0.35)")
	}
	if transientLoad(Small) != 0.2 || mixLoad(Small) != 0.35 {
		t.Fatal("small scale keeps the paper loads (balanced topology)")
	}
	if transientLoad(Tiny) <= 0.2 {
		t.Fatal("tiny scale must raise the transient load (pressure regime)")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
	}
	// Every figure of the paper's evaluation must be present.
	for _, want := range []string{"fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "via"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Fatal("FindExperiment found garbage")
	}
}

func TestFig10ThresholdGrids(t *testing.T) {
	un, adv := fig10Thresholds(Paper)
	// Paper: UN sweeps 3..7, ADV sweeps 6..12 around the default of 6.
	if len(un) != 5 || un[0] != 3 || un[len(un)-1] != 7 {
		t.Fatalf("paper UN thresholds %v", un)
	}
	if len(adv) != 7 || adv[0] != 6 || adv[len(adv)-1] != 12 {
		t.Fatalf("paper ADV thresholds %v", adv)
	}
	un, _ = fig10Thresholds(Tiny)
	for _, th := range un {
		if th < 1 {
			t.Fatalf("tiny UN thresholds include %d < 1", th)
		}
	}
}

// TestRunFigVIAOutput is an end-to-end smoke test of the cheapest
// experiment through the registry.
func TestRunFigVIAOutput(t *testing.T) {
	t.Parallel()
	e, ok := FindExperiment("via")
	if !ok {
		t.Fatal("missing via")
	}
	b := DefaultBudget(Tiny)
	b.Seeds = 1
	b.Warmup, b.Measure = 600, 400
	var buf bytes.Buffer
	if err := e.Run(Tiny, b, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean_saturated_counter") {
		t.Fatalf("unexpected output: %s", buf.String())
	}
}

// TestSweepSteadyShape runs a minimal grid through the shared sweep
// helper and checks the result map covers every point.
func TestSweepSteadyShape(t *testing.T) {
	t.Parallel()
	b := Budget{Warmup: 300, Measure: 300, Seeds: 2}
	algos := []routing.Algo{routing.Min, routing.Base}
	loads := []float64{0.1, 0.2}
	res, err := sweepSteady(Tiny, algos, UN(), loads, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d points, want 4", len(res))
	}
	for _, a := range algos {
		for _, l := range loads {
			r, ok := res[sweepKey{a, l}]
			if !ok || r.Seeds != 2 {
				t.Fatalf("missing or unmerged point %v/%v: %+v", a, l, r)
			}
		}
	}
}

// TestSweepSteadyMutate checks config mutation hooks reach the runs.
func TestSweepSteadyMutate(t *testing.T) {
	t.Parallel()
	b := Budget{Warmup: 200, Measure: 200, Seeds: 1}
	called := false
	_, err := sweepSteady(Tiny, []routing.Algo{routing.Min}, UN(), []float64{0.1}, b,
		func(c *Config) {
			called = true
			if c.Router.Topo != (topology.Params{P: 4, A: 4, H: 2}) {
				t.Error("unexpected topology in mutate")
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("mutate not called")
	}
}
