package sim

import (
	"math"
	"strings"
	"testing"

	"cbar/internal/routing"
	"cbar/internal/stats"
	"cbar/internal/topology"
)

// TestNewWorkloadNamesAndPatterns resolves every workload-engine family
// against the tiny topology.
func TestNewWorkloadNamesAndPatterns(t *testing.T) {
	tp := topology.MustNew(Tiny.Params())
	for _, w := range []Workload{
		HotspotUN(0.2, 8),
		ShiftPerm(5),
		ComplementPerm(),
		TornadoPerm(),
		UN().WithBurst(50, 200, 0),
		UN().WithBurst(50, 200, 0.8),
		ADV(1).WithSkew(0.1, 0.5),
		HotspotUN(0.2, 8).WithBurst(30, 90, 0),
	} {
		if w.Name() == "" {
			t.Fatal("empty workload name")
		}
		if _, err := w.Pattern(tp); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
	}
	if !strings.Contains(UN().WithBurst(50, 200, 0).Name(), "burst") {
		t.Fatal("burst suffix missing from name")
	}
	if !strings.Contains(UN().WithSkew(0.1, 0.5).Name(), "skew") {
		t.Fatal("skew suffix missing from name")
	}
	// Degenerate parameters surface as construction errors.
	if _, err := HotspotUN(2, 8).Pattern(tp); err == nil {
		t.Fatal("hotspot frac 2 accepted")
	}
	if _, err := ShiftPerm(0).Pattern(tp); err == nil {
		t.Fatal("shift 0 accepted")
	}
}

// TestRunSteadyNewWorkloads runs each new workload end to end at tiny
// scale: traffic must flow and accepted throughput track the offered
// load (all are admissible at 10% on the tiny system except tornado,
// which funnels whole groups onto single global links under MIN-like
// loads — it only needs to deliver).
func TestRunSteadyNewWorkloads(t *testing.T) {
	t.Parallel()
	for _, w := range []Workload{
		HotspotUN(0.2, 8),
		ShiftPerm(5),
		TornadoPerm(),
		UN().WithBurst(20, 60, 0),
		UN().WithSkew(0.1, 0.5),
	} {
		r, err := RunSteady(tinyCfg(routing.Base), w, 0.1, 600, 600, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if r.Delivered == 0 {
			t.Fatalf("%s: nothing delivered", w.Name())
		}
		if w.Kind != Tornado && math.Abs(r.Accepted-0.1) > 0.03 {
			t.Errorf("%s: accepted %.3f, offered 0.1", w.Name(), r.Accepted)
		}
		if r.Workload != w.Name() {
			t.Errorf("result workload %q != %q", r.Workload, w.Name())
		}
	}
}

// TestBurstyInjectionIsBursty: at equal aggregate load, the on-off
// arrival process must produce a visibly heavier latency tail than
// steady Bernoulli injection on the same system (queues build during
// bursts), while the delivered volume stays comparable.
func TestBurstyInjectionIsBursty(t *testing.T) {
	t.Parallel()
	const load = 0.3
	steady, err := RunSteady(tinyCfg(routing.Base), UN(), load, 800, 1500, 1)
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := RunSteady(tinyCfg(routing.Base), UN().WithBurst(40, 120, 0), load, 800, 1500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if float64(bursty.Delivered) < 0.7*float64(steady.Delivered) {
		t.Fatalf("bursty delivered %d far below steady %d", bursty.Delivered, steady.Delivered)
	}
	if bursty.P99 <= steady.P99 {
		t.Errorf("bursty P99 %d not above steady P99 %d: bursts not visible in the tail",
			bursty.P99, steady.P99)
	}
}

// TestSweepSteadyMatchesRunSteady: a sweep point must be identical to
// the standalone run at the same load (same seeds, same reduction).
func TestSweepSteadyMatchesRunSteady(t *testing.T) {
	t.Parallel()
	c := tinyCfg(routing.Base)
	loads := []float64{0.1, 0.3}
	sw, err := SweepSteady(c, UN(), loads, 400, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw) != 2 || sw[0].Load != 0.1 || sw[1].Load != 0.3 {
		t.Fatalf("sweep shape wrong: %+v", sw)
	}
	for i, l := range loads {
		single, err := RunSteady(c, UN(), l, 400, 400, 2)
		if err != nil {
			t.Fatal(err)
		}
		if sw[i] != single {
			t.Errorf("load %.1f: sweep %+v != single %+v", l, sw[i], single)
		}
	}
}

// TestSweepSteadyValidation mirrors RunSteady's window validation.
func TestSweepSteadyValidation(t *testing.T) {
	c := tinyCfg(routing.Min)
	if _, err := SweepSteady(c, UN(), nil, 100, 100, 1); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := SweepSteady(c, UN(), []float64{0.1}, -1, 100, 1); err == nil {
		t.Fatal("negative warmup accepted")
	}
	if _, err := SweepSteady(c, UN(), []float64{0.1}, 100, 0, 1); err == nil {
		t.Fatal("zero measure accepted")
	}
}

// TestReduceSteadyExactPercentiles: reduction must take percentiles
// from the merged distribution, not average per-seed percentiles. Two
// synthetic seeds with disjoint latency clusters make the difference
// unmistakable: averaging per-seed P99s would land between the
// clusters, the merged P99 inside the upper one.
func TestReduceSteadyExactPercentiles(t *testing.T) {
	h1 := stats.NewHistogram(1024)
	h2 := stats.NewHistogram(1024)
	for i := 0; i < 1000; i++ {
		h1.Add(10) // seed 1: all fast
		h2.Add(500)
	}
	rs := []SteadyResult{{Seeds: 1}, {Seeds: 1}}
	out := reduceSteady(rs, []*stats.Histogram{h1, h2})
	if out.P99 != 500 {
		t.Fatalf("merged P99 = %d, want 500 (averaging would give 255)", out.P99)
	}
	if out.P50 != 10 {
		t.Fatalf("merged P50 = %d, want 10", out.P50)
	}
	if out.AvgLatency != 255 {
		t.Fatalf("merged mean %.1f, want 255", out.AvgLatency)
	}
	if out.Seeds != 2 {
		t.Fatalf("seeds %d", out.Seeds)
	}
}

// TestReduceSteadyOverflowFrac: overflowed samples surface as a
// fraction on the reduced result, and the saturated percentile pins to
// the histogram cap.
func TestReduceSteadyOverflowFrac(t *testing.T) {
	h1 := stats.NewHistogram(100)
	h2 := stats.NewHistogram(100)
	for i := 0; i < 90; i++ {
		h1.Add(10)
		h2.Add(10)
	}
	for i := 0; i < 10; i++ {
		h1.Add(5000) // 10% of seed 1 beyond the cap
		h2.Add(10)
	}
	out := reduceSteady([]SteadyResult{{}, {}}, []*stats.Histogram{h1, h2})
	if math.Abs(out.OverflowFrac-0.05) > 1e-9 {
		t.Fatalf("OverflowFrac %.4f, want 0.05", out.OverflowFrac)
	}
	if out.P99 != 100 {
		t.Fatalf("saturated P99 = %d, want the cap 100", out.P99)
	}
}

// TestTransientBurstySmoke: the transient harness accepts a bursty
// pre-switch workload (the arrival process rides through the pattern
// switch).
func TestTransientBurstySmoke(t *testing.T) {
	t.Parallel()
	r, err := RunTransient(tinyCfg(routing.Base), UN().WithBurst(30, 90, 0), ADV(1), 0.25, 800, 100, 300, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Times) == 0 {
		t.Fatal("empty trace")
	}
}

// TestTransientRejectsAfterSourceMismatch: a post-switch workload
// carrying its own arrival-process spec would be silently ignored (the
// pre-switch process drives the whole run), so it must be rejected.
func TestTransientRejectsAfterSourceMismatch(t *testing.T) {
	c := tinyCfg(routing.Base)
	if _, err := RunTransient(c, UN(), ADV(1).WithBurst(50, 200, 0), 0.2, 600, 100, 200, 20, 1); err == nil {
		t.Fatal("after-workload source spec silently dropped")
	}
	// Matching specs on both sides are fine.
	if _, err := RunTransient(c, UN().WithBurst(50, 200, 0), ADV(1).WithBurst(50, 200, 0), 0.2, 600, 100, 200, 20, 1); err != nil {
		t.Fatal(err)
	}
}

// TestSkewWeights pins the weight construction: the skewed set carries
// its share and the weights stay mean-1.
func TestSkewWeights(t *testing.T) {
	w, err := skewWeights(0.1, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	var sum, hotSum float64
	hot := 0
	for _, v := range w {
		sum += v
		if v > 1 {
			hot++
			hotSum += v
		}
	}
	if hot != 10 {
		t.Fatalf("%d hot nodes, want 10", hot)
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("weights sum %.3f, want 100 (mean 1)", sum)
	}
	if math.Abs(hotSum-50) > 1e-9 {
		t.Fatalf("hot share %.3f, want 50%%", hotSum)
	}
	for _, bad := range [][2]float64{{0, 0.5}, {1, 0.5}, {0.5, -0.1}, {0.5, 1.1}} {
		if _, err := skewWeights(bad[0], bad[1], 100); err == nil {
			t.Errorf("skewWeights(%v) accepted", bad)
		}
	}
}
