package sim

import (
	"fmt"
	"testing"

	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/traffic"
)

// algStateRun drives one network through a UN→ADV+1 transient — the
// Figure 7 scenario, where congestion state flips network-wide — in the
// requested fabric step mode and with the requested algorithm-state
// implementation (reference full recompute vs event-driven), recording
// the per-packet latency histogram plus counter checkpoints and checking
// invariants (which include the StateChecker audits) every 500 cycles.
func algStateRun(t *testing.T, algo routing.Algo, switchAt, cycles int64, load float64, fullScan, refScan bool) (map[int64]uint64, []uint64, *router.Network) {
	t.Helper()
	c := NewConfig(Small.Params(), algo)
	c.Opts.ReferenceScan = refScan
	net, err := BuildNetwork(c, 4242)
	if err != nil {
		t.Fatal(err)
	}
	net.FullScan = fullScan
	patUN, err := UN().Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	patADV, err := ADV(1).Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := traffic.NewSchedule(
		traffic.Phase{FromCycle: 0, Pattern: patUN},
		traffic.Phase{FromCycle: switchAt, Pattern: patADV},
	)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(net, sched, load, 909)
	if err != nil {
		t.Fatal(err)
	}
	hist := make(map[int64]uint64)
	net.OnDeliver = func(p *router.Packet, now int64) {
		hist[now-p.GenTime]++
	}
	var checkpoints []uint64
	for cyc := int64(0); cyc < cycles; cyc++ {
		inj.Cycle()
		net.Step()
		if (cyc+1)%500 == 0 {
			if err := net.CheckInvariants(); err != nil {
				t.Fatalf("fullScan=%v refScan=%v cycle %d: %v", fullScan, refScan, cyc, err)
			}
			checkpoints = append(checkpoints, net.NumGenerated, net.NumDelivered, uint64(net.InFlight))
		}
	}
	return hist, checkpoints, net
}

// TestAlgStateEquivalenceTransient pins the event-driven algorithm state
// to the retained full recompute across a UN→ADV+1 traffic switch: PB's
// watcher-maintained saturation flags against the per-cycle polled scan,
// and ECtN's dirty-group combines against combine-every-group — each
// under both the active-set and the full-scan fabric loops. The traffic
// switch drives occupancies through both threshold directions and
// shifts demand between groups, so stale flags or missed dirty marks
// would change routing decisions and diverge the delivery trace.
func TestAlgStateEquivalenceTransient(t *testing.T) {
	const (
		switchAt = 1200
		cycles   = 2500
		load     = 0.28
	)
	for _, algo := range []routing.Algo{routing.PB, routing.ECtN} {
		for _, fullScan := range []bool{false, true} {
			name := fmt.Sprintf("%s-activeset", algo)
			if fullScan {
				name = fmt.Sprintf("%s-fullscan", algo)
			}
			t.Run(name, func(t *testing.T) {
				refHist, refCk, nRef := algStateRun(t, algo, switchAt, cycles, load, fullScan, true)
				evtHist, evtCk, nEvt := algStateRun(t, algo, switchAt, cycles, load, fullScan, false)

				if nRef.NumGenerated != nEvt.NumGenerated || nRef.NumBlocked != nEvt.NumBlocked {
					t.Fatalf("generation diverged: reference %d/%d vs event-driven %d/%d",
						nRef.NumGenerated, nRef.NumBlocked, nEvt.NumGenerated, nEvt.NumBlocked)
				}
				if nRef.NumDelivered != nEvt.NumDelivered || nRef.DeliveredPhits != nEvt.DeliveredPhits {
					t.Fatalf("delivery diverged: reference %d (%d phits) vs event-driven %d (%d phits)",
						nRef.NumDelivered, nRef.DeliveredPhits, nEvt.NumDelivered, nEvt.DeliveredPhits)
				}
				if nRef.NumDelivered == 0 {
					t.Fatal("no traffic delivered")
				}
				for i := range refCk {
					if refCk[i] != evtCk[i] {
						t.Fatalf("checkpoint %d diverged: reference %d vs event-driven %d (checkpoints are [gen, delivered, inflight] per 500 cycles)",
							i, refCk[i], evtCk[i])
					}
				}
				if len(refHist) != len(evtHist) {
					t.Fatalf("latency histograms differ in support: %d vs %d bins", len(refHist), len(evtHist))
				}
				//lint:ordered per-bin histogram equality; order cannot affect outcomes
				for lat, cnt := range refHist {
					if evtHist[lat] != cnt {
						t.Fatalf("latency %d: reference count %d vs event-driven %d", lat, cnt, evtHist[lat])
					}
				}
			})
		}
	}
}
