package sim

import (
	"testing"

	"cbar/internal/rng"
	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/traffic"
)

func mustStepBench(b *testing.B, s Scale, algo routing.Algo, load float64, fullScan, refScan bool) (*router.Network, *traffic.Injector) {
	b.Helper()
	net, inj, err := NewStepBench(s, algo, load, fullScan, refScan)
	if err != nil {
		b.Fatal(err)
	}
	return net, inj
}

// benchStep measures the per-cycle cost of a whole-network step at a
// given scale and load, the simulator's fundamental unit of work, from
// a warmed steady state (see NewStepBench).
func benchStep(b *testing.B, s Scale, algo routing.Algo, load float64) {
	benchStepMode(b, s, algo, load, false, false)
}

func benchStepMode(b *testing.B, s Scale, algo routing.Algo, load float64, fullScan, refScan bool) {
	b.Helper()
	net, inj := mustStepBench(b, s, algo, load, fullScan, refScan)
	gen0 := net.NumGenerated
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Cycle()
		net.Step()
	}
	// Guard against silently measuring an idle network: over any
	// long measured run new traffic must have been generated (short
	// probe runs at low load can legitimately generate nothing).
	if b.N > 1000 && net.NumGenerated == gen0 {
		b.Fatal("no traffic generated during measurement")
	}
}

func BenchmarkStepTinyBase(b *testing.B)  { benchStep(b, Tiny, routing.Base, 0.3) }
func BenchmarkStepSmallBase(b *testing.B) { benchStep(b, Small, routing.Base, 0.3) }
func BenchmarkStepSmallMin(b *testing.B)  { benchStep(b, Small, routing.Min, 0.3) }
func BenchmarkStepSmallECtN(b *testing.B) { benchStep(b, Small, routing.ECtN, 0.3) }
func BenchmarkStepSmallIdle(b *testing.B) { benchStep(b, Small, routing.Base, 0.01) }

// BenchmarkStepPaperIdle is the regime the active-set scheduler exists
// for: the full Table I system (2064 routers, 16512 nodes) at 1% load,
// where nearly every component is idle on any given cycle.
func BenchmarkStepPaperIdle(b *testing.B) { benchStep(b, Paper, routing.Base, 0.01) }

// The ElideIdle benchmarks measure quiet-cycle elision, the O(events)
// idle stepper: one op advances ElideIdleSpan cycles of a deep-idle
// network through sim.Advance, which jumps the clock between events
// instead of stepping every cycle. Divide ns/op by ElideIdleSpan to
// compare against the per-cycle Idle entries — the acceptance bar of
// the elision change is >= 10x their cycles/sec.
func benchElideIdle(b *testing.B, s Scale, algo routing.Algo, load float64) {
	b.Helper()
	net, inj := mustStepBench(b, s, algo, load, false, false)
	if err := ElideIdleWarm(net, inj); err != nil {
		b.Fatal(err)
	}
	gen0 := net.NumGenerated
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Advance(net, inj, ElideIdleSpan)
	}
	if b.N > 100 && net.NumGenerated == gen0 {
		b.Fatal("no traffic generated during measurement")
	}
}

func BenchmarkStepSmallElideIdle(b *testing.B) { benchElideIdle(b, Small, routing.Base, ElideIdleLoad) }
func BenchmarkStepPaperElideIdle(b *testing.B) { benchElideIdle(b, Paper, routing.Base, ElideIdleLoad) }

// BenchmarkStepSmallFullScanIdle pins the cost of the original
// every-component loop at the same operating point as StepSmallIdle, so
// the active-set win is visible within one benchmark run.
func BenchmarkStepSmallFullScanIdle(b *testing.B) {
	benchStepMode(b, Small, routing.Base, 0.01, true, false)
}

// The PB and ECtN step benchmarks measure the event-driven algorithm
// layer: with watcher-maintained saturation flags and dirty-group
// combines, an idle PB/ECtN cycle must cost about the same as an idle
// Base cycle — no residual O(network) BeginCycle term. The *RefScanIdle
// variants pin the retained full-recompute reference (the seed
// implementation) at the same operating point, so the win is visible
// within one benchmark run.
func BenchmarkStepSmallPB(b *testing.B)       { benchStep(b, Small, routing.PB, 0.3) }
func BenchmarkStepSmallPBIdle(b *testing.B)   { benchStep(b, Small, routing.PB, 0.01) }
func BenchmarkStepSmallECtNIdle(b *testing.B) { benchStep(b, Small, routing.ECtN, 0.01) }
func BenchmarkStepSmallPBRefScanIdle(b *testing.B) {
	benchStepMode(b, Small, routing.PB, 0.01, false, true)
}
func BenchmarkStepSmallECtNRefScanIdle(b *testing.B) {
	benchStepMode(b, Small, routing.ECtN, 0.01, false, true)
}

// BenchmarkStepPaperPBIdle is the acceptance regime of the event-driven
// algorithm layer: the full Table I system at 1% load under PB, which
// previously paid a 16512-port saturation recompute every cycle.
func BenchmarkStepPaperPBIdle(b *testing.B)   { benchStep(b, Paper, routing.PB, 0.01) }
func BenchmarkStepPaperECtNIdle(b *testing.B) { benchStep(b, Paper, routing.ECtN, 0.01) }

// The bursty/hotspot idle benchmarks pin the stateful calendar
// injector's per-cycle cost beside the Bernoulli skip-sampler at the
// same operating points: the calendar only touches nodes that inject
// this cycle, so an idle bursty cycle must cost about the same as an
// idle Bernoulli cycle — no O(nodes) per-cycle term, at Paper scale in
// particular (16512 mostly-silent sources).
func benchStepWorkload(b *testing.B, s Scale, algo routing.Algo, w Workload, load float64) {
	b.Helper()
	net, inj, err := NewStepBenchWorkload(s, algo, w, load, false, false)
	if err != nil {
		b.Fatal(err)
	}
	gen0 := net.NumGenerated
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Cycle()
		net.Step()
	}
	if b.N > 1000 && net.NumGenerated == gen0 {
		b.Fatal("no traffic generated during measurement")
	}
}

func BenchmarkStepSmallBurstyIdle(b *testing.B) {
	benchStepWorkload(b, Small, routing.Base, UN().WithBurst(50, 150, 0), 0.01)
}

func BenchmarkStepSmallHotspotIdle(b *testing.B) {
	benchStepWorkload(b, Small, routing.Base, HotspotUN(0.2, 8), 0.01)
}

func BenchmarkStepPaperBurstyIdle(b *testing.B) {
	benchStepWorkload(b, Paper, routing.Base, UN().WithBurst(50, 150, 0), 0.01)
}

// The worker benchmarks measure the shard-parallel stepper against the
// sequential stepper at a loaded operating point (30% uniform load, the
// acceptance regime of the parallel-stepper change): both run the exact
// same cycles — the stepper is bit-identical at every worker count — so
// the ratio is pure parallel speedup minus barrier cost. The Workers1
// variants pin the same operating point on the sequential path so the
// comparison lives inside one benchmark run.
func benchStepWorkers(b *testing.B, s Scale, load float64, workers int) {
	b.Helper()
	net, inj, err := NewStepBenchWorkers(s, routing.Base, UN(), load, false, false, workers)
	if err != nil {
		b.Fatal(err)
	}
	gen0 := net.NumGenerated
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Cycle()
		net.Step()
	}
	if b.N > 1000 && net.NumGenerated == gen0 {
		b.Fatal("no traffic generated during measurement")
	}
}

func BenchmarkStepSmallWorkers1(b *testing.B) { benchStepWorkers(b, Small, 0.3, 1) }
func BenchmarkStepSmallWorkers4(b *testing.B) { benchStepWorkers(b, Small, 0.3, 4) }
func BenchmarkStepPaperWorkers1(b *testing.B) { benchStepWorkers(b, Paper, 0.3, 1) }
func BenchmarkStepPaperWorkers4(b *testing.B) { benchStepWorkers(b, Paper, 0.3, 4) }

// BenchmarkStepSmallBurstDrain measures the burst-then-drain regime: a
// synchronized burst enters the NIC queues, then the network is stepped
// until it fully drains. Most of those cycles have only a dwindling tail
// of active components, which a full scan pays topology cost for.
func BenchmarkStepSmallBurstDrain(b *testing.B) {
	c := NewConfig(Small.Params(), routing.Base)
	net, err := BuildNetwork(c, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(3, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := BurstDrainStep(net, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildNetworkSmall(b *testing.B) {
	c := NewConfig(Small.Params(), routing.Base)
	for i := 0; i < b.N; i++ {
		if _, err := BuildNetwork(c, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
