package sim

import (
	"testing"

	"cbar/internal/routing"
	"cbar/internal/traffic"
)

// benchStep measures the per-cycle cost of a whole-network step at a
// given scale and load, the simulator's fundamental unit of work.
func benchStep(b *testing.B, s Scale, algo routing.Algo, load float64) {
	b.Helper()
	c := NewConfig(s.Params(), algo)
	net, err := BuildNetwork(c, 1)
	if err != nil {
		b.Fatal(err)
	}
	pat, err := UN().Pattern(net.Topo)
	if err != nil {
		b.Fatal(err)
	}
	inj, err := traffic.NewInjector(net, traffic.Constant(pat), load, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Cycle()
		net.Step()
	}
	if net.NumGenerated == 0 {
		b.Fatal("no traffic generated")
	}
}

func BenchmarkStepTinyBase(b *testing.B)  { benchStep(b, Tiny, routing.Base, 0.3) }
func BenchmarkStepSmallBase(b *testing.B) { benchStep(b, Small, routing.Base, 0.3) }
func BenchmarkStepSmallMin(b *testing.B)  { benchStep(b, Small, routing.Min, 0.3) }
func BenchmarkStepSmallECtN(b *testing.B) { benchStep(b, Small, routing.ECtN, 0.3) }
func BenchmarkStepSmallIdle(b *testing.B) { benchStep(b, Small, routing.Base, 0.01) }

func BenchmarkBuildNetworkSmall(b *testing.B) {
	c := NewConfig(Small.Params(), routing.Base)
	for i := 0; i < b.N; i++ {
		if _, err := BuildNetwork(c, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
