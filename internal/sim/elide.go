package sim

import (
	"cbar/internal/router"
	"cbar/internal/traffic"
)

// Quiet-cycle elision for the (injector, network) pair: the network
// knows the next cycle anything scheduled can happen
// (router.Network.ElideHorizon) and the injector knows its next arrival
// (traffic.Injector.NextArrival); the clock may jump to the earlier of
// the two. Both queries are exact — elided spans are bit-identical to
// stepping them — so every cycle loop in this package elides freely,
// capping jumps only at its own bookkeeping boundaries (measurement
// buckets, warmup ends) so per-bucket series are synthesized exactly as
// the stepping path would have produced them.

// elisionOff pins every loop in this package to plain stepping. Only
// the equivalence tests flip it (to prove elided runs bit-identical to
// stepped ones); production code never sets it.
var elisionOff bool

// elideStep tries to jump the pair over a quiet span, at most to the
// absolute cycle `target`; it reports whether the clock advanced. When
// it returns false the caller must run one normal inj.Cycle + net.Step.
func elideStep(net *router.Network, inj *traffic.Injector, target int64) bool {
	if elisionOff {
		return false
	}
	j, ok := net.ElideHorizon(target)
	if !ok {
		return false
	}
	if a := inj.NextArrival(j - 1); a < j {
		j = a
	}
	if j <= net.Now() {
		return false
	}
	net.ElideTo(j)
	return true
}

// Advance runs the pair for `cycles` cycles — the canonical
// inj.Cycle(); net.Step() loop with quiet spans elided. Benchmarks and
// tests drive deep-idle regimes through it; the measurement loops
// inline the same pattern with their own bucket caps.
func Advance(net *router.Network, inj *traffic.Injector, cycles int64) {
	end := net.Now() + cycles
	for net.Now() < end {
		if elideStep(net, inj, end) {
			continue
		}
		inj.Cycle()
		net.Step()
	}
}
