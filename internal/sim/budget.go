package sim

import (
	"context"
	"fmt"

	"cbar/internal/router"
)

// Budget sizes an experiment run: simulation windows, repeats and the
// offered-load grid. The paper's evaluation (Table I scale) uses long
// windows and 10 repeats; scaled-down runs use proportionally smaller
// budgets so the full figure set regenerates in minutes on a laptop.
//
// With Adaptive set, the fixed steady-state windows become bounds of a
// statistically driven run instead: Warmup caps an MSER-detected warmup
// truncation, and measurement proceeds in bucket-sized chunks until the
// batch-means 95% confidence interval on mean latency and throughput is
// within CIRelWidth of the mean (or MaxMeasure cycles are spent, or the
// saturation detector short-circuits the point). Adaptive == false is
// the default and reproduces the fixed-window results bit-identically.
type Budget struct {
	// Steady-state windows (cycles) and repeats.
	Warmup, Measure int64
	Seeds           int
	// Transient windows: warmup before the switch, trace extent before
	// (Pre) and after (Post / PostLong for the oscillation figures)
	// the switch, and the averaging bucket width, all in cycles.
	TransientWarmup int64
	Pre, Post       int64
	PostLong        int64
	Bucket          int64
	// Loads is the offered-load grid of the steady-state sweeps.
	Loads []float64
	// Workers is the per-run shard worker count threaded into every
	// simulation of the experiment (router.Config.Workers). 0 lets each
	// entry point split GOMAXPROCS between its grid and intra-run
	// sharding automatically; results are identical either way.
	Workers int
	// Congestion is threaded into every simulation of the experiment
	// (router.Config.Congestion). The zero value leaves congestion
	// management off, reproducing pre-congestion results bit-identically.
	Congestion router.CongestionConfig
	// Faults is threaded into every simulation of the experiment
	// (router.Config.Faults). The zero value leaves fault injection off,
	// reproducing pre-fault results bit-identically.
	Faults router.FaultConfig
	// Ctx, when non-nil, cancels a running experiment cooperatively: the
	// cycle loops check it every measurement bucket and the task pools
	// between tasks, so a cancelled sweep stops mid-run instead of
	// finishing its current point. Nil means never cancelled.
	Ctx context.Context

	// Adaptive switches steady-state measurement from the fixed
	// Warmup+Measure windows to the adaptive engine (MSER warmup
	// truncation, batch-means CI stopping rule, saturation
	// short-circuit). Transient experiments always use fixed windows.
	Adaptive bool
	// CIRelWidth is the adaptive target: stop once the relative 95%
	// CI half-width of both mean latency and throughput drops below it.
	// 0 defaults to 0.05.
	CIRelWidth float64
	// MaxMeasure caps the adaptive measurement phase per seed, in
	// cycles. 0 defaults to 4x Measure.
	MaxMeasure int64
}

// DefaultBudget returns a budget tuned to the scale: the paper's windows
// at Paper scale, laptop-friendly ones below it.
func DefaultBudget(s Scale) Budget {
	switch s {
	case Tiny:
		return Budget{
			Warmup: 1200, Measure: 1200, Seeds: 3,
			TransientWarmup: 1200, Pre: 100, Post: 600, PostLong: 1600, Bucket: 20,
			Loads: []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		}
	case Small:
		return Budget{
			Warmup: 2500, Measure: 2500, Seeds: 3,
			TransientWarmup: 2000, Pre: 100, Post: 800, PostLong: 1600, Bucket: 20,
			Loads: []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		}
	default: // Paper: §IV-B windows (warmup + 15k measured cycles, 10 repeats)
		return Budget{
			Warmup: 15000, Measure: 15000, Seeds: 10,
			TransientWarmup: 10000, Pre: 100, Post: 800, PostLong: 1600, Bucket: 10,
			Loads: []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		}
	}
}

// steadyDefaults fills the zero-valued adaptive knobs from their
// documented defaults. Fixed-window budgets pass through unchanged.
// A positive MaxMeasure below the stopping rule's minimum series
// length is raised to it — a cap the CI check can never run under
// would exit with a zero half-width that reads as perfect convergence.
func (b Budget) steadyDefaults() Budget {
	if b.Adaptive {
		if b.CIRelWidth == 0 {
			b.CIRelWidth = 0.05
		}
		if b.MaxMeasure == 0 {
			b.MaxMeasure = 4 * b.Measure
		}
		if floor := int64(adaptiveMinMeasureBuckets * adaptiveBucket); b.MaxMeasure > 0 && b.MaxMeasure < floor {
			b.MaxMeasure = floor
		}
	}
	return b
}

// validateSteady rejects steady-state windows that would silently
// produce empty or skewed measurements: negative warmup, an empty
// measurement window, a non-positive repeat count, and (adaptive mode)
// a relative-CI target outside (0,1) or an empty cycle cap.
func (b Budget) validateSteady() error {
	if b.Warmup < 0 {
		return fmt.Errorf("sim: warmup %d must be >= 0", b.Warmup)
	}
	if b.Measure < 1 {
		return fmt.Errorf("sim: measurement window %d must be >= 1 cycle", b.Measure)
	}
	if b.Seeds < 1 {
		return fmt.Errorf("sim: seeds %d must be >= 1", b.Seeds)
	}
	if b.Adaptive {
		if b.CIRelWidth <= 0 || b.CIRelWidth >= 1 {
			return fmt.Errorf("sim: adaptive CI relative width %v must be in (0,1)", b.CIRelWidth)
		}
		if b.MaxMeasure < 1 {
			return fmt.Errorf("sim: adaptive measurement cap %d must be >= 1 cycle", b.MaxMeasure)
		}
	}
	return nil
}

// validateTransient rejects transient windows that would silently
// produce empty or skewed traces: a bucket wider than the post-switch
// trace, a warmup shorter than the pre-switch trace (the trace would
// start before cycle 0), a non-positive bucket width or repeat count,
// and a negative pre-switch extent.
func (b Budget) validateTransient() error {
	if b.Seeds < 1 {
		return fmt.Errorf("sim: seeds %d must be >= 1", b.Seeds)
	}
	if b.Bucket < 1 {
		return fmt.Errorf("sim: trace bucket width %d must be >= 1 cycle", b.Bucket)
	}
	if b.Pre < 0 {
		return fmt.Errorf("sim: pre-switch trace extent %d must be >= 0", b.Pre)
	}
	if b.Post < b.Bucket {
		return fmt.Errorf("sim: bucket width %d exceeds post-switch trace extent %d", b.Bucket, b.Post)
	}
	if b.TransientWarmup < b.Pre {
		return fmt.Errorf("sim: transient warmup %d is shorter than the pre-switch trace extent %d", b.TransientWarmup, b.Pre)
	}
	if b.PostLong != 0 && b.PostLong < b.Bucket {
		return fmt.Errorf("sim: bucket width %d exceeds long post-switch trace extent %d", b.Bucket, b.PostLong)
	}
	return nil
}
