package sim

import (
	"testing"

	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/traffic"
)

// equivRun drives one network for `cycles` cycles with the given
// workload at `load`, in the requested step mode, recording a per-packet
// latency histogram and checking invariants plus counter checkpoints
// every 1k cycles.
func equivRun(t *testing.T, c Config, w Workload, load float64, cycles int64, fullScan bool) (map[int64]uint64, []uint64, *router.Network) {
	t.Helper()
	net, err := BuildNetwork(c, 12345)
	if err != nil {
		t.Fatal(err)
	}
	net.FullScan = fullScan
	pat, err := w.Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(net, traffic.Constant(pat), load, 777)
	if err != nil {
		t.Fatal(err)
	}
	hist := make(map[int64]uint64)
	net.OnDeliver = func(p *router.Packet, now int64) {
		hist[now-p.GenTime]++
	}
	var checkpoints []uint64
	for cyc := int64(0); cyc < cycles; cyc++ {
		inj.Cycle()
		net.Step()
		if (cyc+1)%1000 == 0 {
			if err := net.CheckInvariants(); err != nil {
				t.Fatalf("fullScan=%v cycle %d: %v", fullScan, cyc, err)
			}
			checkpoints = append(checkpoints, net.NumGenerated, net.NumDelivered, uint64(net.InFlight))
		}
	}
	return hist, checkpoints, net
}

// TestStepEquivalenceAcrossAlgorithms runs the paper's workloads under
// real routing mechanisms in both step modes and requires identical
// results: same generation and blocking counts, same deliveries, the
// same per-packet latency histogram, and matching counter checkpoints at
// every 1k cycles. This is the contract that lets the active-set
// scheduler replace the full scan without revalidating any figure.
func TestStepEquivalenceAcrossAlgorithms(t *testing.T) {
	cases := []struct {
		name   string
		algo   routing.Algo
		w      Workload
		load   float64
		cycles int64
	}{
		{"base-uniform", routing.Base, UN(), 0.25, 2500},
		{"base-adversarial", routing.Base, ADV(1), 0.3, 2500},
		{"ectn-uniform", routing.ECtN, UN(), 0.2, 2000},
		{"olm-adversarial", routing.OLM, ADV(1), 0.25, 2000},
		{"pb-uniform", routing.PB, UN(), 0.25, 1500},
		{"val-uniform", routing.Valiant, UN(), 0.25, 1500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConfig(Small.Params(), tc.algo)
			fullHist, fullCk, nFull := equivRun(t, c, tc.w, tc.load, tc.cycles, true)
			actHist, actCk, nAct := equivRun(t, c, tc.w, tc.load, tc.cycles, false)

			if nFull.NumGenerated != nAct.NumGenerated || nFull.NumBlocked != nAct.NumBlocked {
				t.Fatalf("generation diverged: full %d/%d vs active %d/%d",
					nFull.NumGenerated, nFull.NumBlocked, nAct.NumGenerated, nAct.NumBlocked)
			}
			if nFull.NumDelivered != nAct.NumDelivered || nFull.DeliveredPhits != nAct.DeliveredPhits {
				t.Fatalf("delivery diverged: full %d (%d phits) vs active %d (%d phits)",
					nFull.NumDelivered, nFull.DeliveredPhits, nAct.NumDelivered, nAct.DeliveredPhits)
			}
			if nFull.NumDelivered == 0 {
				t.Fatal("no traffic delivered")
			}
			if len(fullCk) != len(actCk) {
				t.Fatalf("checkpoint counts differ: %d vs %d", len(fullCk), len(actCk))
			}
			for i := range fullCk {
				if fullCk[i] != actCk[i] {
					t.Fatalf("checkpoint %d diverged: full %d vs active %d (checkpoints are [gen, delivered, inflight] per 1k cycles)",
						i, fullCk[i], actCk[i])
				}
			}
			if len(fullHist) != len(actHist) {
				t.Fatalf("latency histograms differ in support: %d vs %d bins", len(fullHist), len(actHist))
			}
			//lint:ordered per-bin histogram equality; order cannot affect outcomes
			for lat, cnt := range fullHist {
				if actHist[lat] != cnt {
					t.Fatalf("latency %d: full count %d vs active %d", lat, cnt, actHist[lat])
				}
			}
		})
	}
}
