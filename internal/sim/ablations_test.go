package sim

import (
	"bytes"
	"strings"
	"testing"
)

func ablationBudget() Budget {
	return Budget{
		Warmup: 400, Measure: 400, Seeds: 1,
		TransientWarmup: 600, Pre: 0, Post: 400, PostLong: 400, Bucket: 25,
	}
}

func TestAblationRegistry(t *testing.T) {
	abls := AblationExperiments()
	if len(abls) != 5 {
		t.Fatalf("%d ablations", len(abls))
	}
	for _, e := range abls {
		if !strings.HasPrefix(e.ID, "abl-") || e.Title == "" || e.Run == nil {
			t.Fatalf("bad ablation %+v", e)
		}
		if _, ok := FindExperiment(e.ID); !ok {
			t.Fatalf("%s not findable", e.ID)
		}
	}
	// Figures list must stay ablation-free.
	for _, e := range Experiments() {
		if strings.HasPrefix(e.ID, "abl-") {
			t.Fatalf("ablation leaked into figure list: %s", e.ID)
		}
	}
}

func TestAblationSpeedupRuns(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := AblationSpeedup(Tiny, ablationBudget(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") < 7 { // header + comment + 6 rows
		t.Fatalf("short output:\n%s", out)
	}
	if !strings.Contains(out, "speedup,load") {
		t.Fatalf("missing header:\n%s", out)
	}
}

func TestAblationLocalVCsRuns(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := AblationLocalVCs(Tiny, ablationBudget(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "local_vcs,load") {
		t.Fatalf("missing header:\n%s", buf.String())
	}
}

func TestAblationThresholdBoundsRuns(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := AblationThresholdBounds(Tiny, ablationBudget(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "threshold,traffic") || !strings.Contains(out, "ADV+1") {
		t.Fatalf("bad output:\n%s", out)
	}
}

func TestAblationECtNPeriodRuns(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := AblationECtNPeriod(Tiny, ablationBudget(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, period := range []string{"25,", "100,", "400,"} {
		if !strings.Contains(out, "\n"+period) {
			t.Fatalf("missing period row %q:\n%s", period, out)
		}
	}
}

func TestWindowMean(t *testing.T) {
	r := TransientResult{
		Times:        []int64{0, 10, 20, 30},
		MisroutedPct: []float64{1, 2, 3, 4},
	}
	if got := windowMean(r, 10, 30, r.MisroutedPct); got != 2.5 {
		t.Fatalf("windowMean = %v", got)
	}
	if got := windowMean(r, 100, 200, r.MisroutedPct); got != 0 {
		t.Fatalf("empty window = %v", got)
	}
}
