package sim

import (
	"fmt"
	"testing"

	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/traffic"
)

// faultPlan is the equivalence-suite schedule: explicit link failures
// while loaded, a whole-router outage (partition: unroutable packets), a
// random cable batch, repairs of both, and source retransmission — every
// clause of the engine inside a 1200-cycle run on the tiny fabric.
func faultPlan() router.FaultConfig {
	return router.FaultConfig{
		Events: []router.FaultEvent{
			{Kind: router.LinkDown, Router: 5, Port: 7, Cycle: 150},
			{Kind: router.LinkDown, Router: 20, Port: 8, Cycle: 200},
			{Kind: router.RouterDown, Router: 12, Cycle: 250},
			{Kind: router.LinkUp, Router: 5, Port: 7, Cycle: 600},
			{Kind: router.RouterUp, Router: 12, Cycle: 800},
		},
		RandomPct: 5, RandomAt: 350, RandomSeed: 9,
		RetryLimit: 2,
	}
}

// faultRun drives one network through the fault plan, recording the
// delivery trace, the drop trace (chained ahead of the retransmitter's
// OnDrop hook), and the invariant sweep after every parallel cycle.
func faultRun(t *testing.T, c Config, w Workload, load float64, cycles int64, workers int) (trace, drops []string, inj *traffic.Injector, net *router.Network) {
	t.Helper()
	c.Router.Workers = workers
	c.Router.Faults = faultPlan()
	net, err := BuildNetwork(c, 2025)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := w.Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	inj, err = w.injector(net, traffic.Constant(pat), load, 31)
	if err != nil {
		t.Fatal(err)
	}
	net.OnDeliver = func(p *router.Packet, now int64) {
		trace = append(trace, fmt.Sprintf("%d #%d %d->%d hops=%d mis=%v/%d gen=%d att=%d",
			now, p.ID, p.Src, p.Dst, p.TotalHops, p.GlobalMisroute, p.LocalMisroutes, p.GenTime, p.Attempt))
	}
	// NewInjector installed the retransmitter's OnDrop (RetryLimit > 0);
	// chain the trace recorder in front of it so the drop order is
	// pinned too.
	retry := net.OnDrop
	net.OnDrop = func(p *router.Packet, now int64) {
		drops = append(drops, fmt.Sprintf("%d #%d %d->%d att=%d", now, p.ID, p.Src, p.Dst, p.Attempt))
		if retry != nil {
			retry(p, now)
		}
	}
	for cyc := int64(0); cyc < cycles; cyc++ {
		inj.Cycle()
		net.Step()
		if workers > 1 {
			if err := net.CheckInvariants(); err != nil {
				t.Fatalf("workers=%d cycle %d: %v", workers, cyc, err)
			}
		}
	}
	return trace, drops, inj, net
}

// TestParallelFaultEquivalence pins the fault engine bit-for-bit across
// worker counts: with links failing and recovering, a router outage, a
// random cable batch and source retransmission all active, the delivery
// trace, the drop trace (OnDrop order), and every fault counter must be
// identical at workers ∈ {2, 3, 4} to the 1-worker run — while the full
// invariant sweep holds after every parallel cycle. This is the
// determinism contract the sequential-point fault application and the
// ID-sorted victim finalization exist for.
func TestParallelFaultEquivalence(t *testing.T) {
	cases := []struct {
		name string
		algo routing.Algo
		w    Workload
		load float64
	}{
		{"base-un", routing.Base, UN(), 0.45},
		{"min-un", routing.Min, UN(), 0.45},
		{"pb-un", routing.PB, UN(), 0.45},
		{"ectn-adv1", routing.ECtN, ADV(1), 0.35},
	}
	const cycles = 1200
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConfig(Tiny.Params(), tc.algo)
			refTrace, refDrops, refInj, refNet := faultRun(t, c, tc.w, tc.load, cycles, 1)
			if refNet.NumDropped == 0 || refNet.NumUnroutable == 0 || refInj.Retried() == 0 {
				t.Fatalf("reference run exercised no faults (dropped=%d unroutable=%d retried=%d); the case proves nothing",
					refNet.NumDropped, refNet.NumUnroutable, refInj.Retried())
			}
			for _, workers := range []int{2, 3, 4} {
				trace, drops, inj, net := faultRun(t, c, tc.w, tc.load, cycles, workers)
				if net.NumDropped != refNet.NumDropped || net.NumUnroutable != refNet.NumUnroutable ||
					inj.Retried() != refInj.Retried() || inj.PendingRetries() != refInj.PendingRetries() {
					t.Fatalf("workers=%d fault counters diverged: dropped %d/%d unroutable %d/%d retried %d/%d pending %d/%d",
						workers, net.NumDropped, refNet.NumDropped, net.NumUnroutable, refNet.NumUnroutable,
						inj.Retried(), refInj.Retried(), inj.PendingRetries(), refInj.PendingRetries())
				}
				if net.NumDelivered != refNet.NumDelivered || net.NumGenerated != refNet.NumGenerated ||
					net.NumBlocked != refNet.NumBlocked {
					t.Fatalf("workers=%d delivery diverged: %d/%d delivered, %d/%d generated, %d/%d blocked",
						workers, net.NumDelivered, refNet.NumDelivered, net.NumGenerated, refNet.NumGenerated,
						net.NumBlocked, refNet.NumBlocked)
				}
				if len(drops) != len(refDrops) {
					t.Fatalf("workers=%d drop trace length %d vs %d", workers, len(drops), len(refDrops))
				}
				for i := range drops {
					if drops[i] != refDrops[i] {
						t.Fatalf("workers=%d drop trace diverged at %d:\n  got  %s\n  want %s",
							workers, i, drops[i], refDrops[i])
					}
				}
				if len(trace) != len(refTrace) {
					t.Fatalf("workers=%d trace length %d vs %d", workers, len(trace), len(refTrace))
				}
				for i := range trace {
					if trace[i] != refTrace[i] {
						t.Fatalf("workers=%d trace diverged at delivery %d:\n  got  %s\n  want %s",
							workers, i, trace[i], refTrace[i])
					}
				}
			}
		})
	}
}

// inertRun drives one network with an optional fault config and returns
// the delivery trace.
func inertRun(t *testing.T, c Config, fc router.FaultConfig) ([]string, *router.Network) {
	t.Helper()
	c.Router.Faults = fc
	net, err := BuildNetwork(c, 2025)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := UN().Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(net, traffic.Constant(pat), 0.4, 31)
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	net.OnDeliver = func(p *router.Packet, now int64) {
		trace = append(trace, fmt.Sprintf("%d #%d %d->%d hops=%d mis=%v/%d gen=%d",
			now, p.ID, p.Src, p.Dst, p.TotalHops, p.GlobalMisroute, p.LocalMisroutes, p.GenTime))
	}
	for cyc := 0; cyc < 800; cyc++ {
		inj.Cycle()
		net.Step()
	}
	return trace, net
}

// TestFaultsOffIsInert pins the off-mode contract at both levels. A
// zero-valued FaultConfig allocates nothing: no engine, no OnDrop hook,
// no counters. And a *scheduled but never-firing* plan is dynamically
// bit-inert: because routing's fault-aware candidate checks preserve the
// RNG draw sequence while every component is live, the delivery trace is
// identical to a build without any plan — which is what keeps the golden
// CSVs byte-for-byte stable and makes a far-future fault plan free until
// it fires.
func TestFaultsOffIsInert(t *testing.T) {
	quiescent := router.FaultConfig{Events: []router.FaultEvent{
		{Kind: router.LinkDown, Router: 0, Port: 7, Cycle: 1 << 40},
	}}
	for _, algo := range []routing.Algo{routing.Valiant, routing.PB, routing.Base} {
		t.Run(algo.String(), func(t *testing.T) {
			c := NewConfig(Tiny.Params(), algo)
			plain, plainNet := inertRun(t, c, router.FaultConfig{})
			if plainNet.FaultsActive() {
				t.Fatal("zero FaultConfig allocated a fault engine")
			}
			if plainNet.OnDrop != nil {
				t.Fatal("zero FaultConfig installed an OnDrop hook")
			}
			armed, armedNet := inertRun(t, c, quiescent)
			if !armedNet.FaultsActive() {
				t.Fatal("scheduled plan did not arm the fault engine")
			}
			if armedNet.NumDropped != 0 || armedNet.NumUnroutable != 0 {
				t.Fatalf("never-firing plan produced activity: dropped=%d unroutable=%d",
					armedNet.NumDropped, armedNet.NumUnroutable)
			}
			if len(armed) != len(plain) {
				t.Fatalf("armed trace length %d vs plain %d", len(armed), len(plain))
			}
			for i := range armed {
				if armed[i] != plain[i] {
					t.Fatalf("armed plan diverged from plain at delivery %d:\n  got  %s\n  want %s",
						i, armed[i], plain[i])
				}
			}
		})
	}
}
