// Package sim assembles networks and runs the paper's two experiment
// shapes: steady-state load sweeps (latency and accepted throughput
// after warmup, §IV-B) and transient traces (per-cycle latency and
// misrouted fraction around a traffic-pattern switch, §V-B/§V-C).
// Repeated runs over different seeds execute in parallel and are
// averaged, as the paper averages 10 simulations per plotted point.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/stats"
	"cbar/internal/topology"
	"cbar/internal/traffic"
)

// Config is a complete simulation setup: the router micro-architecture,
// the routing mechanism and its policy options.
type Config struct {
	Router router.Config
	Algo   routing.Algo
	Opts   routing.Options
}

// NewConfig returns the Table I configuration for the given topology and
// mechanism, with thresholds scaled to the topology (ScaledOptions).
func NewConfig(p topology.Params, algo routing.Algo) Config {
	return Config{
		Router: router.DefaultConfig(p),
		Algo:   algo,
		Opts:   ScaledOptions(p),
	}
}

// normalized returns the config with the VC counts the mechanism needs
// (VAL and PB require a fourth local VC, Table I).
func (c Config) normalized() Config {
	if need := routing.RequiredLocalVCs(c.Algo); c.Router.VCsLocal < need {
		c.Router.VCsLocal = need
	}
	return c
}

// BuildNetwork constructs a ready-to-run network for the config.
func BuildNetwork(c Config, seed uint64) (*router.Network, error) {
	c = c.normalized()
	alg, err := routing.New(c.Algo, c.Opts)
	if err != nil {
		return nil, err
	}
	return router.Build(c.Router, alg, seed)
}

// WorkloadKind enumerates the synthetic traffic families of §IV-B.
type WorkloadKind int

// Workload kinds.
const (
	Uniform WorkloadKind = iota
	Adversarial
	Mix
)

// Workload is a declarative traffic specification, resolved against a
// topology at run time.
type Workload struct {
	Kind WorkloadKind
	// Offset is the ADV group offset (Adversarial and Mix kinds).
	Offset int
	// UniformFrac is the fraction of uniform traffic in a Mix.
	UniformFrac float64
}

// UN is the uniform random workload.
func UN() Workload { return Workload{Kind: Uniform} }

// ADV is the adversarial workload with the given group offset.
func ADV(offset int) Workload { return Workload{Kind: Adversarial, Offset: offset} }

// MixUN blends uniformFrac uniform traffic with ADV+offset for the rest
// (the Figure 6 workload).
func MixUN(uniformFrac float64, offset int) Workload {
	return Workload{Kind: Mix, Offset: offset, UniformFrac: uniformFrac}
}

// Name returns the paper's name for the workload.
func (w Workload) Name() string {
	switch w.Kind {
	case Uniform:
		return "UN"
	case Adversarial:
		return fmt.Sprintf("ADV+%d", w.Offset)
	default:
		return fmt.Sprintf("mix(%.0f%%UN,ADV+%d)", w.UniformFrac*100, w.Offset)
	}
}

// Pattern resolves the workload against a topology.
func (w Workload) Pattern(t *topology.Dragonfly) (traffic.Pattern, error) {
	switch w.Kind {
	case Uniform:
		return traffic.NewUniform(t), nil
	case Adversarial:
		return traffic.NewAdversarial(t, w.Offset)
	case Mix:
		adv, err := traffic.NewAdversarial(t, w.Offset)
		if err != nil {
			return nil, err
		}
		return traffic.NewMix(traffic.NewUniform(t), adv, w.UniformFrac)
	}
	return nil, fmt.Errorf("sim: unknown workload kind %d", w.Kind)
}

// SteadyResult aggregates a steady-state measurement across seeds.
type SteadyResult struct {
	Algo     string
	Workload string
	// Load is the offered load in phits/(node·cycle).
	Load float64
	// AvgLatency is the mean packet latency in cycles (generation to
	// tail delivery, NIC queueing included).
	AvgLatency float64
	// P50/P99 latency percentiles in cycles.
	P50, P99 int64
	// Accepted is the delivered throughput in phits/(node·cycle).
	Accepted float64
	// MisroutedGlobal/MisroutedLocal are the fractions of delivered
	// packets that took a nonminimal global/local hop.
	MisroutedGlobal float64
	MisroutedLocal  float64
	// AvgHops is the mean router-to-router hop count.
	AvgHops float64
	// UtilLocal/UtilGlobal are the mean utilizations (0..1) of local
	// and global links over the measurement window.
	UtilLocal  float64
	UtilGlobal float64
	// Delivered packets counted across all seeds' windows.
	Delivered uint64
	Seeds     int
}

// latencyHistCap bounds the latency histogram; latencies beyond it still
// count toward the mean but saturate percentile reporting.
const latencyHistCap = 1 << 15

// steadySeed runs one seed's steady-state experiment.
func steadySeed(c Config, w Workload, load float64, warmup, measure int64, seed uint64) (SteadyResult, error) {
	net, err := BuildNetwork(c, seed)
	if err != nil {
		return SteadyResult{}, err
	}
	pat, err := w.Pattern(net.Topo)
	if err != nil {
		return SteadyResult{}, err
	}
	inj, err := traffic.NewInjector(net, traffic.Constant(pat), load, seed^0x9E3779B97F4A7C15)
	if err != nil {
		return SteadyResult{}, err
	}
	var (
		lat     stats.Welford
		hist    = stats.NewHistogram(latencyHistCap)
		hops    stats.Welford
		phits   uint64
		misG    uint64
		misL    uint64
		counted uint64
	)
	measStart := warmup
	net.OnDeliver = func(p *router.Packet, now int64) {
		if now < measStart {
			return
		}
		l := now - p.GenTime
		lat.Add(float64(l))
		hist.Add(l)
		hops.Add(float64(p.TotalHops))
		phits += uint64(p.Size)
		if p.GlobalMisroute {
			misG++
		}
		if p.LocalMisroutes > 0 {
			misL++
		}
		counted++
	}
	var busyLocal0, busyGlobal0 int64
	for cyc := int64(0); cyc < warmup+measure; cyc++ {
		if cyc == warmup {
			_, busyLocal0, busyGlobal0 = net.LinkBusy()
		}
		inj.Cycle()
		net.Step()
	}
	_, busyLocal1, busyGlobal1 := net.LinkBusy()
	_, nLocal, nGlobal := net.LinkCounts()
	res := SteadyResult{
		Algo:       c.Algo.String(),
		Workload:   w.Name(),
		Load:       load,
		AvgLatency: lat.Mean(),
		P50:        hist.Percentile(0.50),
		P99:        hist.Percentile(0.99),
		Accepted:   float64(phits) / (float64(measure) * float64(net.Topo.Nodes)),
		Delivered:  counted,
		AvgHops:    hops.Mean(),
		UtilLocal:  float64(busyLocal1-busyLocal0) / (float64(measure) * float64(nLocal)),
		UtilGlobal: float64(busyGlobal1-busyGlobal0) / (float64(measure) * float64(nGlobal)),
		Seeds:      1,
	}
	if counted > 0 {
		res.MisroutedGlobal = float64(misG) / float64(counted)
		res.MisroutedLocal = float64(misL) / float64(counted)
	}
	return res, nil
}

// RunSteady measures steady-state latency and throughput at one offered
// load: `warmup` cycles are simulated unmeasured, then deliveries during
// `measure` cycles are recorded; `seeds` independent runs execute in
// parallel and are averaged.
func RunSteady(c Config, w Workload, load float64, warmup, measure int64, seeds int) (SteadyResult, error) {
	if seeds < 1 {
		seeds = 1
	}
	if warmup < 0 || measure < 1 {
		return SteadyResult{}, fmt.Errorf("sim: invalid windows warmup=%d measure=%d", warmup, measure)
	}
	results := make([]SteadyResult, seeds)
	err := forEachSeed(seeds, func(i int) error {
		r, err := steadySeed(c, w, load, warmup, measure, uint64(i)*0x1000003+1)
		results[i] = r
		return err
	})
	if err != nil {
		return SteadyResult{}, err
	}
	return averageSteady(results), nil
}

// averageSeeds reduces per-seed results to their mean. Percentiles are
// averaged across seeds (each seed's percentile is itself stable given
// the millions of samples per window).
func averageSteady(rs []SteadyResult) SteadyResult {
	out := rs[0]
	if len(rs) == 1 {
		return out
	}
	var lat, acc, misG, misL, hops, p50, p99, utilL, utilG float64
	var delivered uint64
	for _, r := range rs {
		lat += r.AvgLatency
		acc += r.Accepted
		misG += r.MisroutedGlobal
		misL += r.MisroutedLocal
		hops += r.AvgHops
		p50 += float64(r.P50)
		p99 += float64(r.P99)
		utilL += r.UtilLocal
		utilG += r.UtilGlobal
		delivered += r.Delivered
	}
	n := float64(len(rs))
	out.AvgLatency = lat / n
	out.Accepted = acc / n
	out.MisroutedGlobal = misG / n
	out.MisroutedLocal = misL / n
	out.AvgHops = hops / n
	out.P50 = int64(p50 / n)
	out.P99 = int64(p99 / n)
	out.UtilLocal = utilL / n
	out.UtilGlobal = utilG / n
	out.Delivered = delivered
	out.Seeds = len(rs)
	return out
}

// TransientResult is the averaged trace of a traffic-switch experiment:
// per-bucket mean latency and globally-misrouted percentage of the
// packets delivered in that bucket, on a time axis relative to the
// switch instant (negative = before the switch).
type TransientResult struct {
	Algo        string
	BucketWidth int64
	// Times are bucket centers in cycles relative to the switch.
	Times []int64
	// Latency[i] is the mean delivery latency of bucket i (NaN-free:
	// empty buckets are omitted from Times/Latency/MisroutedPct).
	Latency []float64
	// MisroutedPct[i] is the percentage (0-100) of packets delivered
	// in bucket i that had taken a nonminimal global hop.
	MisroutedPct []float64
}

// RunTransient warms the network with workload `before` for `warmup`
// cycles, switches to `after`, and traces deliveries from `pre` cycles
// before the switch until `post` cycles after it, averaged over seeds.
//
// The warmup is rounded up to a multiple of the ECtN exchange period so
// the pattern change coincides with a partial-array distribution, the
// scenario of Figure 7 ("the traffic changed exactly when the partial
// counters were being distributed").
func RunTransient(c Config, before, after Workload, load float64, warmup, pre, post, bucket int64, seeds int) (TransientResult, error) {
	if seeds < 1 {
		seeds = 1
	}
	if bucket < 1 {
		bucket = 1
	}
	if warmup < pre || post < bucket {
		return TransientResult{}, fmt.Errorf("sim: invalid transient windows warmup=%d pre=%d post=%d", warmup, pre, post)
	}
	if p := c.Opts.ECtNPeriod; p > 0 && warmup%p != 0 {
		warmup += p - warmup%p
	}
	nBuckets := int((pre + post) / bucket)
	latSeries := make([]*stats.TimeSeries, seeds)
	misSeries := make([]*stats.TimeSeries, seeds)
	err := forEachSeed(seeds, func(i int) error {
		seed := uint64(i)*0x2000003 + 17
		net, err := BuildNetwork(c, seed)
		if err != nil {
			return err
		}
		patBefore, err := before.Pattern(net.Topo)
		if err != nil {
			return err
		}
		patAfter, err := after.Pattern(net.Topo)
		if err != nil {
			return err
		}
		sched, err := traffic.NewSchedule(
			traffic.Phase{FromCycle: 0, Pattern: patBefore},
			traffic.Phase{FromCycle: warmup, Pattern: patAfter},
		)
		if err != nil {
			return err
		}
		inj, err := traffic.NewInjector(net, sched, load, seed^0xA5A5A5A5)
		if err != nil {
			return err
		}
		lat := stats.NewTimeSeries(-pre, bucket, nBuckets)
		mis := stats.NewTimeSeries(-pre, bucket, nBuckets)
		net.OnDeliver = func(p *router.Packet, now int64) {
			rel := now - warmup
			lat.Add(rel, float64(now-p.GenTime))
			v := 0.0
			if p.GlobalMisroute {
				v = 100.0
			}
			mis.Add(rel, v)
		}
		for cyc := int64(0); cyc < warmup+post; cyc++ {
			inj.Cycle()
			net.Step()
		}
		latSeries[i] = lat
		misSeries[i] = mis
		return nil
	})
	if err != nil {
		return TransientResult{}, err
	}
	for i := 1; i < seeds; i++ {
		latSeries[0].Merge(latSeries[i])
		misSeries[0].Merge(misSeries[i])
	}
	res := TransientResult{Algo: c.Algo.String(), BucketWidth: bucket}
	for i := 0; i < latSeries[0].Buckets(); i++ {
		if latSeries[0].CountAt(i) == 0 {
			continue
		}
		res.Times = append(res.Times, latSeries[0].BucketTime(i)+bucket/2)
		res.Latency = append(res.Latency, latSeries[0].Mean(i))
		res.MisroutedPct = append(res.MisroutedPct, misSeries[0].Mean(i))
	}
	return res, nil
}

// forEachSeed runs f(0..n-1) on up to GOMAXPROCS goroutines and returns
// the first error.
func forEachSeed(n int, f func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		ferr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				bad := ferr != nil
				mu.Unlock()
				if bad || i >= n {
					return
				}
				if err := f(i); err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return ferr
}

// MeanSaturatedContention runs the §VI-A diagnostic: uniform traffic at
// the given (over)load with the Base mechanism, returning the mean
// contention-counter value per output port averaged over the final
// `sample` cycles. Under saturation the paper estimates it at the mean
// number of VCs per input port (2.74 for the Table I router).
func MeanSaturatedContention(c Config, load float64, warmup, sample int64, seed uint64) (float64, error) {
	c.Algo = routing.Base
	net, err := BuildNetwork(c, seed)
	if err != nil {
		return 0, err
	}
	pat, err := UN().Pattern(net.Topo)
	if err != nil {
		return 0, err
	}
	inj, err := traffic.NewInjector(net, traffic.Constant(pat), load, seed)
	if err != nil {
		return 0, err
	}
	for cyc := int64(0); cyc < warmup; cyc++ {
		inj.Cycle()
		net.Step()
	}
	var acc stats.Welford
	ports := float64(net.Topo.Radix())
	for cyc := int64(0); cyc < sample; cyc++ {
		inj.Cycle()
		net.Step()
		for _, r := range net.Routers {
			acc.Add(float64(r.Contention.Sum()) / ports)
		}
	}
	return acc.Mean(), nil
}
