// Package sim assembles networks and runs the paper's two experiment
// shapes: steady-state load sweeps (latency and accepted throughput
// after warmup, §IV-B) and transient traces (per-cycle latency and
// misrouted fraction around a traffic-pattern switch, §V-B/§V-C).
// Repeated runs over different seeds execute in parallel and are
// averaged, as the paper averages 10 simulations per plotted point.
package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"

	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/stats"
	"cbar/internal/topology"
	"cbar/internal/traffic"
)

// Config is a complete simulation setup: the router micro-architecture,
// the routing mechanism and its policy options.
type Config struct {
	Router router.Config
	Algo   routing.Algo
	Opts   routing.Options
}

// NewConfig returns the Table I configuration for the given topology and
// mechanism, with thresholds scaled to the topology (ScaledOptions).
func NewConfig(p topology.Params, algo routing.Algo) Config {
	return Config{
		Router: router.DefaultConfig(p),
		Algo:   algo,
		Opts:   ScaledOptions(p),
	}
}

// normalized returns the config with the VC counts the mechanism needs
// (VAL and PB require a fourth local VC, Table I).
func (c Config) normalized() Config {
	if need := routing.RequiredLocalVCs(c.Algo); c.Router.VCsLocal < need {
		c.Router.VCsLocal = need
	}
	return c
}

// BuildNetwork constructs a ready-to-run network for the config.
func BuildNetwork(c Config, seed uint64) (*router.Network, error) {
	c = c.normalized()
	alg, err := routing.New(c.Algo, c.Opts)
	if err != nil {
		return nil, err
	}
	return router.Build(c.Router, alg, seed)
}

// WorkloadKind enumerates the synthetic destination-pattern families:
// the paper's §IV-B set (UN, ADV, mix) plus the workload-engine families
// (hotspot, fixed permutations, group-tornado).
type WorkloadKind int

// Workload kinds.
const (
	Uniform WorkloadKind = iota
	Adversarial
	Mix
	Hotspot
	Shift
	Complement
	Tornado
)

// SourceSpec declares the arrival process of every node,
// topology-independently. The zero value is the paper's homogeneous
// Bernoulli process, which runs on the skip-sampling fast path.
type SourceSpec struct {
	// Bursty selects the two-state on-off (Markov-modulated) process.
	Bursty bool
	// OnMean/OffMean are mean ON/OFF phase lengths in cycles (Bursty).
	OnMean, OffMean float64
	// PeakLoad, when nonzero, fixes the ON-phase offered load in
	// phits/(node·cycle) and lets the duty cycle adapt to the aggregate.
	PeakLoad float64
	// SkewFrac/SkewShare describe heterogeneous per-node loads:
	// SkewFrac of the nodes (evenly spread over the id space) generate
	// SkewShare of the aggregate traffic. Zero values are homogeneous.
	SkewFrac, SkewShare float64
}

// homogeneous reports whether the spec is the plain Bernoulli process
// the fast path covers.
func (s SourceSpec) homogeneous() bool {
	return !s.Bursty && s.SkewFrac == 0
}

// Name returns a suffix describing the arrival process ("" when
// homogeneous Bernoulli).
func (s SourceSpec) Name() string {
	var n string
	if s.Bursty {
		if s.PeakLoad > 0 {
			n = fmt.Sprintf("+burst(%g,%g,%g)", s.OnMean, s.OffMean, s.PeakLoad)
		} else {
			n = fmt.Sprintf("+burst(%g,%g)", s.OnMean, s.OffMean)
		}
	}
	if s.SkewFrac != 0 {
		n += fmt.Sprintf("+skew(%.0f%%:%.0f%%)", s.SkewFrac*100, s.SkewShare*100)
	}
	return n
}

// Workload is a declarative traffic specification — destination pattern
// plus arrival process — resolved against a topology at run time.
type Workload struct {
	Kind WorkloadKind
	// Offset is the ADV group offset (Adversarial and Mix kinds) or the
	// node offset of the Shift permutation.
	Offset int
	// UniformFrac is the fraction of uniform traffic in a Mix.
	UniformFrac float64
	// HotFrac is the fraction of traffic aimed at the hot set, and
	// HotNodes its size (Hotspot kind).
	HotFrac  float64
	HotNodes int
	// Source selects the arrival process (zero: homogeneous Bernoulli).
	Source SourceSpec
}

// UN is the uniform random workload.
func UN() Workload { return Workload{Kind: Uniform} }

// ADV is the adversarial workload with the given group offset.
func ADV(offset int) Workload { return Workload{Kind: Adversarial, Offset: offset} }

// MixUN blends uniformFrac uniform traffic with ADV+offset for the rest
// (the Figure 6 workload).
func MixUN(uniformFrac float64, offset int) Workload {
	return Workload{Kind: Mix, Offset: offset, UniformFrac: uniformFrac}
}

// HotspotUN aims frac of the traffic at `hot` evenly-spread hot nodes,
// the rest uniformly.
func HotspotUN(frac float64, hot int) Workload {
	return Workload{Kind: Hotspot, HotFrac: frac, HotNodes: hot}
}

// ShiftPerm is the fixed node-shift permutation dest = src + offset.
func ShiftPerm(offset int) Workload { return Workload{Kind: Shift, Offset: offset} }

// ComplementPerm is the fixed complement permutation dest = N-1-src.
func ComplementPerm() Workload { return Workload{Kind: Complement} }

// TornadoPerm is the group-tornado permutation (maximal group offset).
func TornadoPerm() Workload { return Workload{Kind: Tornado} }

// WithBurst returns the workload with an on-off bursty arrival process:
// mean ON/OFF phase lengths in cycles, and optionally (peak > 0) a fixed
// ON-phase load in phits/(node·cycle).
func (w Workload) WithBurst(onMean, offMean, peak float64) Workload {
	w.Source.Bursty = true
	w.Source.OnMean, w.Source.OffMean, w.Source.PeakLoad = onMean, offMean, peak
	return w
}

// WithSkew returns the workload with heterogeneous per-node loads: frac
// of the nodes carry share of the aggregate traffic.
func (w Workload) WithSkew(frac, share float64) Workload {
	w.Source.SkewFrac, w.Source.SkewShare = frac, share
	return w
}

// Name returns the paper's name for the workload (with an arrival
// process suffix when not homogeneous Bernoulli).
func (w Workload) Name() string {
	var n string
	switch w.Kind {
	case Uniform:
		n = "UN"
	case Adversarial:
		n = fmt.Sprintf("ADV+%d", w.Offset)
	case Mix:
		n = fmt.Sprintf("mix(%.0f%%UN,ADV+%d)", w.UniformFrac*100, w.Offset)
	case Hotspot:
		n = fmt.Sprintf("hotspot(%.0f%%->%d)", w.HotFrac*100, w.HotNodes)
	case Shift:
		n = fmt.Sprintf("shift+%d", w.Offset)
	case Complement:
		n = "complement"
	case Tornado:
		n = "tornado"
	default:
		n = fmt.Sprintf("workload(%d)", int(w.Kind))
	}
	return n + w.Source.Name()
}

// Pattern resolves the workload's destination pattern against a
// topology.
func (w Workload) Pattern(t *topology.Dragonfly) (traffic.Pattern, error) {
	switch w.Kind {
	case Uniform:
		return traffic.NewUniform(t)
	case Adversarial:
		return traffic.NewAdversarial(t, w.Offset)
	case Mix:
		un, err := traffic.NewUniform(t)
		if err != nil {
			return nil, err
		}
		adv, err := traffic.NewAdversarial(t, w.Offset)
		if err != nil {
			return nil, err
		}
		return traffic.NewMix(un, adv, w.UniformFrac)
	case Hotspot:
		return traffic.NewHotspot(t, w.HotFrac, w.HotNodes)
	case Shift:
		return traffic.NewShift(t, w.Offset)
	case Complement:
		return traffic.NewComplement(t)
	case Tornado:
		return traffic.NewTornado(t)
	}
	return nil, fmt.Errorf("sim: unknown workload kind %d", w.Kind)
}

// skewWeights materializes a skew spec as per-node rate weights: the
// chosen nodes (evenly spread over the id space, like hotspot's hot set)
// share `share` of the aggregate load.
func skewWeights(frac, share float64, nodes int) ([]float64, error) {
	if frac <= 0 || frac >= 1 || share < 0 || share > 1 {
		return nil, fmt.Errorf("sim: skew frac %v must be in (0,1) and share %v in [0,1]", frac, share)
	}
	hot := int(math.Round(frac * float64(nodes)))
	if hot < 1 {
		hot = 1
	}
	if hot >= nodes {
		hot = nodes - 1
	}
	w := make([]float64, nodes)
	wHot := share * float64(nodes) / float64(hot)
	wCold := (1 - share) * float64(nodes) / float64(nodes-hot)
	for i := range w {
		w[i] = wCold
	}
	for i := 0; i < hot; i++ {
		w[i*nodes/hot] = wHot
	}
	return w, nil
}

// injector builds the right injector for the workload: the bit-identical
// homogeneous fast path when the source spec is zero, the stateful
// calendar path otherwise.
func (w Workload) injector(net *router.Network, sched *traffic.Schedule, load float64, seed uint64) (*traffic.Injector, error) {
	if w.Source.homogeneous() {
		return traffic.NewInjector(net, sched, load, seed)
	}
	spec := traffic.SourceSpec{
		OnMean:   w.Source.OnMean,
		OffMean:  w.Source.OffMean,
		PeakLoad: w.Source.PeakLoad,
	}
	if w.Source.Bursty {
		spec.Kind = traffic.OnOffArrivals
	}
	if w.Source.SkewFrac != 0 {
		weights, err := skewWeights(w.Source.SkewFrac, w.Source.SkewShare, net.Topo.Nodes)
		if err != nil {
			return nil, err
		}
		spec.Weights = weights
	}
	return traffic.NewSourceInjector(net, sched, load, seed, spec)
}

// SteadyResult aggregates a steady-state measurement across seeds.
type SteadyResult struct {
	Algo     string
	Workload string
	// Load is the offered load in phits/(node·cycle).
	Load float64
	// AvgLatency is the mean packet latency in cycles (generation to
	// tail delivery, NIC queueing included).
	AvgLatency float64
	// P50/P99 latency percentiles in cycles.
	P50, P99 int64
	// Accepted is the delivered throughput in phits/(node·cycle).
	Accepted float64
	// MisroutedGlobal/MisroutedLocal are the fractions of delivered
	// packets that took a nonminimal global/local hop.
	MisroutedGlobal float64
	MisroutedLocal  float64
	// AvgHops is the mean router-to-router hop count.
	AvgHops float64
	// UtilLocal/UtilGlobal are the mean utilizations (0..1) of local
	// and global links over the measurement window.
	UtilLocal  float64
	UtilGlobal float64
	// OverflowFrac is the fraction of measured latencies at or above the
	// histogram cap: nonzero means P50/P99 may be saturated at the cap
	// and the true tail is worse than reported (typical past the
	// saturation load).
	OverflowFrac float64
	// Delivered packets counted across all seeds' windows.
	Delivered uint64
	Seeds     int
	// CIHalfLatency and CIHalfAccepted are the 95% confidence half-widths
	// of AvgLatency and Accepted from the adaptive engine's batch-means
	// estimator, combined across seeds. Zero in fixed-window mode.
	CIHalfLatency  float64
	CIHalfAccepted float64
	// MeasuredCycles is the total number of measured cycles summed over
	// all seeds (Measure x Seeds in fixed-window mode; whatever the
	// stopping rule actually spent in adaptive mode).
	MeasuredCycles int64
	// WarmupCycles is the mean unmeasured warmup prefix per seed: the
	// fixed Warmup window, or the MSER-truncated warmup in adaptive mode
	// (zero for a run short-circuited as saturated before measuring).
	WarmupCycles int64
	// Saturated reports that at least one seed's run was cut short by
	// the adaptive saturation detector (non-converging backlog growth or
	// persistent source throttling): the point does not reach a steady
	// state at this load and its averages describe a growing transient.
	Saturated bool
	// Converged reports that every seed reached the relative-CI target.
	// Meaningful only in adaptive mode; always false in fixed mode.
	Converged bool
	// Congestion-management activity over the measurement windows,
	// summed across seeds; all zero unless the run's router config
	// enables congestion management (router.CongestionConfig).
	Marked    uint64 // delivered packets carrying ECN marks
	Notified  uint64 // notifications delivered back to sources
	Throttled uint64 // injection attempts deferred/suppressed by AIMD
	Shed      uint64 // injection attempts shed at the NIC shed cap
	// Fault-injection activity over the measurement windows, summed
	// across seeds; all zero unless the run's router config schedules
	// faults (router.FaultConfig).
	Dropped    uint64 // packets killed on failing links/routers
	Retried    uint64 // dropped packets successfully re-injected
	Unroutable uint64 // packets aimed at (or caught in) a partition
}

// latencyHistCap bounds the latency histogram; latencies beyond it still
// count toward the mean but saturate percentile reporting.
const latencyHistCap = 1 << 15

// steadySeed runs one seed's steady-state experiment. Latency summary
// fields (AvgLatency, P50, P99, OverflowFrac) are left zero: they are
// computed by reduceSteady from the returned histogram, so multi-seed
// reductions can merge histograms and take exact cross-seed percentiles
// instead of averaging per-seed ones.
func steadySeed(ctx context.Context, c Config, w Workload, load float64, warmup, measure int64, seed uint64) (SteadyResult, *stats.Histogram, error) {
	net, err := BuildNetwork(c, seed)
	if err != nil {
		return SteadyResult{}, nil, err
	}
	pat, err := w.Pattern(net.Topo)
	if err != nil {
		return SteadyResult{}, nil, err
	}
	inj, err := w.injector(net, traffic.Constant(pat), load, seed^0x9E3779B97F4A7C15)
	if err != nil {
		return SteadyResult{}, nil, err
	}
	var (
		hist    = stats.NewHistogram(latencyHistCap)
		hops    stats.Welford
		phits   uint64
		misG    uint64
		misL    uint64
		counted uint64
	)
	measStart := warmup
	net.OnDeliver = func(p *router.Packet, now int64) {
		if now < measStart {
			return
		}
		hist.Add(now - p.GenTime)
		hops.Add(float64(p.TotalHops))
		phits += uint64(p.Size)
		if p.GlobalMisroute {
			misG++
		}
		if p.LocalMisroutes > 0 {
			misL++
		}
		counted++
	}
	var busyLocal0, busyGlobal0 int64
	var marked0, notified0, shed0, throttled0 uint64
	var dropped0, retried0, unroutable0 uint64
	// The network starts at cycle 0, so net.Now() doubles as the loop
	// counter. Quiet spans are elided (elideStep), capped at the warmup
	// boundary so the counter snapshot lands exactly at cycle `warmup`;
	// skipped cycles deliver nothing and mutate no counter, so the
	// result is bit-identical to stepping them.
	for cyc := net.Now(); cyc < warmup+measure; cyc = net.Now() {
		if cyc == warmup {
			_, busyLocal0, busyGlobal0 = net.LinkBusy()
			marked0, notified0, shed0 = net.NumMarked, net.NumNotified, net.NumShed
			throttled0 = inj.Throttled()
			dropped0, retried0, unroutable0 = net.NumDropped, inj.Retried(), net.NumUnroutable
		}
		if cyc%adaptiveBucket == 0 {
			if err := ctxErr(ctx); err != nil {
				return SteadyResult{}, nil, err
			}
		}
		bound := warmup + measure
		if cyc < warmup {
			bound = warmup
		}
		if elideStep(net, inj, bound) {
			continue
		}
		inj.Cycle()
		net.Step()
	}
	_, busyLocal1, busyGlobal1 := net.LinkBusy()
	_, nLocal, nGlobal := net.LinkCounts()
	res := SteadyResult{
		Algo:           c.Algo.String(),
		Workload:       w.Name(),
		Load:           load,
		Accepted:       float64(phits) / (float64(measure) * float64(net.Topo.Nodes)),
		Delivered:      counted,
		AvgHops:        hops.Mean(),
		UtilLocal:      float64(busyLocal1-busyLocal0) / (float64(measure) * float64(nLocal)),
		UtilGlobal:     float64(busyGlobal1-busyGlobal0) / (float64(measure) * float64(nGlobal)),
		Seeds:          1,
		MeasuredCycles: measure,
		WarmupCycles:   warmup,
		Marked:         net.NumMarked - marked0,
		Notified:       net.NumNotified - notified0,
		Throttled:      inj.Throttled() - throttled0,
		Shed:           net.NumShed - shed0,
		Dropped:        net.NumDropped - dropped0,
		Retried:        inj.Retried() - retried0,
		Unroutable:     net.NumUnroutable - unroutable0,
	}
	if counted > 0 {
		res.MisroutedGlobal = float64(misG) / float64(counted)
		res.MisroutedLocal = float64(misL) / float64(counted)
	}
	return res, hist, nil
}

// ctxErr reports a cancelled context (nil contexts never cancel); the
// cycle loops poll it once per measurement bucket so a cancelled sweep
// stops mid-run at bucket granularity.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// seedFor returns the run seed of repeat i, shared by every steady
// entry point so single runs and sweeps measure identical systems.
func seedFor(i int) uint64 { return uint64(i)*0x1000003 + 1 }

// RunSteady measures steady-state latency and throughput at one offered
// load: `warmup` cycles are simulated unmeasured, then deliveries during
// `measure` cycles are recorded; `seeds` independent runs execute in
// parallel and are averaged (scalars) or merged (latency histograms, so
// cross-seed percentiles are exact).
func RunSteady(c Config, w Workload, load float64, warmup, measure int64, seeds int) (SteadyResult, error) {
	return RunSteadyBudget(c, w, load, Budget{Warmup: warmup, Measure: measure, Seeds: seeds})
}

// RunSteadyBudget is RunSteady driven by a Budget, the entry point that
// also carries the adaptive-measurement knobs (Budget.Adaptive,
// CIRelWidth, MaxMeasure). With Adaptive unset it is bit-identical to
// RunSteady over the same windows.
func RunSteadyBudget(c Config, w Workload, load float64, b Budget) (SteadyResult, error) {
	rs, err := SweepSteadyBudget(c, w, []float64{load}, b)
	if err != nil {
		return SteadyResult{}, err
	}
	return rs[0], nil
}

// SweepSteady measures a whole load grid with fixed windows; see
// SweepSteadyBudget for the full contract and the adaptive mode.
func SweepSteady(c Config, w Workload, loads []float64, warmup, measure int64, seeds int) ([]SteadyResult, error) {
	return SweepSteadyBudget(c, w, loads, Budget{Warmup: warmup, Measure: measure, Seeds: seeds})
}

// SweepSteadyBudget measures a whole load grid. The load×seed grid is
// flattened through one bounded worker pool, so a sweep never
// oversubscribes the machine the way per-load pools would. When the
// grid is at least GOMAXPROCS wide, grid parallelism alone saturates
// the machine and every run steps sequentially; a narrower grid (the
// common paper-scale case: few loads, few seeds) spreads the idle cores
// inside each run as shard workers (router.Config.Workers — results are
// cycle-for-cycle identical at any worker count). An explicit
// c.Router.Workers is respected instead of the automatic split (b.Workers
// is used when the config leaves it unset). The returned slice is
// ordered like loads.
//
// With b.Adaptive set, each (load, seed) point runs the adaptive
// measurement engine (MSER warmup truncation, batch-means CI stopping,
// saturation short-circuit) instead of the fixed windows; see
// adaptiveSeed. The fixed path is the default and is bit-identical to
// the pre-adaptive implementation.
func SweepSteadyBudget(c Config, w Workload, loads []float64, b Budget) ([]SteadyResult, error) {
	b = b.steadyDefaults()
	if err := b.validateSteady(); err != nil {
		return nil, err
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("sim: empty load grid")
	}
	tasks := len(loads) * b.Seeds
	requested := c.Router.Workers
	if requested == 0 {
		requested = b.Workers
	}
	if requested == 0 && !autoShardable(c.Router) {
		requested = 1
	}
	perRun, taskWorkers := planWorkers(requested, tasks)
	c.Router.Workers = perRun
	results := make([]SteadyResult, tasks)
	hists := make([]*stats.Histogram, tasks)
	err := forEachTaskN(tasks, taskWorkers, func(k int) error {
		if err := ctxErr(b.Ctx); err != nil {
			return err
		}
		r, h, err := measureSeed(c, w, loads[k/b.Seeds], b, seedFor(k%b.Seeds))
		results[k], hists[k] = r, h
		return err
	})
	if err != nil {
		return nil, err
	}
	out := make([]SteadyResult, len(loads))
	for li := range loads {
		out[li] = reduceSteady(results[li*b.Seeds:(li+1)*b.Seeds], hists[li*b.Seeds:(li+1)*b.Seeds])
	}
	return out, nil
}

// reduceSteady reduces per-seed results to one measurement: scalar
// metrics are averaged across seeds, while the latency distribution is
// merged and summarized exactly — averaging per-seed percentiles is
// biased for the tail (each seed's P99 is a noisy order statistic whose
// mean is not the P99 of the pooled distribution).
func reduceSteady(rs []SteadyResult, hists []*stats.Histogram) SteadyResult {
	out := rs[0]
	merged := hists[0]
	var acc, misG, misL, hops, utilL, utilG float64
	var delivered uint64
	for i, r := range rs {
		acc += r.Accepted
		misG += r.MisroutedGlobal
		misL += r.MisroutedLocal
		hops += r.AvgHops
		utilL += r.UtilLocal
		utilG += r.UtilGlobal
		delivered += r.Delivered
		if i > 0 {
			merged.Merge(hists[i])
		}
	}
	n := float64(len(rs))
	out.Accepted = acc / n
	out.MisroutedGlobal = misG / n
	out.MisroutedLocal = misL / n
	out.AvgHops = hops / n
	out.UtilLocal = utilL / n
	out.UtilGlobal = utilG / n
	out.AvgLatency = merged.Mean()
	out.P50 = merged.Percentile(0.50)
	out.P99 = merged.Percentile(0.99)
	out.OverflowFrac = merged.OverflowFrac()
	out.Delivered = delivered
	out.Seeds = len(rs)
	// Measurement-accounting reduction: seed CIs are independent, so the
	// half-width of the averaged estimate is sqrt(sum half^2)/n; cycle
	// costs add up, warmup lengths average, saturation is sticky and
	// convergence must hold for every seed.
	out.MeasuredCycles, out.WarmupCycles = 0, 0
	out.Saturated, out.Converged = false, true
	var ciLat2, ciAcc2 float64
	var warm int64
	out.Marked, out.Notified, out.Throttled, out.Shed = 0, 0, 0, 0
	out.Dropped, out.Retried, out.Unroutable = 0, 0, 0
	for _, r := range rs {
		out.MeasuredCycles += r.MeasuredCycles
		warm += r.WarmupCycles
		ciLat2 += r.CIHalfLatency * r.CIHalfLatency
		ciAcc2 += r.CIHalfAccepted * r.CIHalfAccepted
		out.Saturated = out.Saturated || r.Saturated
		out.Converged = out.Converged && r.Converged
		out.Marked += r.Marked
		out.Notified += r.Notified
		out.Throttled += r.Throttled
		out.Shed += r.Shed
		out.Dropped += r.Dropped
		out.Retried += r.Retried
		out.Unroutable += r.Unroutable
	}
	out.WarmupCycles = warm / int64(len(rs))
	out.CIHalfLatency = math.Sqrt(ciLat2) / n
	out.CIHalfAccepted = math.Sqrt(ciAcc2) / n
	return out
}

// TransientResult is the averaged trace of a traffic-switch experiment:
// per-bucket mean latency and globally-misrouted percentage of the
// packets delivered in that bucket, on a time axis relative to the
// switch instant (negative = before the switch).
type TransientResult struct {
	Algo        string
	BucketWidth int64
	// Times are bucket centers in cycles relative to the switch.
	Times []int64
	// Latency[i] is the mean delivery latency of bucket i (NaN-free:
	// empty buckets are omitted from Times/Latency/MisroutedPct).
	Latency []float64
	// MisroutedPct[i] is the percentage (0-100) of packets delivered
	// in bucket i that had taken a nonminimal global hop.
	MisroutedPct []float64
}

// RunTransient warms the network with workload `before` for `warmup`
// cycles, switches to `after`, and traces deliveries from `pre` cycles
// before the switch until `post` cycles after it, averaged over seeds.
//
// Only the destination pattern switches: the arrival process is
// `before`'s for the whole run. An `after` workload carrying a
// different non-default source spec is rejected rather than silently
// measured under the wrong arrivals.
//
// The warmup is rounded up to a multiple of the ECtN exchange period so
// the pattern change coincides with a partial-array distribution, the
// scenario of Figure 7 ("the traffic changed exactly when the partial
// counters were being distributed").
func RunTransient(c Config, before, after Workload, load float64, warmup, pre, post, bucket int64, seeds int) (TransientResult, error) {
	return RunTransientCtx(nil, c, before, after, load, warmup, pre, post, bucket, seeds)
}

// RunTransientCtx is RunTransient with cooperative cancellation: the
// per-seed cycle loops poll ctx once per measurement bucket and the
// seed pool between tasks. A nil ctx never cancels.
func RunTransientCtx(ctx context.Context, c Config, before, after Workload, load float64, warmup, pre, post, bucket int64, seeds int) (TransientResult, error) {
	tb := Budget{TransientWarmup: warmup, Pre: pre, Post: post, Bucket: bucket, Seeds: seeds}
	if err := tb.validateTransient(); err != nil {
		return TransientResult{}, err
	}
	if !after.Source.homogeneous() && after.Source != before.Source {
		return TransientResult{}, fmt.Errorf("sim: transient arrival process is %q's for the whole run; %q's source spec would be ignored — put it on the pre-switch workload",
			before.Name(), after.Name())
	}
	if p := c.Opts.ECtNPeriod; p > 0 && warmup%p != 0 {
		warmup += p - warmup%p
	}
	nBuckets := int((pre + post) / bucket)
	latSeries := make([]*stats.TimeSeries, seeds)
	misSeries := make([]*stats.TimeSeries, seeds)
	// Like SweepSteady: seed-grid parallelism when there are enough
	// seeds, intra-run shard workers for the idle cores when not.
	requested := c.Router.Workers
	if requested == 0 && !autoShardable(c.Router) {
		requested = 1
	}
	perRun, taskWorkers := planWorkers(requested, seeds)
	c.Router.Workers = perRun
	err := forEachTaskN(seeds, taskWorkers, func(i int) error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		seed := uint64(i)*0x2000003 + 17
		net, err := BuildNetwork(c, seed)
		if err != nil {
			return err
		}
		patBefore, err := before.Pattern(net.Topo)
		if err != nil {
			return err
		}
		patAfter, err := after.Pattern(net.Topo)
		if err != nil {
			return err
		}
		sched, err := traffic.NewSchedule(
			traffic.Phase{FromCycle: 0, Pattern: patBefore},
			traffic.Phase{FromCycle: warmup, Pattern: patAfter},
		)
		if err != nil {
			return err
		}
		// The arrival process follows the pre-switch workload's source
		// spec; the schedule switches only the destination pattern.
		inj, err := before.injector(net, sched, load, seed^0xA5A5A5A5)
		if err != nil {
			return err
		}
		lat := stats.NewTimeSeries(-pre, bucket, nBuckets)
		mis := stats.NewTimeSeries(-pre, bucket, nBuckets)
		net.OnDeliver = func(p *router.Packet, now int64) {
			rel := now - warmup
			lat.Add(rel, float64(now-p.GenTime))
			v := 0.0
			if p.GlobalMisroute {
				v = 100.0
			}
			mis.Add(rel, v)
		}
		// Quiet spans elide bit-identically (long-OFF bursty warmups are
		// the motivating case). The destination-pattern switch at cycle
		// `warmup` needs no jump cap: arrival times never depend on the
		// pattern, and a jump lands on the next arrival, which then draws
		// its destination from the schedule in force at that cycle.
		for cyc := net.Now(); cyc < warmup+post; cyc = net.Now() {
			if cyc%adaptiveBucket == 0 {
				if err := ctxErr(ctx); err != nil {
					return err
				}
			}
			if elideStep(net, inj, warmup+post) {
				continue
			}
			inj.Cycle()
			net.Step()
		}
		latSeries[i] = lat
		misSeries[i] = mis
		return nil
	})
	if err != nil {
		return TransientResult{}, err
	}
	for i := 1; i < seeds; i++ {
		latSeries[0].Merge(latSeries[i])
		misSeries[0].Merge(misSeries[i])
	}
	res := TransientResult{Algo: c.Algo.String(), BucketWidth: bucket}
	for i := 0; i < latSeries[0].Buckets(); i++ {
		if latSeries[0].CountAt(i) == 0 {
			continue
		}
		res.Times = append(res.Times, latSeries[0].BucketTime(i)+bucket/2)
		res.Latency = append(res.Latency, latSeries[0].Mean(i))
		res.MisroutedPct = append(res.MisroutedPct, misSeries[0].Mean(i))
	}
	return res, nil
}

// autoShardable reports whether a run with this router config may be
// sharded by the automatic worker split: router.Build rejects Workers >
// 1 for configs whose cross-shard packet handoffs would not be
// barrier-ordered (PipelineLatency + LatencyGlobal must exceed
// PacketSize), so auto mode must keep such configs sequential — they
// were valid sequential sweeps before sharding existed and must stay
// so on every core count. An explicit Workers > 1 request still
// surfaces the Build error, since the caller asked for the impossible.
func autoShardable(rc router.Config) bool {
	return rc.PipelineLatency+rc.LatencyGlobal > rc.PacketSize
}

// planWorkers splits GOMAXPROCS between grid tasks and intra-run shard
// workers: a grid at least GOMAXPROCS wide keeps each run sequential
// (grid parallelism already saturates the machine), a narrower grid
// hands the idle cores to each run as shard workers. An explicit
// requested count (> 0) is honored up to GOMAXPROCS — the sweep pool
// never oversubscribes the machine, so a -workers request beyond the
// core count is clamped (unlike a direct BuildNetwork, which takes the
// config verbatim); the task pool is then sized so tasks × per-run
// workers never exceeds GOMAXPROCS.
func planWorkers(requested, tasks int) (perRun, taskWorkers int) {
	maxProcs := runtime.GOMAXPROCS(0)
	perRun = requested
	if perRun <= 0 {
		perRun = maxProcs / tasks
		if perRun < 1 {
			perRun = 1
		}
	}
	if perRun > maxProcs {
		perRun = maxProcs
	}
	taskWorkers = maxProcs / perRun
	if taskWorkers < 1 {
		taskWorkers = 1
	}
	return perRun, taskWorkers
}

// forEachTask runs f(0..n-1) on up to GOMAXPROCS goroutines and returns
// the first error. It is the one bounded worker pool every repeat/grid
// entry point funnels through, so nested parallelism cannot multiply
// into more than GOMAXPROCS concurrently-simulated networks.
func forEachTask(n int, f func(i int) error) error {
	return forEachTaskN(n, runtime.GOMAXPROCS(0), f)
}

// forEachTaskN is forEachTask with an explicit worker-pool size (used
// when each task itself runs shard workers, so the product stays within
// GOMAXPROCS). A panicking task is recovered in its worker and
// converted to an error carrying the panic value and stack, which —
// like any task error — cancels the tasks not yet started and is
// returned to the caller; sibling workers finish their current task and
// exit rather than wedging mid-sweep.
func forEachTaskN(n, workers int, f func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	run := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("sim: task %d panicked: %v\n%s", i, r, debug.Stack())
			}
		}()
		return f(i)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		ferr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				bad := ferr != nil
				mu.Unlock()
				if bad || i >= n {
					return
				}
				if err := run(i); err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return ferr
}

// MeanSaturatedContention runs the §VI-A diagnostic: uniform traffic at
// the given (over)load with the Base mechanism, returning the mean
// contention-counter value per output port averaged over the final
// `sample` cycles. Under saturation the paper estimates it at the mean
// number of VCs per input port (2.74 for the Table I router).
func MeanSaturatedContention(c Config, load float64, warmup, sample int64, seed uint64) (float64, error) {
	c.Algo = routing.Base
	net, err := BuildNetwork(c, seed)
	if err != nil {
		return 0, err
	}
	pat, err := UN().Pattern(net.Topo)
	if err != nil {
		return 0, err
	}
	inj, err := traffic.NewInjector(net, traffic.Constant(pat), load, seed)
	if err != nil {
		return 0, err
	}
	// Both loops step every cycle, deliberately un-elided: at a
	// saturating load the network is never quiet (so elision could not
	// fire anyway), and the sampling loop reads the contention counters
	// once per cycle — its observable is the per-cycle trajectory
	// itself, which a clock jump would undersample.
	for cyc := int64(0); cyc < warmup; cyc++ {
		inj.Cycle()
		net.Step()
	}
	var acc stats.Welford
	ports := float64(net.Topo.Radix())
	for cyc := int64(0); cyc < sample; cyc++ {
		inj.Cycle()
		net.Step()
		for _, r := range net.Routers {
			acc.Add(float64(r.Contention.Sum()) / ports)
		}
	}
	return acc.Mean(), nil
}
