package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/traffic"
)

// parallelRun drives one network for `cycles` cycles at the given worker
// count, recording the exact delivery trace (cycle, packet identity,
// path statistics, in callback order) and the per-packet latency
// histogram, and checking the full invariant sweep — including the
// algorithm StateChecker audits — after every parallel cycle.
func parallelRun(t *testing.T, c Config, w Workload, load float64, cycles int64, workers int) ([]string, map[int64]uint64, *router.Network) {
	t.Helper()
	c.Router.Workers = workers
	net, err := BuildNetwork(c, 2025)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Workers(); got != workers {
		t.Fatalf("built %d workers, want %d", got, workers)
	}
	pat, err := w.Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := w.injector(net, traffic.Constant(pat), load, 31)
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	hist := make(map[int64]uint64)
	net.OnDeliver = func(p *router.Packet, now int64) {
		trace = append(trace, fmt.Sprintf("%d #%d %d->%d hops=%d mis=%v/%d gen=%d",
			now, p.ID, p.Src, p.Dst, p.TotalHops, p.GlobalMisroute, p.LocalMisroutes, p.GenTime))
		hist[now-p.GenTime]++
	}
	// Invariants every cycle under parallel stepping (the satellite
	// contract: the incremental state must recompute and agree after
	// every parallel cycle); spot checks suffice for the sequential
	// reference, which the sequential equivalence suite already audits.
	checkEvery := int64(1)
	if workers == 1 {
		checkEvery = 250
	}
	for cyc := int64(0); cyc < cycles; cyc++ {
		inj.Cycle()
		net.Step()
		if (cyc+1)%checkEvery == 0 {
			if err := net.CheckInvariants(); err != nil {
				t.Fatalf("workers=%d cycle %d: %v", workers, cyc, err)
			}
		}
	}
	return trace, hist, net
}

// TestParallelStepEquivalence pins the shard-parallel stepper
// bit-for-bit to the sequential active-set stepper: for every mechanism
// family and workload family, the exact delivery trace (including the
// OnDeliver callback order), the latency histogram and the aggregate
// counters must be identical at workers ∈ {2, 3, 4} to the 1-worker
// run. This is the contract that lets a -workers flag change wall-clock
// time and nothing else.
func TestParallelStepEquivalence(t *testing.T) {
	cases := []struct {
		name string
		algo routing.Algo
		w    Workload
		load float64
	}{
		{"base-un", routing.Base, UN(), 0.3},
		{"base-adv1", routing.Base, ADV(1), 0.3},
		{"base-hotspot", routing.Base, HotspotUN(0.2, 4), 0.25},
		{"base-bursty", routing.Base, UN().WithBurst(40, 120, 0.8), 0.2},
		{"pb-un", routing.PB, UN(), 0.3},
		{"pb-adv1", routing.PB, ADV(1), 0.25},
		{"ectn-un", routing.ECtN, UN(), 0.3},
		{"ectn-adv1", routing.ECtN, ADV(1), 0.25},
		{"ectn-bursty", routing.ECtN, UN().WithBurst(40, 120, 0.8), 0.2},
		{"olm-adv1", routing.OLM, ADV(1), 0.3},
		{"olm-hotspot", routing.OLM, HotspotUN(0.2, 4), 0.25},
		{"val-un", routing.Valiant, UN(), 0.3},
		{"val-bursty", routing.Valiant, UN().WithBurst(40, 120, 0.8), 0.2},
	}
	const cycles = 1200
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConfig(Tiny.Params(), tc.algo)
			refTrace, refHist, refNet := parallelRun(t, c, tc.w, tc.load, cycles, 1)
			if len(refTrace) == 0 {
				t.Fatal("reference run delivered nothing; the case proves nothing")
			}
			for _, workers := range []int{2, 3, 4} {
				trace, hist, net := parallelRun(t, c, tc.w, tc.load, cycles, workers)
				if net.NumGenerated != refNet.NumGenerated || net.NumBlocked != refNet.NumBlocked {
					t.Fatalf("workers=%d generation diverged: %d/%d vs %d/%d",
						workers, net.NumGenerated, net.NumBlocked, refNet.NumGenerated, refNet.NumBlocked)
				}
				if net.NumDelivered != refNet.NumDelivered || net.DeliveredPhits != refNet.DeliveredPhits ||
					net.InFlight != refNet.InFlight {
					t.Fatalf("workers=%d delivery diverged: %d (%d phits, %d in flight) vs %d (%d phits, %d in flight)",
						workers, net.NumDelivered, net.DeliveredPhits, net.InFlight,
						refNet.NumDelivered, refNet.DeliveredPhits, refNet.InFlight)
				}
				if len(trace) != len(refTrace) {
					t.Fatalf("workers=%d trace length %d vs %d", workers, len(trace), len(refTrace))
				}
				for i := range trace {
					if trace[i] != refTrace[i] {
						t.Fatalf("workers=%d trace diverged at delivery %d:\n  got  %s\n  want %s",
							workers, i, trace[i], refTrace[i])
					}
				}
				if len(hist) != len(refHist) {
					t.Fatalf("workers=%d histogram has %d latencies vs %d", workers, len(hist), len(refHist))
				}
				//lint:ordered per-bin histogram equality; order cannot affect outcomes
				for lat, n := range refHist {
					if hist[lat] != n {
						t.Fatalf("workers=%d latency %d count %d vs %d", workers, lat, hist[lat], n)
					}
				}
			}
		})
	}
}

// TestParallelDrainForwardProgress proves forward progress under
// parallel stepping: a loaded 4-worker network must fully drain once
// injection stops, with the invariant sweep passing along the way.
func TestParallelDrainForwardProgress(t *testing.T) {
	c := NewConfig(Tiny.Params(), routing.ECtN)
	c.Router.Workers = 4
	net, err := BuildNetwork(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := ADV(1).Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(net, traffic.Constant(pat), 0.5, 13)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 600; cyc++ {
		inj.Cycle()
		net.Step()
	}
	if net.InFlight == 0 {
		t.Fatal("nothing in flight after the loaded phase; the drain proves nothing")
	}
	if !net.Drain(1 << 16) {
		t.Fatalf("network did not drain at 4 workers: %d packets stuck", net.InFlight)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if net.NumDelivered != net.NumGenerated {
		t.Fatalf("drained but delivered %d of %d", net.NumDelivered, net.NumGenerated)
	}
}

// TestParallelWorkersClamped pins the Build-time normalization: worker
// counts beyond the group count clamp to it, and zero/negative-free
// configs stay sequential.
func TestParallelWorkersClamped(t *testing.T) {
	c := NewConfig(Tiny.Params(), routing.Base) // 9 groups
	c.Router.Workers = 64
	net, err := BuildNetwork(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Workers(); got != net.Topo.Groups {
		t.Fatalf("workers %d, want clamp to %d groups", got, net.Topo.Groups)
	}
	c.Router.Workers = 0
	net, err = BuildNetwork(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Workers(); got != 1 {
		t.Fatalf("workers %d, want 1 for zero config", got)
	}
}

// TestParallelRejectsUnorderedHandoff pins the Build-time guard: shard
// parallelism requires cross-shard packet handoffs to be barrier-ordered
// (pipeline + global link latency must exceed the packet serialization
// time), otherwise two shards could touch one packet in the same cycle.
func TestParallelRejectsUnorderedHandoff(t *testing.T) {
	// Pipeline + global latency == packet size: the boundary Validate
	// accepts (tail-leave and head-arrive may share a cycle, which the
	// sequential bucket order resolves tail-first) but the shard
	// stepper must reject (two shards would touch the packet in the
	// same cycle, with no order between them).
	c := NewConfig(Tiny.Params(), routing.Base)
	c.Router.Workers = 2
	c.Router.PipelineLatency = 5
	c.Router.LatencyGlobal = 3
	c.Router.PacketSize = 8
	if _, err := BuildNetwork(c, 1); err == nil {
		t.Fatal("Build accepted workers=2 with PipelineLatency+LatencyGlobal <= PacketSize")
	} else if !strings.Contains(err.Error(), "barrier-ordered") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The same configuration is legal sequentially.
	c.Router.Workers = 1
	if _, err := BuildNetwork(c, 1); err != nil {
		t.Fatalf("sequential build rejected: %v", err)
	}
	// Strictly below the bound the packet would sit in two input queues
	// at once and the per-queue bookkeeping corrupts (contention-counter
	// underflow) — rejected for every worker count since the fix.
	c.Router.LatencyGlobal = 2
	if _, err := BuildNetwork(c, 1); err == nil {
		t.Fatal("Validate accepted PipelineLatency+LatencyGlobal < PacketSize")
	}
}

// TestAutoWorkersSkipUnshardableConfig: a config Build rejects for
// workers > 1 (handoffs not barrier-ordered) was a perfectly valid
// sequential sweep before sharding existed, and must stay one under the
// automatic worker split on any core count — auto mode falls back to
// sequential instead of surfacing the Build error. An explicit workers
// request still fails loudly: the caller asked for the impossible.
func TestAutoWorkersSkipUnshardableConfig(t *testing.T) {
	prev := runtime.GOMAXPROCS(8) // make the auto split want perRun > 1
	defer runtime.GOMAXPROCS(prev)
	c := NewConfig(Tiny.Params(), routing.Base)
	c.Router.PacketSize = 15
	c.Router.PipelineLatency = 5
	c.Router.LatencyGlobal = 10 // 5+10 == 15: sequentially valid, unshardable
	if autoShardable(c.Router) {
		t.Fatal("test config unexpectedly shardable")
	}
	rs, err := SweepSteady(c, UN(), []float64{0.1}, 200, 200, 1)
	if err != nil {
		t.Fatalf("auto worker split broke an unshardable-but-valid config: %v", err)
	}
	if rs[0].Delivered == 0 {
		t.Fatal("sequential fallback delivered nothing")
	}
	c.Router.Workers = 2
	if _, err := SweepSteady(c, UN(), []float64{0.1}, 200, 200, 1); err == nil {
		t.Fatal("explicit workers=2 on an unshardable config surfaced no error")
	}
}

// TestForEachTaskPanicRecovered is the regression test for the sweep
// pool's panic handling: a deliberately panicking task must neither kill
// the process nor wedge sibling workers — it surfaces as an error
// carrying the panic value, and tasks not yet started are cancelled.
func TestForEachTaskPanicRecovered(t *testing.T) {
	var started atomic.Int64
	err := forEachTaskN(1000, 4, func(i int) error {
		started.Add(1)
		if i == 3 {
			panic(fmt.Sprintf("deliberate panic in task %d", i))
		}
		// Siblings must not race through the whole grid before the
		// panicking worker's recover path sets the cancel flag — each
		// real seed run takes far longer than a recover does.
		time.Sleep(200 * time.Microsecond)
		return nil
	})
	if err == nil {
		t.Fatal("panicking task surfaced no error")
	}
	if !strings.Contains(err.Error(), "deliberate panic in task 3") {
		t.Fatalf("error lost the panic value: %v", err)
	}
	if !strings.Contains(err.Error(), "parallel_equiv_test.go") {
		t.Fatalf("error lost the panic stack: %v", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("panic did not cancel remaining tasks: %d started", n)
	}
}

// TestSweepSteadySurfacesTaskFailure pins the companion contract: a
// seed run that fails inside the worker pool surfaces its error from
// SweepSteady instead of being swallowed (the panic path rides the same
// ferr mechanism, exercised by TestForEachTaskPanicRecovered).
func TestSweepSteadySurfacesTaskFailure(t *testing.T) {
	c := NewConfig(Tiny.Params(), routing.Base)
	w := Workload{Kind: WorkloadKind(977)} // resolves to an error inside the task
	if _, err := SweepSteady(c, w, []float64{0.1}, 10, 10, 2); err == nil {
		t.Fatal("failing seed run produced no error")
	}
}
