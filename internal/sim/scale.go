package sim

import (
	"fmt"
	"math"
	"strings"

	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/topology"
)

// Scale selects one of the canned network sizes. The simulator code is
// identical at every scale; only topology parameters and the
// §VI-A-scaled thresholds change.
type Scale int

// Canned scales.
const (
	// Tiny: p=4,a=4,h=2 — 9 groups, 36 routers, 144 nodes. Used by the
	// test suite and the quickstart example.
	Tiny Scale = iota
	// Small: p=4,a=8,h=4 — 33 groups, 264 routers, 1056 nodes. The
	// default for benchmarks and figure regeneration on a laptop.
	Small
	// Paper: p=8,a=16,h=8 — 129 groups, 2064 routers, 16512 nodes,
	// 31-port routers; the exact Table I system.
	Paper
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Paper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale resolves a case-insensitive scale name.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("sim: unknown scale %q (tiny|small|paper)", s)
}

// Params returns the topology parameters of a scale.
func (s Scale) Params() topology.Params {
	switch s {
	case Tiny:
		return topology.Params{P: 4, A: 4, H: 2}
	case Small:
		return topology.Params{P: 4, A: 8, H: 4}
	default:
		return topology.Params{P: 8, A: 16, H: 8}
	}
}

// ScaledOptions returns Table I policy options with the contention
// thresholds rescaled to the topology following the paper's §VI-A
// analysis. Under saturated uniform traffic the mean contention counter
// approaches the mean VC count per input port, so the threshold must
// clear roughly twice that value to avoid false triggers (the paper's
// th=6 ≈ 2.2 × its 2.74 mean); below that, high-load uniform throughput
// collapses from spurious misrouting. The §VI-A injection-trigger bound
// (th ≤ p) cannot also hold on small-radix routers — the valid window
// is empty, as the paper notes when it observes that larger routers
// enlarge the range — so the uniform-safety bound wins and adversarial
// adaptation relies on queue backlog accumulating a few more heads.
// The ECtN combined threshold scales with the per-group injection width
// a·p (10 for the paper's 128).
func ScaledOptions(p topology.Params) routing.Options {
	o := routing.DefaultOptions()
	meanVCs := router.DefaultConfig(p).MeanVCsPerPort()
	th := int32(math.Round(2.2 * meanVCs))
	if th < 2 {
		th = 2
	}
	o.BaseTh = th
	o.HybridTh = th + 1
	comb := int32(math.Round(float64(p.A*p.P) * 10.0 / 128.0))
	if comb < 3 {
		comb = 3
	}
	o.CombinedTh = comb
	return o
}
