package sim

import (
	"fmt"
	"math"
	"testing"

	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/traffic"
)

// congestionOn returns a resolved-on-Build congestion config with every
// knob left at its default.
func congestionOn() router.CongestionConfig {
	return router.CongestionConfig{Enabled: true}
}

// congestionRun is parallelRun's congestion-aware sibling: it drives one
// network with the layer enabled and returns the delivery trace plus the
// injector, so callers can compare the throttle counter too.
func congestionRun(t *testing.T, c Config, w Workload, load float64, cycles int64, workers int) ([]string, *traffic.Injector, *router.Network) {
	t.Helper()
	c.Router.Workers = workers
	c.Router.Congestion = congestionOn()
	net, err := BuildNetwork(c, 2025)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := w.Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := w.injector(net, traffic.Constant(pat), load, 31)
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	net.OnDeliver = func(p *router.Packet, now int64) {
		trace = append(trace, fmt.Sprintf("%d #%d %d->%d hops=%d marks=%d gen=%d",
			now, p.ID, p.Src, p.Dst, p.TotalHops, p.ECNMarks, p.GenTime))
	}
	for cyc := int64(0); cyc < cycles; cyc++ {
		inj.Cycle()
		net.Step()
		if workers > 1 {
			if err := net.CheckInvariants(); err != nil {
				t.Fatalf("workers=%d cycle %d: %v", workers, cyc, err)
			}
		}
	}
	return trace, inj, net
}

// TestParallelCongestionEquivalence pins the congestion loop — marking,
// notification replay, AIMD throttling, NIC shedding — bit-for-bit
// across worker counts: the delivery trace (ECN marks included) and
// every congestion counter must be identical at workers ∈ {2, 3, 4} to
// the 1-worker run. This is the determinism property the notification
// replay order (ascending source node at the handle barrier) exists for.
func TestParallelCongestionEquivalence(t *testing.T) {
	cases := []struct {
		name string
		algo routing.Algo
		w    Workload
		load float64
	}{
		{"base-hotspot", routing.Base, HotspotUN(0.3, 8), 0.7},
		{"base-adv1", routing.Base, ADV(1), 0.5},
		{"min-hotspot", routing.Min, HotspotUN(0.3, 8), 0.7},
		{"ectn-bursty-hotspot", routing.ECtN, HotspotUN(0.2, 4).WithBurst(40, 120, 0.8), 0.4},
	}
	const cycles = 1200
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConfig(Tiny.Params(), tc.algo)
			refTrace, refInj, refNet := congestionRun(t, c, tc.w, tc.load, cycles, 1)
			if refNet.NumMarked == 0 || refNet.NumNotified == 0 || refInj.Throttled() == 0 {
				t.Fatalf("reference run exercised no congestion (marked=%d notified=%d throttled=%d); the case proves nothing",
					refNet.NumMarked, refNet.NumNotified, refInj.Throttled())
			}
			for _, workers := range []int{2, 3, 4} {
				trace, inj, net := congestionRun(t, c, tc.w, tc.load, cycles, workers)
				if net.NumMarked != refNet.NumMarked || net.NumNotified != refNet.NumNotified ||
					net.NumShed != refNet.NumShed || inj.Throttled() != refInj.Throttled() {
					t.Fatalf("workers=%d congestion counters diverged: marked %d/%d notified %d/%d shed %d/%d throttled %d/%d",
						workers, net.NumMarked, refNet.NumMarked, net.NumNotified, refNet.NumNotified,
						net.NumShed, refNet.NumShed, inj.Throttled(), refInj.Throttled())
				}
				if net.NumDelivered != refNet.NumDelivered || net.NumGenerated != refNet.NumGenerated {
					t.Fatalf("workers=%d delivery diverged: %d/%d delivered, %d/%d generated",
						workers, net.NumDelivered, refNet.NumDelivered, net.NumGenerated, refNet.NumGenerated)
				}
				if len(trace) != len(refTrace) {
					t.Fatalf("workers=%d trace length %d vs %d", workers, len(trace), len(refTrace))
				}
				for i := range trace {
					if trace[i] != refTrace[i] {
						t.Fatalf("workers=%d trace diverged at delivery %d:\n  got  %s\n  want %s",
							workers, i, trace[i], refTrace[i])
					}
				}
			}
		})
	}
}

// TestCongestionOffIsInert pins the off-mode contract: a zero-valued
// CongestionConfig must leave the simulation bit-identical to a build
// that predates the layer — no marks, no notifications, no sheds, no
// throttle — so the golden CSVs stay byte-for-byte stable.
func TestCongestionOffIsInert(t *testing.T) {
	c := NewConfig(Tiny.Params(), routing.Base)
	net, err := BuildNetwork(c, 2025)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := HotspotUN(0.3, 8).Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(net, traffic.Constant(pat), 0.7, 31)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 800; cyc++ {
		inj.Cycle()
		net.Step()
	}
	if net.NumMarked != 0 || net.NumNotified != 0 || net.NumShed != 0 || inj.Throttled() != 0 {
		t.Fatalf("congestion-off run produced activity: marked=%d notified=%d shed=%d throttled=%d",
			net.NumMarked, net.NumNotified, net.NumShed, inj.Throttled())
	}
	if net.OnNotify != nil {
		t.Fatal("congestion-off injector installed an OnNotify callback")
	}
	if got := inj.RatePct(0); got != 100 {
		t.Fatalf("congestion-off rate %d%%, want 100%%", got)
	}
}

// TestCongestionConvergenceHotspot is the acceptance scenario: on the
// saturated hotspot point (30% of traffic at 8 hot nodes, offered load
// 0.7) the AIMD loop must sustain at least the uncontrolled accepted
// throughput past the knee — shedding and throttling shift loss to the
// sources instead of letting the fabric's queues absorb it.
func TestCongestionConvergenceHotspot(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed steady-state runs in -short mode")
	}
	b := Budget{Warmup: 1200, Measure: 1200, Seeds: 2}
	c := NewConfig(Tiny.Params(), routing.Base)
	w := HotspotUN(0.3, 8)
	off, err := RunSteadyBudget(c, w, 0.7, b)
	if err != nil {
		t.Fatal(err)
	}
	bc := b
	bc.Congestion = congestionOn()
	c.Router.Congestion = bc.Congestion
	on, err := RunSteadyBudget(c, w, 0.7, bc)
	if err != nil {
		t.Fatal(err)
	}
	if off.Marked != 0 || off.Shed != 0 {
		t.Fatalf("congestion-off result reports activity: marked=%d shed=%d", off.Marked, off.Shed)
	}
	if on.Marked == 0 || on.Notified == 0 || on.Throttled == 0 {
		t.Fatalf("congestion-on run exercised no loop: marked=%d notified=%d throttled=%d",
			on.Marked, on.Notified, on.Throttled)
	}
	if on.Accepted < off.Accepted {
		t.Fatalf("congestion-on accepted %.4f below uncontrolled %.4f past the knee",
			on.Accepted, off.Accepted)
	}
	if on.AvgLatency > off.AvgLatency {
		t.Fatalf("congestion-on latency %.2f above uncontrolled %.2f: throttling should shorten queues",
			on.AvgLatency, off.AvgLatency)
	}
}

// TestCongestionShedBoundsBacklog pins graceful degradation: with the
// layer enabled, no NIC backlog may ever exceed the shed cap — injection
// sheds (counted) instead of queueing into the deep NIC buffer.
func TestCongestionShedBoundsBacklog(t *testing.T) {
	c := NewConfig(Tiny.Params(), routing.Base)
	c.Router.Congestion = congestionOn()
	net, err := BuildNetwork(c, 2025)
	if err != nil {
		t.Fatal(err)
	}
	cap := net.Cfg.Congestion.ShedCap
	if cap < 1 || cap > c.Router.NICQueuePackets {
		t.Fatalf("resolved shed cap %d outside [1,%d]", cap, c.Router.NICQueuePackets)
	}
	pat, err := HotspotUN(0.3, 8).Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(net, traffic.Constant(pat), 0.9, 31)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 1500; cyc++ {
		inj.Cycle()
		net.Step()
		for node := 0; node < net.Topo.Nodes; node++ {
			if got := net.NICBacklog(node); got > cap {
				t.Fatalf("cycle %d: node %d backlog %d exceeds shed cap %d", cyc, node, got, cap)
			}
		}
	}
	if net.NumShed == 0 {
		t.Fatal("overloaded run shed nothing; the bound proves nothing")
	}
}

// TestSatDetectorBurstWindow pins the bursty widening of the saturation
// detector's trailing window: satBurstPeriods ON+OFF source periods, in
// buckets, never below the memoryless default.
func TestSatDetectorBurstWindow(t *testing.T) {
	c := NewConfig(Tiny.Params(), routing.Base)
	net, err := BuildNetwork(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := newSatDetector(net, SourceSpec{}).window; got != satWindow {
		t.Fatalf("memoryless window %d, want %d", got, satWindow)
	}
	// Short bursts fit inside the default window: no widening.
	short := SourceSpec{Bursty: true, OnMean: 40, OffMean: 120}
	if got := newSatDetector(net, short).window; got != satWindow {
		t.Fatalf("short-period window %d, want default %d", got, satWindow)
	}
	// Long periods widen it to satBurstPeriods periods.
	long := SourceSpec{Bursty: true, OnMean: 400, OffMean: 600}
	want := int(math.Ceil(satBurstPeriods * (long.OnMean + long.OffMean) / adaptiveBucket))
	if got := newSatDetector(net, long).window; got != want {
		t.Fatalf("long-period window %d, want %d", got, want)
	}
	if want <= satWindow {
		t.Fatalf("test spec does not exceed the default window (%d <= %d)", want, satWindow)
	}
}
