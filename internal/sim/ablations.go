package sim

import (
	"fmt"
	"io"

	"cbar/internal/routing"
)

// Ablations quantify the design choices called out in DESIGN.md beyond
// the paper's own figures:
//
//   - the ECtN exchange period (the paper fixes 100 cycles and discusses
//     cheaper encodings in §VI-B — the period is the latency/overhead
//     knob);
//   - the allocator's 2× internal speedup (Table I; compensates the
//     separable allocator's matching loss);
//   - the 4-bit saturation of broadcast partial counters (§VI-B sizes
//     the broadcast with 4-bit fields);
//   - Base's threshold at the exact §VI-A bounds.
//
// Each ablation prints a small CSV comparable across its variants.

// AblationECtNPeriod measures ECtN's post-switch adaptation (mean
// misrouted percentage in an early delivery window) as a function of the
// exchange period.
func AblationECtNPeriod(s Scale, b Budget, w io.Writer) error {
	load := transientLoad(s)
	fmt.Fprintf(w, "# ablation: ECtN exchange period (UN->ADV+1 at load %.2f)\n", load)
	fmt.Fprintln(w, "period_cycles,early_misrouted_pct,late_misrouted_pct")
	for _, period := range []int64{25, 50, 100, 200, 400} {
		cfg := NewConfig(s.Params(), routing.ECtN)
		cfg.Opts.ECtNPeriod = period
		r, err := RunTransient(cfg, UN(), ADV(1), load, b.TransientWarmup, 0, b.Post, b.Bucket, b.Seeds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d,%.1f,%.1f\n", period,
			windowMean(r, 150, 350, r.MisroutedPct),
			windowMean(r, 350, b.Post, r.MisroutedPct))
	}
	return nil
}

// AblationSpeedup measures uniform-traffic throughput near saturation
// with and without the 2× allocator speedup.
func AblationSpeedup(s Scale, b Budget, w io.Writer) error {
	fmt.Fprintln(w, "# ablation: allocator internal speedup (UN at high load, Base)")
	fmt.Fprintln(w, "speedup,load,avg_latency_cycles,accepted_phits_node_cycle")
	for _, speedup := range []int{1, 2, 3} {
		for _, load := range []float64{0.5, 0.8} {
			cfg := NewConfig(s.Params(), routing.Base)
			cfg.Router.Speedup = speedup
			r, err := RunSteadyBudget(cfg, UN(), load, b)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d,%.2f,%.2f,%.4f\n", speedup, load, r.AvgLatency, r.Accepted)
		}
	}
	return nil
}

// AblationLocalVCs measures adversarial throughput for Base with 3
// (Table I) versus 4 local VCs: the extra lane relaxes the local
// misroute budget guard.
func AblationLocalVCs(s Scale, b Budget, w io.Writer) error {
	h := s.Params().H
	fmt.Fprintf(w, "# ablation: local VC count under ADV+%d (Base)\n", h)
	fmt.Fprintln(w, "local_vcs,load,avg_latency_cycles,accepted_phits_node_cycle,misrouted_local_frac")
	for _, vcs := range []int{3, 4} {
		for _, load := range []float64{0.15, 0.3} {
			cfg := NewConfig(s.Params(), routing.Base)
			cfg.Router.VCsLocal = vcs
			r, err := RunSteadyBudget(cfg, ADV(h), load, b)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d,%.2f,%.2f,%.4f,%.4f\n", vcs, load, r.AvgLatency, r.Accepted, r.MisroutedLocal)
		}
	}
	return nil
}

// AblationThresholdBounds pins Base's threshold at the exact §VI-A
// bounds — the saturated-counter mean (rounded) and the injection-port
// count — and reports both traffic classes.
func AblationThresholdBounds(s Scale, b Budget, w io.Writer) error {
	p := s.Params()
	cfg := NewConfig(p, routing.Base)
	meanVCs := cfg.Router.MeanVCsPerPort()
	lower := int32(meanVCs + 0.5)
	upper := int32(p.P)
	fmt.Fprintf(w, "# ablation: Base threshold at the §VI-A bounds (meanVCs=%.2f -> lower %d, p=%d -> upper %d)\n",
		meanVCs, lower, p.P, upper)
	fmt.Fprintln(w, "threshold,traffic,avg_latency_cycles,accepted_phits_node_cycle")
	for _, th := range []int32{lower, upper} {
		for _, tc := range []struct {
			w    Workload
			load float64
		}{{UN(), 0.5}, {ADV(1), 0.2}} {
			c := cfg
			c.Opts.BaseTh = th
			r, err := RunSteadyBudget(c, tc.w, tc.load, b)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d,%s,%.2f,%.4f\n", th, r.Workload, r.AvgLatency, r.Accepted)
		}
	}
	return nil
}

// AblationStatisticalTrigger contrasts Base's hard threshold with the
// §VI-C statistical trigger (BaseProb) under heavy adversarial load:
// the paper observes that a fixed threshold can divert *all* traffic
// nonminimally while the minimal path sits empty; the statistical
// variant keeps the minimal path carrying a share.
func AblationStatisticalTrigger(s Scale, b Budget, w io.Writer) error {
	fmt.Fprintln(w, "# ablation: §VI-C statistical misrouting trigger under ADV+1")
	fmt.Fprintln(w, "algo,load,avg_latency_cycles,accepted_phits_node_cycle,misrouted_global_frac")
	for _, algo := range []routing.Algo{routing.Base, routing.BaseProb} {
		for _, load := range []float64{0.1, 0.2} {
			cfg := NewConfig(s.Params(), algo)
			r, err := RunSteadyBudget(cfg, ADV(1), load, b)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s,%.2f,%.2f,%.4f,%.4f\n", r.Algo, load, r.AvgLatency, r.Accepted, r.MisroutedGlobal)
		}
	}
	return nil
}

// windowMean averages series values whose time lies in [lo, hi).
func windowMean(r TransientResult, lo, hi int64, series []float64) float64 {
	var s float64
	n := 0
	for i, t := range r.Times {
		if t >= lo && t < hi {
			s += series[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// AblationExperiments returns the ablation set in registry form.
func AblationExperiments() []Experiment {
	return []Experiment{
		{"abl-ectn-period", "Ablation: ECtN exchange period vs adaptation speed", func(s Scale, b Budget, w io.Writer) error {
			return AblationECtNPeriod(s, b, w)
		}},
		{"abl-speedup", "Ablation: allocator internal speedup vs throughput", func(s Scale, b Budget, w io.Writer) error {
			return AblationSpeedup(s, b, w)
		}},
		{"abl-local-vcs", "Ablation: local VC count under ADV+h", func(s Scale, b Budget, w io.Writer) error {
			return AblationLocalVCs(s, b, w)
		}},
		{"abl-th-bounds", "Ablation: Base threshold at the §VI-A bounds", func(s Scale, b Budget, w io.Writer) error {
			return AblationThresholdBounds(s, b, w)
		}},
		{"abl-statistical", "Ablation: §VI-C statistical trigger vs Base under ADV+1", func(s Scale, b Budget, w io.Writer) error {
			return AblationStatisticalTrigger(s, b, w)
		}},
	}
}
