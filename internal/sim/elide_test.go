package sim

import (
	"fmt"
	"reflect"
	"testing"

	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/traffic"
)

// elideRun drives one (injector, network) pair for `cycles` cycles,
// either plainly stepping every cycle or eliding quiet spans through
// the production elideStep, and records the exact delivery trace, the
// drop trace, the latency histogram, and how many cycles were actually
// stepped (vs jumped). The invariant sweep runs after every stepped
// cycle; elided spans are covered by the final sweep — by construction
// nothing in the network changes across them.
func elideRun(t *testing.T, c Config, w Workload, load float64, cycles int64, workers int, elide bool) (trace, drops []string, hist map[int64]uint64, inj *traffic.Injector, net *router.Network, stepped int64) {
	t.Helper()
	c.Router.Workers = workers
	net, err := BuildNetwork(c, 2025)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := w.Pattern(net.Topo)
	if err != nil {
		t.Fatal(err)
	}
	inj, err = w.injector(net, traffic.Constant(pat), load, 31)
	if err != nil {
		t.Fatal(err)
	}
	hist = make(map[int64]uint64)
	net.OnDeliver = func(p *router.Packet, now int64) {
		trace = append(trace, fmt.Sprintf("%d #%d %d->%d hops=%d mis=%v/%d gen=%d att=%d",
			now, p.ID, p.Src, p.Dst, p.TotalHops, p.GlobalMisroute, p.LocalMisroutes, p.GenTime, p.Attempt))
		hist[now-p.GenTime]++
	}
	retry := net.OnDrop
	net.OnDrop = func(p *router.Packet, now int64) {
		drops = append(drops, fmt.Sprintf("%d #%d %d->%d att=%d", now, p.ID, p.Src, p.Dst, p.Attempt))
		if retry != nil {
			retry(p, now)
		}
	}
	for net.Now() < cycles {
		if elide && elideStep(net, inj, cycles) {
			continue
		}
		inj.Cycle()
		net.Step()
		stepped++
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("workers=%d elide=%v cycle %d: %v", workers, elide, net.Now(), err)
		}
	}
	return trace, drops, hist, inj, net, stepped
}

// compareArms asserts the elided arm reproduced the stepped arm
// bit-for-bit: delivery trace (callback order included), drop trace,
// latency histogram, and every aggregate counter.
func compareArms(t *testing.T, label string,
	refTrace, trace, refDrops, drops []string,
	refHist, hist map[int64]uint64,
	refNet, net *router.Network, refInj, inj *traffic.Injector) {
	t.Helper()
	if net.NumGenerated != refNet.NumGenerated || net.NumBlocked != refNet.NumBlocked ||
		net.NumDelivered != refNet.NumDelivered || net.DeliveredPhits != refNet.DeliveredPhits ||
		net.InFlight != refNet.InFlight || net.NumDropped != refNet.NumDropped ||
		net.NumUnroutable != refNet.NumUnroutable {
		t.Fatalf("%s: counters diverged:\n  got  gen=%d blk=%d del=%d phits=%d inflight=%d drop=%d unr=%d\n  want gen=%d blk=%d del=%d phits=%d inflight=%d drop=%d unr=%d",
			label,
			net.NumGenerated, net.NumBlocked, net.NumDelivered, net.DeliveredPhits, net.InFlight, net.NumDropped, net.NumUnroutable,
			refNet.NumGenerated, refNet.NumBlocked, refNet.NumDelivered, refNet.DeliveredPhits, refNet.InFlight, refNet.NumDropped, refNet.NumUnroutable)
	}
	if net.NumMarked != refNet.NumMarked || net.NumNotified != refNet.NumNotified ||
		net.NumShed != refNet.NumShed || inj.Throttled() != refInj.Throttled() {
		t.Fatalf("%s: congestion counters diverged: marked %d/%d notified %d/%d shed %d/%d throttled %d/%d",
			label, net.NumMarked, refNet.NumMarked, net.NumNotified, refNet.NumNotified,
			net.NumShed, refNet.NumShed, inj.Throttled(), refInj.Throttled())
	}
	if len(trace) != len(refTrace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(trace), len(refTrace))
	}
	for i := range trace {
		if trace[i] != refTrace[i] {
			t.Fatalf("%s: trace diverged at delivery %d:\n  got  %s\n  want %s", label, i, trace[i], refTrace[i])
		}
	}
	if len(drops) != len(refDrops) {
		t.Fatalf("%s: drop trace length %d vs %d", label, len(drops), len(refDrops))
	}
	for i := range drops {
		if drops[i] != refDrops[i] {
			t.Fatalf("%s: drop trace diverged at %d:\n  got  %s\n  want %s", label, i, drops[i], refDrops[i])
		}
	}
	if len(hist) != len(refHist) {
		t.Fatalf("%s: histogram has %d latencies vs %d", label, len(hist), len(refHist))
	}
	//lint:ordered per-bin histogram equality; order cannot affect outcomes
	for lat, n := range refHist {
		if hist[lat] != n {
			t.Fatalf("%s: latency %d count %d vs %d", label, lat, hist[lat], n)
		}
	}
}

// TestElisionEquivalence is the tentpole acceptance gate: for
// {Base, PB, ECtN} × {idle uniform, bursty long-OFF, faults-armed},
// at workers 1–4, an elided run must be bit-identical to plainly
// stepping every cycle — same delivery and drop traces (callback order
// included), same latency histogram, same counters — while actually
// jumping a substantial share of the clock.
func TestElisionEquivalence(t *testing.T) {
	type regime struct {
		name   string
		w      Workload
		load   float64
		faults bool
	}
	regimes := []regime{
		// Deep-idle Bernoulli arrivals: long quiet gaps between packets.
		{"un-idle", UN(), 0.002, false},
		// On-off arrivals with long OFF phases: the calendar heap is the
		// horizon; jumps land exactly on the next scheduled arrival.
		{"bursty-longoff", UN().WithBurst(30, 600, 0.3), 0.02, false},
		// The fault-equivalence plan armed over an idle run: link and
		// router events (and the random cable batch) land mid-span, and
		// retransmission keeps the retry heap in the horizon.
		{"faults-armed", UN(), 0.005, true},
	}
	algos := []routing.Algo{routing.Base, routing.PB, routing.ECtN}
	const cycles = 1200
	for _, algo := range algos {
		for _, rg := range regimes {
			t.Run(fmt.Sprintf("%v-%s", algo, rg.name), func(t *testing.T) {
				c := NewConfig(Tiny.Params(), algo)
				if rg.faults {
					c.Router.Faults = faultPlan()
				}
				for _, workers := range []int{1, 2, 3, 4} {
					refTrace, refDrops, refHist, refInj, refNet, refSteps := elideRun(t, c, rg.w, rg.load, cycles, workers, false)
					if refSteps != cycles {
						t.Fatalf("workers=%d: stepped arm ran %d steps, want %d", workers, refSteps, cycles)
					}
					if len(refTrace) == 0 {
						t.Fatal("stepped arm delivered nothing; the case proves nothing")
					}
					trace, drops, hist, inj, net, steps := elideRun(t, c, rg.w, rg.load, cycles, workers, true)
					if steps >= cycles {
						t.Fatalf("workers=%d: elided arm stepped every one of the %d cycles; nothing was elided", workers, cycles)
					}
					compareArms(t, fmt.Sprintf("workers=%d", workers),
						refTrace, trace, refDrops, drops, refHist, hist, refNet, net, refInj, inj)
				}
			})
		}
	}
}

// TestElisionFaultEventMidSpan pins the fault term of the horizon at
// the router level, with no injector at all: on an empty network whose
// only scheduled work is a fault plan, ElideHorizon must land exactly
// on each fault cycle (never beyond it), Step must apply the event
// there, and the next query must move to the following event.
func TestElisionFaultEventMidSpan(t *testing.T) {
	t.Parallel()
	c := NewConfig(Tiny.Params(), routing.Base)
	c.Router.Faults = router.FaultConfig{
		Events: []router.FaultEvent{
			{Kind: router.LinkDown, Router: 5, Port: 7, Cycle: 500},
			{Kind: router.RouterDown, Router: 12, Cycle: 700},
			{Kind: router.LinkUp, Router: 5, Port: 7, Cycle: 900},
			{Kind: router.RouterUp, Router: 12, Cycle: 1000},
		},
	}
	net, err := BuildNetwork(c, 2025)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int64{500, 700, 900, 1000} {
		j, ok := net.ElideHorizon(1 << 30)
		if !ok || j != want {
			t.Fatalf("at cycle %d: ElideHorizon = (%d, %v), want (%d, true)", net.Now(), j, ok, want)
		}
		net.ElideTo(j)
		if j2, ok2 := net.ElideHorizon(1 << 30); ok2 {
			t.Fatalf("at fault cycle %d: ElideHorizon = (%d, true), want pinned to stepping", j, j2)
		}
		net.Step() // applies the due fault event
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("after fault at %d: %v", j, err)
		}
	}
	// All events consumed: the horizon is now unbounded up to the target.
	if j, ok := net.ElideHorizon(4000); !ok || j != 4000 {
		t.Fatalf("after last event: ElideHorizon = (%d, %v), want (4000, true)", j, ok)
	}
	// The elided fault application must leave the same fabric behind as
	// stepped application: probe both with identical traffic and compare.
	stepNet, err := BuildNetwork(c, 2025)
	if err != nil {
		t.Fatal(err)
	}
	for stepNet.Now() < net.Now() {
		stepNet.Step()
	}
	probe := func(n *router.Network) []string {
		pat, err := UN().Pattern(n.Topo)
		if err != nil {
			t.Fatal(err)
		}
		inj, err := traffic.NewInjector(n, traffic.Constant(pat), 0.1, 31)
		if err != nil {
			t.Fatal(err)
		}
		var trace []string
		n.OnDeliver = func(p *router.Packet, now int64) {
			trace = append(trace, fmt.Sprintf("%d #%d %d->%d hops=%d", now, p.ID, p.Src, p.Dst, p.TotalHops))
		}
		end := n.Now() + 300
		for n.Now() < end {
			inj.Cycle()
			n.Step()
		}
		return trace
	}
	elided, stepped := probe(net), probe(stepNet)
	if len(elided) == 0 || !reflect.DeepEqual(elided, stepped) {
		t.Fatalf("post-fault probe diverged (elided %d deliveries, stepped %d)", len(elided), len(stepped))
	}
}

// TestElisionMeasurementBitIdentical runs the full public entry points
// — fixed-window steady state, the adaptive budget path (bucket
// boundaries crossing jumps), and the transient tracer — with elision
// on and off, at loads idle enough to elide heavily. The complete
// result structs must match exactly: elided buckets are synthesized,
// never skipped.
func TestElisionMeasurementBitIdentical(t *testing.T) {
	c := tinyCfg(routing.ECtN)
	run := func() (SteadyResult, SteadyResult, TransientResult) {
		fixed, err := RunSteady(c, UN(), 0.01, 600, 900, 2)
		if err != nil {
			t.Fatal(err)
		}
		adaptive, err := RunSteadyBudget(c, UN(), 0.01, Budget{Warmup: 800, Measure: 2000, MaxMeasure: 4000, Seeds: 2, Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		transient, err := RunTransient(c, UN(), ADV(1), 0.01, 600, 300, 600, 50, 2)
		if err != nil {
			t.Fatal(err)
		}
		return fixed, adaptive, transient
	}
	fixedOn, adaptiveOn, transientOn := run()
	elisionOff = true
	defer func() { elisionOff = false }()
	fixedOff, adaptiveOff, transientOff := run()
	if fixedOn != fixedOff {
		t.Errorf("fixed-window steady state diverged under elision:\nelided:  %+v\nstepped: %+v", fixedOn, fixedOff)
	}
	if adaptiveOn != adaptiveOff {
		t.Errorf("adaptive steady state diverged under elision:\nelided:  %+v\nstepped: %+v", adaptiveOn, adaptiveOff)
	}
	if !reflect.DeepEqual(transientOn, transientOff) {
		t.Errorf("transient trace diverged under elision:\nelided:  %+v\nstepped: %+v", transientOn, transientOff)
	}
}
