package sim

import (
	"testing"

	"cbar/internal/routing"
)

// TestAdaptiveOffBitIdentical: with Adaptive unset, the Budget entry
// points must reproduce the fixed-window entry points exactly — the
// whole result struct, not just the CSV columns. This is the in-tree
// half of the byte-identity contract; the golden-output gate pins it
// across commits through the CLI.
func TestAdaptiveOffBitIdentical(t *testing.T) {
	t.Parallel()
	c := tinyCfg(routing.Base)
	want, err := RunSteady(c, UN(), 0.2, 500, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSteadyBudget(c, UN(), 0.2, Budget{Warmup: 500, Measure: 500, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Adaptive:false differs from fixed windows:\nfixed:  %+v\nbudget: %+v", want, got)
	}
	if want.MeasuredCycles != 500*2 || want.WarmupCycles != 500 {
		t.Fatalf("fixed-mode accounting wrong: %+v", want)
	}
	if want.Converged || want.Saturated || want.CIHalfLatency != 0 {
		t.Fatalf("fixed mode must leave adaptive fields zero: %+v", want)
	}
}

// TestAdaptiveConvergesWithFewerCycles: an unsaturated uniform point
// must hit the 5%% relative-CI target while spending well under the
// fixed measurement budget, and agree with the fixed-window estimate.
func TestAdaptiveConvergesWithFewerCycles(t *testing.T) {
	t.Parallel()
	// Small-scale-like windows on the tiny topology keep the test fast:
	// the point of comparison is the budget the fixed path would spend.
	b := Budget{Warmup: 1200, Measure: 2500, Seeds: 2, Adaptive: true}
	for _, algo := range []routing.Algo{routing.Base, routing.ECtN} {
		r, err := RunSteadyBudget(tinyCfg(algo), UN(), 0.2, b)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Converged || r.Saturated {
			t.Fatalf("%v: unsaturated UN point did not converge cleanly: %+v", algo, r)
		}
		fixedTotal := b.Measure * int64(b.Seeds)
		if r.MeasuredCycles > fixedTotal*7/10 {
			t.Errorf("%v: adaptive spent %d measured cycles, want <= 70%% of fixed %d",
				algo, r.MeasuredCycles, fixedTotal)
		}
		if r.CIHalfLatency <= 0 || r.CIHalfLatency > 0.05*r.AvgLatency {
			t.Errorf("%v: CI half-width %v not within 5%% of mean %v", algo, r.CIHalfLatency, r.AvgLatency)
		}
		if r.WarmupCycles <= 0 || r.WarmupCycles > b.Warmup {
			t.Errorf("%v: truncated warmup %d outside (0, %d]", algo, r.WarmupCycles, b.Warmup)
		}
		fixed, err := RunSteady(tinyCfg(algo), UN(), 0.2, b.Warmup, b.Measure, b.Seeds)
		if err != nil {
			t.Fatal(err)
		}
		if rel := (r.AvgLatency - fixed.AvgLatency) / fixed.AvgLatency; rel < -0.1 || rel > 0.1 {
			t.Errorf("%v: adaptive latency %v vs fixed %v (%.1f%% apart)",
				algo, r.AvgLatency, fixed.AvgLatency, rel*100)
		}
	}
}

// TestAdaptiveSaturationShortCircuit: a hopelessly saturated
// adversarial point must be cut short by the backlog/throttling
// detector well before the adaptive cycle cap, flagged Saturated.
func TestAdaptiveSaturationShortCircuit(t *testing.T) {
	t.Parallel()
	b := Budget{Warmup: 2000, Measure: 2500, MaxMeasure: 10000, Seeds: 2, Adaptive: true}
	r, err := RunSteadyBudget(tinyCfg(routing.Base), ADV(1), 0.7, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Saturated || r.Converged {
		t.Fatalf("ADV+1 at 0.7 with Base not flagged saturated: %+v", r)
	}
	// The detector needs ~satWindow buckets of evidence; anything close
	// to the warmup+measurement budget means it never fired.
	perSeedBudget := b.Warmup + b.MaxMeasure
	if r.MeasuredCycles >= perSeedBudget*int64(b.Seeds)/2 {
		t.Fatalf("saturated point burned %d cycles of the %d budget", r.MeasuredCycles, perSeedBudget*int64(b.Seeds))
	}
	if r.Accepted <= 0 || r.Delivered == 0 {
		t.Fatalf("saturated point reported no throughput evidence: %+v", r)
	}
}

// TestBudgetValidation: degenerate windows must be rejected with
// errors, not silently produce empty or skewed results.
func TestBudgetValidation(t *testing.T) {
	t.Parallel()
	c := tinyCfg(routing.Min)
	cases := []Budget{
		{Warmup: -1, Measure: 100, Seeds: 1},                                  // negative warmup
		{Warmup: 100, Measure: 0, Seeds: 1},                                   // empty measurement
		{Warmup: 100, Measure: 100, Seeds: 0},                                 // no repeats
		{Warmup: 100, Measure: 100, Seeds: -2},                                // negative repeats
		{Warmup: 100, Measure: 100, Seeds: 1, Adaptive: true, CIRelWidth: 2},  // CI target >= 1
		{Warmup: 100, Measure: 100, Seeds: 1, Adaptive: true, CIRelWidth: -1}, // negative CI target
		{Warmup: 100, Measure: 100, Seeds: 1, Adaptive: true, MaxMeasure: -5}, // negative cap
	}
	for i, b := range cases {
		if _, err := RunSteadyBudget(c, UN(), 0.1, b); err == nil {
			t.Errorf("case %d: budget %+v accepted", i, b)
		}
	}
	// The legacy entry point now validates too (it used to clamp
	// seeds < 1 to 1 silently).
	if _, err := RunSteady(c, UN(), 0.1, 100, 100, 0); err == nil {
		t.Error("RunSteady with 0 seeds accepted")
	}
	// A positive MaxMeasure below the stopping rule's minimum series
	// length is floored, not honored: the run must still reach at least
	// one CI check instead of exiting with a zero half-width.
	small := Budget{Warmup: 300, Measure: 100, MaxMeasure: 200, Seeds: 1, Adaptive: true}
	r, err := RunSteadyBudget(c, UN(), 0.2, small)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Saturated && r.CIHalfLatency <= 0 {
		t.Errorf("tiny MaxMeasure produced no CI estimate: %+v", r)
	}
	// Transient: bucket wider than the post window, negative pre, and
	// non-positive bucket/seeds all error.
	if _, err := RunTransient(c, UN(), ADV(1), 0.2, 500, 100, 200, 0, 1); err == nil {
		t.Error("bucket 0 accepted")
	}
	if _, err := RunTransient(c, UN(), ADV(1), 0.2, 500, -1, 200, 10, 1); err == nil {
		t.Error("negative pre accepted")
	}
	if _, err := RunTransient(c, UN(), ADV(1), 0.2, 500, 100, 200, 10, 0); err == nil {
		t.Error("0 transient seeds accepted")
	}
}
