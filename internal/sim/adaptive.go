package sim

import (
	"math"

	"cbar/internal/router"
	"cbar/internal/stats"
	"cbar/internal/traffic"
)

// Adaptive measurement engine. Instead of the paper's fixed
// warmup+measure windows, an adaptive steady-state run spends cycles
// only where the statistics demand them:
//
//  1. Warmup truncation: the run streams per-bucket mean delivery
//     latency and applies the MSER rule (stats.MSERTruncate) until the
//     detected truncation point is well inside the collected series —
//     the initialization transient is over. Budget.Warmup caps the
//     phase, so adaptive warmup never exceeds the fixed budget's.
//  2. CI-driven stopping: measurement then proceeds bucket by bucket,
//     maintaining batch-means 95% confidence intervals (fixed batch
//     count, growing batch size) on mean latency and throughput. The
//     run stops when both relative half-widths drop below
//     Budget.CIRelWidth — with a guard that a batch spans at least one
//     mean latency, so neighboring batches are roughly decorrelated —
//     or when Budget.MaxMeasure cycles have been spent.
//  3. Saturation short-circuit: a point past its saturation load never
//     converges — backlog grows without bound until the NIC queues fill
//     and then the sources throttle. The detector watches the in-flight
//     packet population trend and the blocked-injection fraction over a
//     trailing window and bails out early, marking the result
//     Saturated, instead of spending the full cycle cap.
//
// All knobs below are in buckets of adaptiveBucket cycles. They trade
// statistical delicacy for simplicity; the point of the engine is not a
// perfect estimator but spending ~the right order of cycles per point,
// with the fixed-window path left untouched as the reproducible default.
const (
	// adaptiveBucket is the time-series bucket width in cycles.
	adaptiveBucket = 25
	// adaptiveCheckEvery is the bucket stride between stopping-rule and
	// saturation checks.
	adaptiveCheckEvery = 5
	// adaptiveMSERBatch is the MSER batch size in buckets (MSER-5).
	adaptiveMSERBatch = 5
	// adaptiveMinWarmupBuckets is the minimum warmup series length
	// before the first MSER check (8 MSER batches).
	adaptiveMinWarmupBuckets = 8 * adaptiveMSERBatch
	// adaptiveBatches is the fixed batch count of the batch-means CI.
	adaptiveBatches = 20
	// adaptiveMinMeasureBuckets is the minimum measurement series length
	// before the first CI check (2 buckets per batch).
	adaptiveMinMeasureBuckets = 2 * adaptiveBatches
	// satWindow is the saturation detector's default trailing window in
	// buckets; a bursty source spec widens it to cover several ON+OFF
	// periods (newSatDetector).
	satWindow = 30
	// satBurstPeriods is how many source ON+OFF periods the widened
	// window must cover under a bursty spec: shorter windows alias the
	// periodic backlog breathing of long phases as unbounded growth.
	satBurstPeriods = 3
	// satBlockedFrac is the blocked-injection fraction above which the
	// sources are considered throttled by full NIC queues.
	satBlockedFrac = 0.05
	// satGrowthFrac is the relative in-flight growth over the trailing
	// window that counts as unbounded backlog accumulation.
	satGrowthFrac = 0.5
	// satConsecutive is how many consecutive positive checks the
	// detector needs before declaring saturation, so a single burst or
	// transient spike cannot short-circuit a healthy run.
	satConsecutive = 2
)

// measureSeed runs one seed of a steady-state point under the budget's
// measurement mode: the fixed-window steadySeed (bit-identical to the
// pre-adaptive implementation) or the adaptive engine.
func measureSeed(c Config, w Workload, load float64, b Budget, seed uint64) (SteadyResult, *stats.Histogram, error) {
	if b.Adaptive {
		return adaptiveSeed(c, w, load, b, seed)
	}
	return steadySeed(b.Ctx, c, w, load, b.Warmup, b.Measure, seed)
}

// satDetector watches for the two signatures of an offered load past the
// saturation point: the in-flight packet population growing without
// bound (queues filling), and — once the bounded NIC queues are full and
// backlog can no longer grow — a persistent fraction of generation
// attempts being refused (sources throttled). Samples are taken once
// per bucket; the decision looks at a trailing window and must fire on
// consecutive checks.
type satDetector struct {
	nodes float64
	// window is the trailing decision window in buckets: satWindow for
	// memoryless sources, widened to satBurstPeriods ON+OFF periods for
	// bursty ones (a window shorter than the source period sees the ON
	// phase's backlog ramp as monotone growth and the OFF phase's
	// blocked spike as throttling, and false-positives on healthy runs).
	window   int
	inflight []float64
	blocked  []float64
	offered  []float64
	lastBlk  uint64
	lastOff  uint64
	hits     int
}

func newSatDetector(net *router.Network, src SourceSpec) *satDetector {
	d := &satDetector{nodes: float64(net.Topo.Nodes), window: satWindow}
	if src.Bursty {
		period := src.OnMean + src.OffMean
		if w := int(math.Ceil(satBurstPeriods * period / adaptiveBucket)); w > d.window {
			d.window = w
		}
	}
	return d
}

// sample records the bucket-end backlog and the bucket's injection
// acceptance deltas.
func (d *satDetector) sample(net *router.Network) {
	off := net.NumGenerated + net.NumBlocked
	d.inflight = append(d.inflight, float64(net.InFlight))
	d.blocked = append(d.blocked, float64(net.NumBlocked-d.lastBlk))
	d.offered = append(d.offered, float64(off-d.lastOff))
	d.lastBlk = net.NumBlocked
	d.lastOff = off
}

// saturated evaluates the trailing window; call once per check stride.
func (d *satDetector) saturated() bool {
	n := len(d.inflight)
	if n < d.window {
		return false
	}
	win := d.inflight[n-d.window:]
	meanIF := stats.Mean(win)
	growth := stats.TrendSlope(win) * float64(d.window)
	var blk, off float64
	for i := n - d.window; i < n; i++ {
		blk += d.blocked[i]
		off += d.offered[i]
	}
	growing := growth > satGrowthFrac*meanIF && meanIF > d.nodes
	throttled := off > 0 && blk/off > satBlockedFrac
	if growing || throttled {
		d.hits++
	} else {
		d.hits = 0
	}
	return d.hits >= satConsecutive
}

// adaptiveSeed runs one seed's steady-state experiment under the
// adaptive engine. Like steadySeed it leaves the latency summary fields
// to reduceSteady (via the returned histogram); unlike steadySeed the
// windows are data-driven: warmup ends when MSER says the transient is
// over (capped by b.Warmup), measurement ends when the batch-means CIs
// hit b.CIRelWidth (capped by b.MaxMeasure), and the saturation
// detector can cut either phase short.
func adaptiveSeed(c Config, w Workload, load float64, b Budget, seed uint64) (SteadyResult, *stats.Histogram, error) {
	net, err := BuildNetwork(c, seed)
	if err != nil {
		return SteadyResult{}, nil, err
	}
	pat, err := w.Pattern(net.Topo)
	if err != nil {
		return SteadyResult{}, nil, err
	}
	inj, err := w.injector(net, traffic.Constant(pat), load, seed^0x9E3779B97F4A7C15)
	if err != nil {
		return SteadyResult{}, nil, err
	}
	nodes := float64(net.Topo.Nodes)

	// Delivery observer: per-bucket accumulators plus the running
	// aggregate statistics. The aggregates (and the histogram) are reset
	// at the warmup/measurement boundary, so after the run they cover
	// exactly the measurement window.
	var (
		hist    = stats.NewHistogram(latencyHistCap)
		hops    stats.Welford
		phits   uint64
		misG    uint64
		misL    uint64
		counted uint64
		bSum    float64
		bCnt    uint64
		bPhits  uint64
	)
	net.OnDeliver = func(p *router.Packet, now int64) {
		lat := now - p.GenTime
		bSum += float64(lat)
		bCnt++
		bPhits += uint64(p.Size)
		hist.Add(lat)
		hops.Add(float64(p.TotalHops))
		phits += uint64(p.Size)
		if p.GlobalMisroute {
			misG++
		}
		if p.LocalMisroutes > 0 {
			misL++
		}
		counted++
	}

	var cyc int64
	runBucket := func() {
		bSum, bCnt, bPhits = 0, 0, 0
		// Jumps are capped at the bucket boundary, so every bucket's
		// bookkeeping (series entries, saturation samples) still runs;
		// an elided sub-span delivers nothing, so the synthesized bucket
		// is exactly what stepping it would have produced.
		end := net.Now() + adaptiveBucket
		for net.Now() < end {
			if elideStep(net, inj, end) {
				continue
			}
			inj.Cycle()
			net.Step()
		}
		cyc += adaptiveBucket
	}

	sat := newSatDetector(net, w.Source)
	saturated := false

	// Phase 1: warmup detection. The latency series carries the last
	// seen bucket mean through empty buckets — before the first delivery
	// it is zero, which MSER correctly treats as part of the transient.
	var warmSeries []float64
	lastMean := 0.0
	warmupDone := false
	for !warmupDone && !saturated {
		if err := ctxErr(b.Ctx); err != nil {
			return SteadyResult{}, nil, err
		}
		runBucket()
		sat.sample(net)
		if bCnt > 0 {
			lastMean = bSum / float64(bCnt)
		}
		warmSeries = append(warmSeries, lastMean)
		if len(warmSeries)%adaptiveCheckEvery == 0 {
			if sat.saturated() {
				saturated = true
				break
			}
			if len(warmSeries) >= adaptiveMinWarmupBuckets {
				if _, ok := stats.MSERTruncate(warmSeries, adaptiveMSERBatch); ok {
					warmupDone = true
				}
			}
		}
		if cyc >= b.Warmup { // the fixed budget's warmup is the cap
			warmupDone = true
		}
	}

	// Phase boundary: everything before this cycle is discarded warmup.
	truncWarm := cyc
	var busyLocal0, busyGlobal0 int64
	var marked0, notified0, shed0, throttled0 uint64
	var dropped0, retried0, unroutable0 uint64
	var ciLat, ciAcc float64
	converged := false
	measStart := cyc
	if !saturated {
		hist = stats.NewHistogram(latencyHistCap)
		hops.Reset()
		phits, misG, misL, counted = 0, 0, 0, 0
		_, busyLocal0, busyGlobal0 = net.LinkBusy()
		marked0, notified0, shed0 = net.NumMarked, net.NumNotified, net.NumShed
		throttled0 = inj.Throttled()
		dropped0, retried0, unroutable0 = net.NumDropped, inj.Retried(), net.NumUnroutable

		// Phase 2: CI-driven measurement.
		var latB, thrB []float64
		buckets := 0
		for {
			if err := ctxErr(b.Ctx); err != nil {
				return SteadyResult{}, nil, err
			}
			runBucket()
			sat.sample(net)
			buckets++
			if bCnt > 0 {
				latB = append(latB, bSum/float64(bCnt))
			}
			thrB = append(thrB, float64(bPhits)/(adaptiveBucket*nodes))
			if buckets%adaptiveCheckEvery == 0 {
				if sat.saturated() {
					saturated = true
					break
				}
				if buckets >= adaptiveMinMeasureBuckets {
					lm, lh, ok1 := stats.BatchMeansCI(latB, adaptiveBatches)
					tm, th, ok2 := stats.BatchMeansCI(thrB, adaptiveBatches)
					if ok1 && ok2 {
						ciLat, ciAcc = lh, th
					}
					// The decorrelation guard: a CI batch must span at
					// least half a mean latency — the correlation
					// timescale of the bucket-mean series — or
					// neighboring batch means share in-flight packets
					// and the CI is optimistic.
					batchCycles := float64(buckets/adaptiveBatches) * adaptiveBucket
					if ok1 && ok2 && lm > 0 && tm > 0 && 2*batchCycles >= lm &&
						lh <= b.CIRelWidth*lm && th <= b.CIRelWidth*tm {
						converged = true
						break
					}
				}
			}
			if int64(buckets)*adaptiveBucket >= b.MaxMeasure {
				break
			}
		}
	}

	measure := cyc - measStart
	if measure == 0 {
		// Saturated before any measurement: report the whole run so the
		// point still carries throughput/latency evidence, flagged.
		measure = cyc
		truncWarm = 0
	}
	_, busyLocal1, busyGlobal1 := net.LinkBusy()
	_, nLocal, nGlobal := net.LinkCounts()
	res := SteadyResult{
		Algo:           c.Algo.String(),
		Workload:       w.Name(),
		Load:           load,
		Accepted:       float64(phits) / (float64(measure) * nodes),
		Delivered:      counted,
		AvgHops:        hops.Mean(),
		UtilLocal:      float64(busyLocal1-busyLocal0) / (float64(measure) * float64(nLocal)),
		UtilGlobal:     float64(busyGlobal1-busyGlobal0) / (float64(measure) * float64(nGlobal)),
		Seeds:          1,
		CIHalfLatency:  ciLat,
		CIHalfAccepted: ciAcc,
		MeasuredCycles: measure,
		WarmupCycles:   truncWarm,
		Saturated:      saturated,
		Converged:      converged,
		Marked:         net.NumMarked - marked0,
		Notified:       net.NumNotified - notified0,
		Throttled:      inj.Throttled() - throttled0,
		Shed:           net.NumShed - shed0,
		Dropped:        net.NumDropped - dropped0,
		Retried:        inj.Retried() - retried0,
		Unroutable:     net.NumUnroutable - unroutable0,
	}
	if counted > 0 {
		res.MisroutedGlobal = float64(misG) / float64(counted)
		res.MisroutedLocal = float64(misL) / float64(counted)
	}
	return res, hist, nil
}
