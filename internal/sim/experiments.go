package sim

import (
	"fmt"
	"io"
	"sort"

	"cbar/internal/routing"
	"cbar/internal/stats"
)

// transientLoad returns the offered load of the Figures 7-9 experiments:
// 20% at the paper's (balanced) scales; the unbalanced tiny topology
// needs 35% to sit in the same per-router pressure regime.
func transientLoad(s Scale) float64 {
	if s == Tiny {
		return 0.35
	}
	return 0.2
}

// mixLoad returns the Figure 6 offered load: 35% in the paper; the tiny
// topology's Valiant limit under ADV+1 is 0.25, so it drops to 20%.
func mixLoad(s Scale) float64 {
	if s == Tiny {
		return 0.2
	}
	return 0.35
}

// Experiment regenerates one table or figure of the paper, writing CSV
// rows to w.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale, b Budget, w io.Writer) error
}

// Experiments returns the full per-figure harness, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig5a", "Latency & throughput vs load, uniform traffic (UN)", runFig5a},
		{"fig5b", "Latency & throughput vs load, adversarial ADV+1", runFig5b},
		{"fig5c", "Latency & throughput vs load, adversarial ADV+h", runFig5c},
		{"fig6", "Latency vs UN/ADV+1 mix at fixed load", runFig6},
		{"fig7", "Transient UN->ADV+1, small buffers: latency & misrouted%", runFig7},
		{"fig8", "Transient UN->ADV+1, large buffers (256/2048 phits)", runFig8},
		{"fig9", "Routing oscillations: PB vs ECtN, long trace", runFig9},
		{"fig10a", "Base threshold sensitivity under UN", runFig10a},
		{"fig10b", "Base threshold sensitivity under ADV+1", runFig10b},
		{"via", "§VI-A: mean saturated contention counter vs mean VCs/port", runVIA},
	}
}

// AllExperiments returns the paper's figures followed by the ablation
// studies of DESIGN.md.
func AllExperiments() []Experiment {
	return append(Experiments(), AblationExperiments()...)
}

// FindExperiment resolves an experiment (figure or ablation) by ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// steadyAlgos is the mechanism set of the Figure 5 plots.
var steadyAlgos = []routing.Algo{
	routing.Min, routing.Valiant, routing.PB, routing.OLM,
	routing.Base, routing.Hybrid, routing.ECtN,
}

// adaptiveAlgos is the mechanism set of the transient figures.
var adaptiveAlgos = []routing.Algo{
	routing.PB, routing.OLM, routing.Base, routing.Hybrid, routing.ECtN,
}

type sweepKey struct {
	algo routing.Algo
	load float64
}

// sweepSteady runs a full (algorithm × load) steady-state grid with all
// points and seeds in one parallel worker pool.
func sweepSteady(s Scale, algos []routing.Algo, w Workload, loads []float64, b Budget,
	mutate func(*Config)) (map[sweepKey]SteadyResult, error) {
	b = b.steadyDefaults()
	if err := b.validateSteady(); err != nil {
		return nil, err
	}
	type job struct {
		key  sweepKey
		seed uint64
	}
	var jobs []job
	for _, a := range algos {
		for _, l := range loads {
			for sd := 0; sd < b.Seeds; sd++ {
				jobs = append(jobs, job{sweepKey{a, l}, seedFor(sd)})
			}
		}
	}
	perJob := make([]SteadyResult, len(jobs))
	perHist := make([]*stats.Histogram, len(jobs))
	requested := b.Workers
	if requested == 0 && len(algos) > 0 {
		// Probe the mutated config for auto-shard eligibility (e.g. a
		// mutate that grows PacketSize past the handoff-ordering bound
		// must keep its runs sequential rather than fail Build).
		probe := NewConfig(s.Params(), algos[0])
		if mutate != nil {
			mutate(&probe)
		}
		if !autoShardable(probe.Router) {
			requested = 1
		}
	}
	perRun, taskWorkers := planWorkers(requested, len(jobs))
	err := forEachTaskN(len(jobs), taskWorkers, func(i int) error {
		cfg := NewConfig(s.Params(), jobs[i].key.algo)
		cfg.Router.Workers = perRun
		cfg.Router.Congestion = b.Congestion
		cfg.Router.Faults = b.Faults
		if mutate != nil {
			mutate(&cfg)
		}
		var err error
		perJob[i], perHist[i], err = measureSeed(cfg, w, jobs[i].key.load, b, jobs[i].seed)
		return err
	})
	if err != nil {
		return nil, err
	}
	// Group in first-appearance order of the job list so the reduction
	// runs in a deterministic sequence (jobs is built load-major, so the
	// order is also the output order of the tables).
	grouped := map[sweepKey][]int{}
	var keys []sweepKey
	for i, j := range jobs {
		if _, ok := grouped[j.key]; !ok {
			keys = append(keys, j.key)
		}
		grouped[j.key] = append(grouped[j.key], i)
	}
	out := make(map[sweepKey]SteadyResult, len(grouped))
	for _, k := range keys {
		idx := grouped[k]
		rs := make([]SteadyResult, len(idx))
		hs := make([]*stats.Histogram, len(idx))
		for i, j := range idx {
			rs[i], hs[i] = perJob[j], perHist[j]
		}
		out[k] = reduceSteady(rs, hs)
	}
	return out, nil
}

// writeSteadyTable prints a Figure 5-style CSV: one row per (load, algo).
func writeSteadyTable(w io.Writer, title string, res map[sweepKey]SteadyResult, algos []routing.Algo, loads []float64) error {
	if _, err := fmt.Fprintf(w, "# %s\n", title); err != nil {
		return err
	}
	fmt.Fprintln(w, "load,algo,avg_latency_cycles,p99_latency_cycles,accepted_phits_node_cycle,misrouted_global_frac,misrouted_local_frac,avg_hops")
	sorted := append([]float64(nil), loads...)
	sort.Float64s(sorted)
	for _, l := range sorted {
		for _, a := range algos {
			r := res[sweepKey{a, l}]
			fmt.Fprintf(w, "%.3f,%s,%.2f,%d,%.4f,%.4f,%.4f,%.3f\n",
				l, r.Algo, r.AvgLatency, r.P99, r.Accepted, r.MisroutedGlobal, r.MisroutedLocal, r.AvgHops)
		}
	}
	return nil
}

func runFig5(s Scale, b Budget, w io.Writer, workload Workload, title string) error {
	res, err := sweepSteady(s, steadyAlgos, workload, b.Loads, b, nil)
	if err != nil {
		return err
	}
	return writeSteadyTable(w, title, res, steadyAlgos, b.Loads)
}

func runFig5a(s Scale, b Budget, w io.Writer) error {
	return runFig5(s, b, w, UN(), "Fig 5a: uniform traffic (UN); reference MIN")
}

func runFig5b(s Scale, b Budget, w io.Writer) error {
	return runFig5(s, b, w, ADV(1), "Fig 5b: adversarial ADV+1; reference VAL (limit 0.5 at balanced scale)")
}

func runFig5c(s Scale, b Budget, w io.Writer) error {
	h := s.Params().H
	return runFig5(s, b, w, ADV(h),
		fmt.Sprintf("Fig 5c: adversarial ADV+h (h=%d), requires local misrouting in the intermediate group", h))
}

func runFig6(s Scale, b Budget, w io.Writer) error {
	load := mixLoad(s)
	fracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	fmt.Fprintf(w, "# Fig 6: mixed ADV+1/UN traffic at load %.2f (0%% = pure ADV+1)\n", load)
	fmt.Fprintln(w, "uniform_pct,algo,avg_latency_cycles,accepted_phits_node_cycle,misrouted_global_frac")
	for _, frac := range fracs {
		for _, a := range adaptiveAlgos {
			cfg := NewConfig(s.Params(), a)
			cfg.Router.Congestion = b.Congestion
			cfg.Router.Faults = b.Faults
			r, err := RunSteadyBudget(cfg, MixUN(frac, 1), load, b)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%.0f,%s,%.2f,%.4f,%.4f\n", frac*100, r.Algo, r.AvgLatency, r.Accepted, r.MisroutedGlobal)
		}
	}
	return nil
}

func writeTransientTable(w io.Writer, results []TransientResult) {
	fmt.Fprintln(w, "cycle,algo,avg_latency_cycles,misrouted_pct")
	for _, r := range results {
		for i := range r.Times {
			fmt.Fprintf(w, "%d,%s,%.2f,%.2f\n", r.Times[i], r.Algo, r.Latency[i], r.MisroutedPct[i])
		}
	}
}

func runTransientFigure(s Scale, b Budget, w io.Writer, algos []routing.Algo, post int64,
	mutate func(*Config), title string) error {
	// Validate the transient windows this figure will actually run with
	// (Post or PostLong) before building any network, mirroring the
	// upfront validateSteady of the sweep experiments — a bad budget
	// fails in microseconds instead of after the first algorithm's runs.
	vb := b
	vb.Post = post
	if err := vb.validateTransient(); err != nil {
		return err
	}
	load := transientLoad(s)
	fmt.Fprintf(w, "# %s (UN->ADV+1 at t=0, load %.2f)\n", title, load)
	results := make([]TransientResult, len(algos))
	for i, a := range algos {
		cfg := NewConfig(s.Params(), a)
		cfg.Router.Workers = b.Workers
		cfg.Router.Congestion = b.Congestion
		cfg.Router.Faults = b.Faults
		if mutate != nil {
			mutate(&cfg)
		}
		r, err := RunTransientCtx(b.Ctx, cfg, UN(), ADV(1), load, b.TransientWarmup, b.Pre, post, b.Bucket, b.Seeds)
		if err != nil {
			return err
		}
		results[i] = r
	}
	writeTransientTable(w, results)
	return nil
}

func runFig7(s Scale, b Budget, w io.Writer) error {
	return runTransientFigure(s, b, w, adaptiveAlgos, b.Post, nil,
		"Fig 7: transient response, small buffers (Table I)")
}

func runFig8(s Scale, b Budget, w io.Writer) error {
	mutate := func(c *Config) {
		// The paper's large-buffer variant: 256-phit local and
		// 2048-phit global input buffers per VC, output unchanged.
		c.Router.BufLocal = 256
		c.Router.BufInjection = 256
		c.Router.BufGlobal = 2048
	}
	return runTransientFigure(s, b, w, adaptiveAlgos, b.PostLong, mutate,
		"Fig 8: transient response, large buffers (256/2048 phits per VC)")
}

func runFig9(s Scale, b Budget, w io.Writer) error {
	return runTransientFigure(s, b, w, []routing.Algo{routing.PB, routing.ECtN}, b.PostLong, nil,
		"Fig 9: routing oscillations after the switch, PB vs ECtN")
}

// fig10Thresholds derives the threshold grids of Figure 10 from the
// scale's default (the paper sweeps 3..7 under UN and 6..12 under ADV+1
// around its default of 6).
func fig10Thresholds(s Scale) (un, adv []int32) {
	d := ScaledOptions(s.Params()).BaseTh
	for t := d - 3; t <= d+1; t++ {
		if t >= 1 {
			un = append(un, t)
		}
	}
	for t := d; t <= d+6; t++ {
		adv = append(adv, t)
	}
	return un, adv
}

func runFig10(s Scale, b Budget, w io.Writer, workload Workload, ths []int32, ref routing.Algo, title string) error {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintln(w, "load,threshold,avg_latency_cycles,accepted_phits_node_cycle")
	for _, l := range b.Loads {
		for _, th := range ths {
			cfg := NewConfig(s.Params(), routing.Base)
			cfg.Router.Workers = b.Workers
			cfg.Router.Congestion = b.Congestion
			cfg.Router.Faults = b.Faults
			cfg.Opts.BaseTh = th
			r, err := RunSteadyBudget(cfg, workload, l, b)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%.3f,th=%d,%.2f,%.4f\n", l, th, r.AvgLatency, r.Accepted)
		}
		// Oblivious reference curve (MIN for UN, VAL for ADV).
		refCfg := NewConfig(s.Params(), ref)
		refCfg.Router.Workers = b.Workers
		refCfg.Router.Congestion = b.Congestion
		refCfg.Router.Faults = b.Faults
		r, err := RunSteadyBudget(refCfg, workload, l, b)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.3f,%s,%.2f,%.4f\n", l, r.Algo, r.AvgLatency, r.Accepted)
	}
	return nil
}

func runFig10a(s Scale, b Budget, w io.Writer) error {
	un, _ := fig10Thresholds(s)
	return runFig10(s, b, w, UN(), un, routing.Min,
		"Fig 10a: Base misrouting-threshold sensitivity, uniform traffic (MIN reference)")
}

func runFig10b(s Scale, b Budget, w io.Writer) error {
	_, adv := fig10Thresholds(s)
	return runFig10(s, b, w, ADV(1), adv, routing.Valiant,
		"Fig 10b: Base misrouting-threshold sensitivity, ADV+1 (VAL reference)")
}

func runVIA(s Scale, b Budget, w io.Writer) error {
	cfg := NewConfig(s.Params(), routing.Base)
	cfg.Router.Workers = b.Workers
	cfg.Router.Congestion = b.Congestion
	cfg.Router.Faults = b.Faults
	got, err := MeanSaturatedContention(cfg, 0.95, b.Warmup, b.Measure/4, 1)
	if err != nil {
		return err
	}
	want := cfg.Router.MeanVCsPerPort()
	fmt.Fprintln(w, "# §VI-A: mean contention counter per port under saturated UN traffic")
	fmt.Fprintln(w, "metric,value")
	fmt.Fprintf(w, "mean_saturated_counter,%.3f\n", got)
	fmt.Fprintf(w, "mean_vcs_per_port_estimate,%.3f\n", want)
	return nil
}
