package sim

import (
	"fmt"

	"cbar/internal/rng"
	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/traffic"
)

// Step-benchmark harness shared by the in-tree benchmarks
// (perf_bench_test.go) and cmd/bench, so the tracked BENCH_step.json
// record and `go test -bench` always measure the same operating points.

// StepBenchWarmup is the number of cycles a step benchmark runs before
// measurement so the network is in steady state (populated freelist,
// settled active sets) rather than cold.
const StepBenchWarmup = 500

// ElideIdleSpan and ElideIdleLoad are the operating point of the
// ElideIdle benchmarks (in-tree and cmd/bench): one op advances
// ElideIdleSpan cycles of a network offered ElideIdleLoad through
// Advance, so most of the span is elided and ns/op divided by the span
// is the effective per-cycle cost of the O(events) idle stepper. The
// load is deep idle — a few arrivals per span — rather than zero, so
// the jump/step composition (not just one long jump) is what's timed.
const (
	ElideIdleSpan = 10000
	ElideIdleLoad = 1e-5
)

// ElideIdleWarm deterministically warms every lazily-grown pool an
// ElideIdle measurement span can touch: one packet through every NIC
// (first-touch queue backing arrays, the packet freelist), stepped to
// delivery. At deep idle the statistical StepBenchWarmup leaves most
// sources untouched, so without this the first-touch growth trickles
// through the measured spans and allocs/op decays with b.N — a flaky
// regression gate.
func ElideIdleWarm(net *router.Network, inj *traffic.Injector) error {
	nodes := net.Topo.Nodes
	for src := 0; src < nodes; src++ {
		net.Inject(src, (src+nodes/2)%nodes)
	}
	for i := 0; i < 1<<20 && net.InFlight > 0; i++ {
		inj.Cycle()
		net.Step()
	}
	if net.InFlight > 0 {
		return fmt.Errorf("sim: elide warm burst did not drain")
	}
	return nil
}

// NewStepBench builds a network and injector at the given scale,
// algorithm and uniform offered load, applies the step modes — fullScan
// selects the every-component fabric loop, refScan the full-recompute
// reference algorithm state (polled PB flags, combine-every-group ECtN)
// — and warms the network into steady state.
func NewStepBench(s Scale, algo routing.Algo, load float64, fullScan, refScan bool) (*router.Network, *traffic.Injector, error) {
	return NewStepBenchWorkload(s, algo, UN(), load, fullScan, refScan)
}

// NewStepBenchWorkload is NewStepBench for an arbitrary workload
// (pattern and arrival process), so the benchmark suite can pin the
// cost of the stateful calendar injector beside the Bernoulli fast
// path at the same operating points.
func NewStepBenchWorkload(s Scale, algo routing.Algo, w Workload, load float64, fullScan, refScan bool) (*router.Network, *traffic.Injector, error) {
	return NewStepBenchWorkers(s, algo, w, load, fullScan, refScan, 1)
}

// NewStepBenchWorkers is NewStepBenchWorkload with an explicit shard
// worker count, so the benchmark suite can pin the parallel stepper's
// cycles/sec beside the sequential stepper at the same operating points
// (the two are cycle-for-cycle identical, so every other knob is
// comparable).
func NewStepBenchWorkers(s Scale, algo routing.Algo, w Workload, load float64, fullScan, refScan bool, workers int) (*router.Network, *traffic.Injector, error) {
	c := NewConfig(s.Params(), algo)
	c.Opts.ReferenceScan = refScan
	c.Router.Workers = workers
	net, err := BuildNetwork(c, 1)
	if err != nil {
		return nil, nil, err
	}
	net.FullScan = fullScan
	pat, err := w.Pattern(net.Topo)
	if err != nil {
		return nil, nil, err
	}
	inj, err := w.injector(net, traffic.Constant(pat), load, 2)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < StepBenchWarmup; i++ {
		inj.Cycle()
		net.Step()
	}
	return net, inj, nil
}

// NewStepBenchFaults builds a step benchmark with a quiescent fault
// plan: one LinkDown scheduled far past any benchmark horizon, so the
// fault engine is allocated and its per-cycle pending check runs, but
// no event ever fires. Pinned beside the plain idle entry, the delta is
// the fault layer's hot-path overhead — which must stay ~zero.
func NewStepBenchFaults(s Scale, algo routing.Algo, load float64) (*router.Network, *traffic.Injector, error) {
	c := NewConfig(s.Params(), algo)
	c.Router.Faults = router.FaultConfig{Events: []router.FaultEvent{
		{Kind: router.LinkDown, Router: 0, Port: int16(s.Params().P), Cycle: 1 << 40},
	}}
	net, err := BuildNetwork(c, 1)
	if err != nil {
		return nil, nil, err
	}
	pat, err := UN().Pattern(net.Topo)
	if err != nil {
		return nil, nil, err
	}
	inj, err := traffic.NewInjector(net, traffic.Constant(pat), load, 2)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < StepBenchWarmup; i++ {
		inj.Cycle()
		net.Step()
	}
	return net, inj, nil
}

// BurstDrainStep runs one episode of the burst-then-drain benchmark: a
// 256-packet random burst into the NIC queues, then stepping until the
// network fully drains.
func BurstDrainStep(net *router.Network, r *rng.PCG) error {
	const burst = 256
	nodes := net.Topo.Nodes
	for k := 0; k < burst; k++ {
		src := r.Intn(nodes)
		dst := r.Intn(nodes)
		if dst == src {
			dst = (dst + 1) % nodes
		}
		net.Inject(src, dst)
	}
	if !net.Drain(1 << 20) {
		return fmt.Errorf("sim: burst did not drain")
	}
	return nil
}
