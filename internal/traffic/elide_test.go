package traffic

import (
	"testing"

	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/topology"
)

// TestThrottleHoldoffAcrossElidedSpan covers the AIMD-throttle edge
// case of quiet-cycle elision: a notified source's hold-off window and
// pacing gap expire in the middle of an elided span, and the lazy
// (admit-time) recovery must make the jumped run bit-identical to the
// stepped one anyway. The test drives the real notification entry
// point (net.OnNotify, wired by NewInjector to the throttle) on two
// identical pairs, then steps one arm plainly while the other elides
// exactly as the sim cycle loops do — asserting that at least one jump
// actually crossed the hold-off expiry.
func TestThrottleHoldoffAcrossElidedSpan(t *testing.T) {
	const (
		load     = 0.001
		seed     = 11
		notifyAt = 200
		end      = 6000
	)
	build := func() (*router.Network, *[]deliveryRecord, *Injector) {
		cfg := router.DefaultConfig(topology.Params{P: 4, A: 4, H: 2})
		// A long explicit hold keeps the expiry deep inside the idle
		// phase, where spans jump across it.
		cfg.Congestion = router.CongestionConfig{Enabled: true, HoldCycles: 400}
		n, err := router.Build(cfg, routing.MustNew(routing.Min, routing.DefaultOptions()), seed)
		if err != nil {
			t.Fatal(err)
		}
		var trace []deliveryRecord
		n.OnDeliver = func(p *router.Packet, now int64) {
			trace = append(trace, deliveryRecord{p.Src, p.Dst, p.GenTime, now})
		}
		inj, err := NewInjector(n, Constant(mustUniform(t, n.Topo)), load, seed)
		if err != nil {
			t.Fatal(err)
		}
		return n, &trace, inj
	}
	netA, traceA, injA := build()
	netB, traceB, injB := build()
	if injA.th == nil || injB.th == nil {
		t.Fatal("congestion layer did not arm the throttle")
	}
	stepTo := func(n *router.Network, inj *Injector, to int64) {
		for n.Now() < to {
			inj.Cycle()
			n.Step()
		}
	}

	// Phase 1: both arms step plainly to the notification cycle, then
	// the same burst of notifications cuts the same sources.
	victims := []int{0, 1, 5, 17, 40}
	stepTo(netA, injA, notifyAt)
	stepTo(netB, injB, notifyAt)
	for _, v := range victims {
		injA.th.onNotify(v, 2, notifyAt)
		injB.th.onNotify(v, 2, notifyAt)
	}
	hold := injB.th.holdUntil[victims[0]]
	if hold <= notifyAt {
		t.Fatalf("notification did not arm a hold-off (holdUntil=%d)", hold)
	}
	cut := injB.th.ratePct(victims[0])
	if cut >= 100 {
		t.Fatalf("notification did not cut the rate (%d%%)", cut)
	}

	// Phase 2: arm A steps every cycle; arm B elides quiet spans the
	// way sim's loops do (network horizon ∧ injector next-arrival).
	stepTo(netA, injA, end)
	var crossedHold bool
	var steps int64
	for netB.Now() < end {
		if j, ok := netB.ElideHorizon(end); ok {
			if a := injB.NextArrival(j - 1); a < j {
				j = a
			}
			if j > netB.Now() {
				if netB.Now() < hold && j >= hold {
					crossedHold = true
				}
				netB.ElideTo(j)
				continue
			}
		}
		injB.Cycle()
		netB.Step()
		steps++
	}
	if steps >= end-notifyAt {
		t.Fatal("nothing was elided; the case proves nothing")
	}
	if !crossedHold {
		t.Fatalf("no jump crossed the hold-off expiry at cycle %d; the case proves nothing", hold)
	}
	sameTrace(t, "throttled", *traceA, *traceB)
	if a, b := injA.Throttled(), injB.Throttled(); a != b {
		t.Fatalf("throttled count diverged: %d vs %d", a, b)
	}
	// Recovery is lazy — applied at the next injection attempt — so
	// probe it the way a post-jump arrival would: one admit call per
	// victim, identical on both arms, must agree and must have applied
	// the additive increase accrued across the elided spans.
	for _, v := range victims {
		if a, b := injA.th.ratePct(v), injB.th.ratePct(v); a != b {
			t.Fatalf("node %d rate diverged before the probe: %d%% vs %d%%", v, a, b)
		}
		if a, b := injA.th.admit(v, end), injB.th.admit(v, end); a != b {
			t.Fatalf("node %d admit diverged: %v vs %v", v, a, b)
		}
		if a, b := injA.th.ratePct(v), injB.th.ratePct(v); a != b {
			t.Fatalf("node %d rate diverged after the probe: %d%% vs %d%%", v, a, b)
		}
		if got := injB.th.ratePct(v); got <= cut {
			t.Fatalf("node %d never recovered past the cut (%d%% <= %d%%)", v, got, cut)
		}
	}
}
