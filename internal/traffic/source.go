package traffic

// This file holds the stateful arrival-process layer of the workload
// engine. The paper's evaluation injects by a memoryless Bernoulli
// process, which the skip-sampling fast path in Injector.Cycle covers;
// bursty (on-off / Markov-modulated) sources and per-node heterogeneous
// loads need per-node state, which the memoryless sampler cannot
// express. A Source yields, per node, the absolute cycles at which that
// node injects; the injector keeps the next injection of every node on a
// calendar (a min-heap ordered by cycle then node id, so pops are
// deterministic), making the per-cycle cost O(packets generated) with no
// O(nodes) term — idle nodes and OFF phases cost nothing.

import (
	"fmt"
	"math"

	"cbar/internal/rng"
)

// Source is a per-node stochastic arrival process. Implementations own
// all per-node state, including the RNG streams, and belong to exactly
// one injector.
type Source interface {
	// First returns the cycle (>= 0, relative to the injector's start)
	// of node's first injection; ok=false if the node never injects.
	First(node int) (cycle int64, ok bool)
	// Next returns the cycle of node's next injection after one at cycle
	// t (strictly greater than t); ok=false if the node never injects
	// again.
	Next(node int, t int64) (cycle int64, ok bool)
}

// SourceKind selects the arrival-process family of a SourceSpec.
type SourceKind int

// Arrival-process families.
const (
	// BernoulliArrivals is the paper's memoryless process: each cycle,
	// each node injects with probability load/packetSize. With no
	// weights this is exactly the homogeneous fast path.
	BernoulliArrivals SourceKind = iota
	// OnOffArrivals is a two-state Markov-modulated (bursty) process:
	// geometrically distributed ON phases injecting at a peak rate
	// alternate with silent OFF phases.
	OnOffArrivals
)

// SourceSpec declares an arrival process; NewSourceInjector resolves it
// against a network and offered load.
type SourceSpec struct {
	Kind SourceKind
	// OnMean and OffMean are the mean ON/OFF phase lengths in cycles
	// (OnOffArrivals). Phase lengths are geometric with these means, so
	// the process is a two-state Markov chain.
	OnMean, OffMean float64
	// PeakLoad, when nonzero, fixes the ON-phase offered load in
	// phits/(node·cycle); the OFF mean is then rescaled so the aggregate
	// load equals the injector's. When zero, the duty cycle
	// OnMean/(OnMean+OffMean) is kept and the ON-phase rate is derived
	// from the aggregate.
	PeakLoad float64
	// Weights scales per-node rates (heterogeneous load). Length must
	// equal the node count; nil means homogeneous. Weights are
	// normalized to mean 1, preserving the aggregate offered load.
	Weights []float64
}

// normalizedWeights validates and rescales weights to mean 1. nil stays
// nil (homogeneous).
func normalizedWeights(w []float64, nodes int) ([]float64, error) {
	if w == nil {
		return nil, nil
	}
	if len(w) != nodes {
		return nil, fmt.Errorf("traffic: %d weights for %d nodes", len(w), nodes)
	}
	sum := 0.0
	for i, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("traffic: weight[%d] = %v invalid", i, v)
		}
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("traffic: all %d weights zero", nodes)
	}
	out := make([]float64, nodes)
	scale := float64(nodes) / sum
	for i, v := range w {
		out[i] = v * scale
	}
	return out, nil
}

// newSource resolves a spec at a per-node packet probability q
// (packets/(node·cycle)) into a concrete source for `nodes` nodes, with
// per-node RNG streams derived from seed. packetSize converts the
// spec's phit-based PeakLoad to a packet probability.
func newSource(spec SourceSpec, nodes, packetSize int, q float64, seed uint64) (Source, error) {
	weights, err := normalizedWeights(spec.Weights, nodes)
	if err != nil {
		return nil, err
	}
	switch spec.Kind {
	case BernoulliArrivals:
		return newBernoulliSource(nodes, q, weights, seed)
	case OnOffArrivals:
		return newOnOffSource(nodes, q, spec.PeakLoad/float64(packetSize), spec, weights, seed)
	}
	return nil, fmt.Errorf("traffic: unknown source kind %d", spec.Kind)
}

// prob returns node n's packet probability under optional weights,
// erroring out of range instead of silently clamping (a clamped rate
// would quietly offer less load than requested).
func nodeProb(q float64, weights []float64, n int) (float64, error) {
	p := q
	if weights != nil {
		p = q * weights[n]
	}
	if p > 1 {
		return 0, fmt.Errorf("traffic: node %d rate %.3f packets/cycle exceeds 1 (load too high for its weight)", n, p)
	}
	return p, nil
}

// bernoulliSource is the per-node-stream Bernoulli process: node n
// injects each cycle with probability prob[n], sampled by geometric
// inversion on its own stream (one uniform per injection, not per
// cycle).
type bernoulliSource struct {
	prob []float64
	rngs []rng.PCG
}

func newBernoulliSource(nodes int, q float64, weights []float64, seed uint64) (Source, error) {
	s := &bernoulliSource{prob: make([]float64, nodes), rngs: make([]rng.PCG, nodes)}
	for n := 0; n < nodes; n++ {
		p, err := nodeProb(q, weights, n)
		if err != nil {
			return nil, err
		}
		s.prob[n] = p
		s.rngs[n].Seed(seed, uint64(n))
	}
	return s, nil
}

func (s *bernoulliSource) First(n int) (int64, bool) {
	p := s.prob[n]
	if p <= 0 {
		return 0, false
	}
	return int64(s.rngs[n].Geometric(p)), true
}

func (s *bernoulliSource) Next(n int, t int64) (int64, bool) {
	p := s.prob[n]
	if p <= 0 {
		return 0, false
	}
	return t + 1 + int64(s.rngs[n].Geometric(p)), true
}

// onOffSource is a two-state Markov-modulated Bernoulli process: in an
// ON phase node n injects each cycle with probability qOn[n]; OFF phases
// are silent. Phase lengths are geometric (>= 1 cycle) with the
// configured means, so the per-cycle naive equivalent is a Markov chain:
// inject by the phase's rate, then stay/leave the phase by its mean.
// Sampling inverts both geometrics, so the cost per injection is O(1)
// plus the (state-advancing) phase transitions skipped over.
type onOffSource struct {
	qOn     []float64
	pOnEnd  float64 // per-cycle probability an ON phase ends (1/OnMean)
	pOffEnd float64
	state   []onOffState
	rngs    []rng.PCG
}

type onOffState struct {
	on       bool
	phaseEnd int64 // first cycle beyond the current phase
	started  bool
}

// maxPhaseWalk bounds how many silent phases one Next call skips; rates
// low enough to exhaust it (an expected >> 10^6 phases between packets)
// are treated as a never-injecting node.
const maxPhaseWalk = 1 << 20

func newOnOffSource(nodes int, q, peakProb float64, spec SourceSpec, weights []float64, seed uint64) (Source, error) {
	if !(spec.OnMean >= 1) || !(spec.OffMean >= 0) {
		return nil, fmt.Errorf("traffic: on-off phase means on=%v off=%v (need on >= 1, off >= 0)", spec.OnMean, spec.OffMean)
	}
	if q <= 0 {
		// Zero aggregate load: a silent source, whatever the phases.
		return &bernoulliSource{prob: make([]float64, nodes), rngs: make([]rng.PCG, nodes)}, nil
	}
	onMean, offMean := spec.OnMean, spec.OffMean
	qOn := q * (onMean + offMean) / onMean
	if peakProb > 0 {
		// The peak fixes the ON-phase rate; the duty cycle (via the OFF
		// mean) adapts so ON-rate × duty equals the aggregate q.
		if peakProb < q {
			return nil, fmt.Errorf("traffic: on-off peak rate %.4f below aggregate %.4f packets/(node·cycle)", peakProb, q)
		}
		qOn = peakProb
		offMean = onMean * (qOn - q) / q
	}
	if qOn > 1 {
		return nil, fmt.Errorf("traffic: on-off peak rate %.3f packets/(node·cycle) exceeds 1 (lengthen OnMean/OffMean or lower the load)", qOn)
	}
	s := &onOffSource{
		qOn:   make([]float64, nodes),
		state: make([]onOffState, nodes),
		rngs:  make([]rng.PCG, nodes),
	}
	s.pOnEnd = 1 / onMean
	for n := 0; n < nodes; n++ {
		p, err := nodeProb(qOn, weights, n)
		if err != nil {
			return nil, err
		}
		s.qOn[n] = p
		s.rngs[n].Seed(seed, uint64(n))
	}
	// A zero OFF mean is always-on: exactly Bernoulli at the ON rate.
	if offMean == 0 {
		return &bernoulliSource{prob: s.qOn, rngs: s.rngs}, nil
	}
	s.pOffEnd = 1 / offMean
	return s, nil
}

// phaseLen draws a geometric phase length >= 1 with the phase's mean.
func (s *onOffSource) phaseLen(on bool, r *rng.PCG) int64 {
	p := s.pOffEnd
	if on {
		p = s.pOnEnd
	}
	if p >= 1 {
		return 1
	}
	return 1 + int64(r.Geometric(p))
}

func (s *onOffSource) First(n int) (int64, bool) {
	st := &s.state[n]
	r := &s.rngs[n]
	// Start in the stationary phase distribution; geometric phases are
	// memoryless, so a fresh full phase is the correct residual.
	duty := s.pOffEnd / (s.pOnEnd + s.pOffEnd)
	st.on = r.Bernoulli(duty)
	st.phaseEnd = s.phaseLen(st.on, r)
	st.started = true
	return s.nextFrom(n, 0)
}

func (s *onOffSource) Next(n int, t int64) (int64, bool) {
	return s.nextFrom(n, t+1)
}

// nextFrom returns the first injection cycle >= from, advancing the
// node's phase state. Within an ON phase the time to the next injection
// is geometric; a draw past the phase end is discarded and redrawn in
// the next ON phase, which by memorylessness is exactly equivalent to
// the per-cycle Bernoulli chain.
func (s *onOffSource) nextFrom(n int, from int64) (int64, bool) {
	st := &s.state[n]
	r := &s.rngs[n]
	q := s.qOn[n]
	if q <= 0 || !st.started {
		return 0, false
	}
	pos := from
	for walk := 0; walk < maxPhaseWalk; walk++ {
		if pos >= st.phaseEnd {
			st.on = !st.on
			st.phaseEnd += s.phaseLen(st.on, r)
			continue
		}
		if !st.on {
			pos = st.phaseEnd
			continue
		}
		c := pos + int64(r.Geometric(q))
		if c < st.phaseEnd {
			return c, true
		}
		pos = st.phaseEnd
	}
	return 0, false
}

// calEntry is one calendar entry: node injects at cycle t.
type calEntry struct {
	t    int64
	node int32
}

// calendar is a binary min-heap of per-node next-injection times,
// ordered by (cycle, node id) so same-cycle pops visit nodes in
// ascending id order — the same visit order as a full per-node scan,
// keeping calendar-driven runs deterministic.
type calendar struct {
	heap []calEntry
}

func calLess(a, b calEntry) bool {
	return a.t < b.t || (a.t == b.t && a.node < b.node)
}

func (c *calendar) push(e calEntry) {
	c.heap = append(c.heap, e)
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !calLess(c.heap[i], c.heap[parent]) {
			break
		}
		c.heap[i], c.heap[parent] = c.heap[parent], c.heap[i]
		i = parent
	}
}

func (c *calendar) peek() (calEntry, bool) {
	if len(c.heap) == 0 {
		return calEntry{}, false
	}
	return c.heap[0], true
}

func (c *calendar) pop() calEntry {
	top := c.heap[0]
	last := len(c.heap) - 1
	c.heap[0] = c.heap[last]
	c.heap = c.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(c.heap) && calLess(c.heap[l], c.heap[small]) {
			small = l
		}
		if r < len(c.heap) && calLess(c.heap[r], c.heap[small]) {
			small = r
		}
		if small == i {
			return top
		}
		c.heap[i], c.heap[small] = c.heap[small], c.heap[i]
		i = small
	}
}
