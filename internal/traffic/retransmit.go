package traffic

import "cbar/internal/router"

// retransmitter is the source side of the fault-recovery loop (see
// internal/router/faults.go): when the fabric kills a packet on a
// failing link, the source NIC re-offers it with exponential backoff,
// up to RetryLimit attempts. The state is a calendar min-heap of
// pending retries ordered by (due cycle, enqueue sequence); both keys
// are assigned at sequential points — OnDrop fires at the fault barrier
// in ascending packet-ID order, injection runs between cycles — so the
// retry stream is bit-identical at every worker count.
//
// A retry whose injection is refused (source NIC full, source throttled
// by congestion management, or source router itself down) is re-queued
// for the next cycle without consuming an attempt: refusal is local
// backpressure, not evidence the path is still broken.
type retransmitter struct {
	net     *router.Network
	limit   int8  // attempts after the original send
	base    int64 // backoff base: attempt k waits base<<k cycles
	heap    []retryEntry
	seq     uint64 // tie-break within a cycle: enqueue order
	retried uint64 // retry injections accepted by the network
}

type retryEntry struct {
	at       int64
	seq      uint64
	src, dst int32
	attempt  int8
}

func newRetransmitter(net *router.Network, limit int, base int64) *retransmitter {
	return &retransmitter{net: net, limit: int8(limit), base: base}
}

// onDrop is wired as Network.OnDrop: schedule a retry unless the packet
// has exhausted its attempts. Unroutable packets never reach this hook
// (the network counts them separately — retrying into a partition is
// futile by construction).
func (rt *retransmitter) onDrop(p *router.Packet, now int64) {
	if p.Attempt >= rt.limit {
		return
	}
	rt.push(retryEntry{
		at:      now + rt.base<<uint(p.Attempt),
		seq:     rt.seq,
		src:     p.Src,
		dst:     p.Dst,
		attempt: p.Attempt + 1,
	})
	rt.seq++
}

// cycle re-offers every due retry; call once per cycle before pattern
// generation so retries claim NIC space ahead of fresh traffic.
func (rt *retransmitter) cycle(now int64) {
	for len(rt.heap) > 0 && rt.heap[0].at <= now {
		e := rt.pop()
		if rt.net.InjectRetry(int(e.src), int(e.dst), e.attempt) {
			rt.retried++
			continue
		}
		e.at = now + 1
		e.seq = rt.seq
		rt.seq++
		rt.push(e)
	}
}

// pending reports whether any retry is still queued (tests drain the
// fabric until both in-flight and pending-retry counts reach zero).
func (rt *retransmitter) pending() int { return len(rt.heap) }

// nextDue returns the earliest queued retry's due cycle; call only with
// pending() > 0. Elision horizons (Injector.NextArrival) use it as the
// retransmit next-arrival term.
func (rt *retransmitter) nextDue() int64 { return rt.heap[0].at }

func (e retryEntry) less(o retryEntry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

func (rt *retransmitter) push(e retryEntry) {
	rt.heap = append(rt.heap, e)
	i := len(rt.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !rt.heap[i].less(rt.heap[parent]) {
			break
		}
		rt.heap[i], rt.heap[parent] = rt.heap[parent], rt.heap[i]
		i = parent
	}
}

func (rt *retransmitter) pop() retryEntry {
	top := rt.heap[0]
	last := len(rt.heap) - 1
	rt.heap[0] = rt.heap[last]
	rt.heap = rt.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(rt.heap) && rt.heap[l].less(rt.heap[smallest]) {
			smallest = l
		}
		if r < len(rt.heap) && rt.heap[r].less(rt.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		rt.heap[i], rt.heap[smallest] = rt.heap[smallest], rt.heap[i]
		i = smallest
	}
}
