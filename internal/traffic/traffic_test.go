package traffic

import (
	"math"
	"testing"

	"cbar/internal/rng"
	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/topology"
)

func topo() *topology.Dragonfly { return topology.MustNew(topology.Params{P: 4, A: 4, H: 2}) }

// mustUniform builds the UN pattern, failing the test on error.
func mustUniform(t *testing.T, tp *topology.Dragonfly) Pattern {
	t.Helper()
	u, err := NewUniform(tp)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUniformNeverSelf(t *testing.T) {
	tp := topo()
	u := mustUniform(t, tp)
	r := rng.New(1, 1)
	counts := make([]int, tp.Nodes)
	for i := 0; i < 20000; i++ {
		src := i % tp.Nodes
		d := u.Dest(src, r)
		if d == src {
			t.Fatal("uniform returned self")
		}
		if d < 0 || d >= tp.Nodes {
			t.Fatalf("destination %d out of range", d)
		}
		counts[d]++
	}
	// Roughly uniform: every node should receive something.
	for n, c := range counts {
		if c == 0 {
			t.Fatalf("node %d never chosen", n)
		}
	}
	if u.Name() != "UN" {
		t.Fatalf("name %q", u.Name())
	}
}

func TestAdversarialTargetsRightGroup(t *testing.T) {
	tp := topo()
	for _, off := range []int{1, 2, tp.H, tp.Groups - 1} {
		a, err := NewAdversarial(tp, off)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(2, 2)
		for i := 0; i < 2000; i++ {
			src := i % tp.Nodes
			d := a.Dest(src, r)
			want := (tp.GroupOfNode(src) + off) % tp.Groups
			if tp.GroupOfNode(d) != want {
				t.Fatalf("ADV+%d: src group %d -> dst group %d, want %d",
					off, tp.GroupOfNode(src), tp.GroupOfNode(d), want)
			}
		}
	}
}

func TestAdversarialNegativeOffset(t *testing.T) {
	tp := topo()
	a, err := NewAdversarial(tp, -1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3, 3)
	src := 0 // group 0
	d := a.Dest(src, r)
	if tp.GroupOfNode(d) != tp.Groups-1 {
		t.Fatalf("ADV-1 from group 0 went to group %d", tp.GroupOfNode(d))
	}
}

func TestAdversarialRejectsDegenerate(t *testing.T) {
	tp := topo()
	for _, off := range []int{0, tp.Groups, 2 * tp.Groups} {
		if _, err := NewAdversarial(tp, off); err == nil {
			t.Fatalf("offset %d accepted", off)
		}
	}
}

func TestMixProportions(t *testing.T) {
	tp := topo()
	adv, _ := NewAdversarial(tp, 1)
	m, err := NewMix(mustUniform(t, tp), adv, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4, 4)
	src := 0
	adversarialHits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		d := m.Dest(src, r)
		if tp.GroupOfNode(d) == 1 {
			adversarialHits++
		}
	}
	// ~30% adversarial plus the uniform traffic that lands in group 1
	// by chance (~70% * 1/9). Expect ~0.30 + 0.078 = 0.378.
	got := float64(adversarialHits) / draws
	if math.Abs(got-0.378) > 0.02 {
		t.Fatalf("group-1 fraction %.3f, want ~0.378", got)
	}
}

func TestMixRejectsBadFraction(t *testing.T) {
	tp := topo()
	u := mustUniform(t, tp)
	for _, f := range []float64{-0.1, 1.1} {
		if _, err := NewMix(u, u, f); err == nil {
			t.Fatalf("fraction %v accepted", f)
		}
	}
}

func TestScheduleSwitching(t *testing.T) {
	tp := topo()
	u := mustUniform(t, tp)
	a, _ := NewAdversarial(tp, 1)
	s, err := NewSchedule(Phase{0, u}, Phase{100, a}, Phase{200, u})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int64]string{0: "UN", 99: "UN", 100: "ADV+1", 199: "ADV+1", 200: "UN", 5000: "UN"}
	//lint:ordered per-key assertion on a pure lookup; order cannot affect outcomes
	for cyc, want := range cases {
		if got := s.At(cyc).Name(); got != want {
			t.Fatalf("At(%d) = %s, want %s", cyc, got, want)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	tp := topo()
	u := mustUniform(t, tp)
	if _, err := NewSchedule(); err == nil {
		t.Fatal("empty schedule accepted")
	}
	if _, err := NewSchedule(Phase{5, u}); err == nil {
		t.Fatal("schedule not covering cycle 0 accepted")
	}
	if _, err := NewSchedule(Phase{0, u}, Phase{0, u}); err == nil {
		t.Fatal("non-increasing phases accepted")
	}
	if _, err := NewSchedule(Phase{0, nil}); err == nil {
		t.Fatal("nil pattern accepted")
	}
}

func TestConstantSchedule(t *testing.T) {
	tp := topo()
	s := Constant(mustUniform(t, tp))
	if s.At(0).Name() != "UN" || s.At(1<<40).Name() != "UN" {
		t.Fatal("constant schedule wrong")
	}
}

func buildNet(t *testing.T) *router.Network {
	t.Helper()
	cfg := router.DefaultConfig(topology.Params{P: 4, A: 4, H: 2})
	n, err := router.Build(cfg, routing.MustNew(routing.Min, routing.DefaultOptions()), 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestInjectorRate(t *testing.T) {
	n := buildNet(t)
	load := 0.2 // phits/(node·cycle) -> 0.025 packets/(node·cycle)
	inj, err := NewInjector(n, Constant(mustUniform(t, n.Topo)), load, 7)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Load() != load {
		t.Fatalf("Load() = %v", inj.Load())
	}
	const cycles = 2000
	for i := 0; i < cycles; i++ {
		inj.Cycle()
		n.Step()
	}
	offered := float64(n.NumGenerated+n.NumBlocked) * float64(n.Cfg.PacketSize) /
		(float64(cycles) * float64(n.Topo.Nodes))
	if math.Abs(offered-load) > 0.02 {
		t.Fatalf("offered load %.4f, want %.2f", offered, load)
	}
	if !n.Drain(30000) {
		t.Fatal("did not drain")
	}
}

func TestInjectorValidation(t *testing.T) {
	n := buildNet(t)
	sched := Constant(mustUniform(t, n.Topo))
	if _, err := NewInjector(n, sched, -0.1, 1); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := NewInjector(n, sched, 1.5, 1); err == nil {
		t.Fatal("load > 1 accepted")
	}
	if _, err := NewInjector(n, nil, 0.5, 1); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

func TestInjectorZeroLoad(t *testing.T) {
	n := buildNet(t)
	inj, err := NewInjector(n, Constant(mustUniform(t, n.Topo)), 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		inj.Cycle()
		n.Step()
	}
	if n.NumGenerated != 0 {
		t.Fatalf("%d packets generated at zero load", n.NumGenerated)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() uint64 {
		n := buildNet(t)
		inj, _ := NewInjector(n, Constant(mustUniform(t, n.Topo)), 0.3, 99)
		for i := 0; i < 500; i++ {
			inj.Cycle()
			n.Step()
		}
		n.Drain(30000)
		return n.NumDelivered
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestPatternNames(t *testing.T) {
	tp := topo()
	adv, _ := NewAdversarial(tp, 3)
	if adv.Name() != "ADV+3" {
		t.Fatalf("name %q", adv.Name())
	}
	m, _ := NewMix(mustUniform(t, tp), adv, 0.25)
	if m.Name() == "" {
		t.Fatal("empty mix name")
	}
}
