package traffic

// This file holds the workload-engine pattern families beyond the
// paper's UN/ADV set: hotspot concentration, fixed node permutations
// (shift, complement) and the group-tornado pattern. These model the
// regimes the related congestion-management literature evaluates
// adaptive routing under — hotspot traffic stresses notification
// mechanisms with a stationary focal point, permutations give every node
// exactly one destination (no statistical smoothing), and tornado aims
// all groups at the maximal group offset.

import (
	"fmt"
	"sort"

	"cbar/internal/rng"
	"cbar/internal/topology"
)

// validatePatternTopology rejects topologies on which destination
// selection degenerates (a single node can only send to itself).
func validatePatternTopology(t *topology.Dragonfly, pattern string) error {
	if t == nil {
		return fmt.Errorf("traffic: %s pattern needs a topology", pattern)
	}
	if t.Nodes < 2 {
		return fmt.Errorf("traffic: %s pattern needs >= 2 nodes, topology has %d", pattern, t.Nodes)
	}
	return nil
}

// hotspot sends a fraction of the traffic to a small set of hot nodes
// and the rest uniformly: the classic hotspot workload of the congestion
// management literature (a few over-subscribed endpoints — storage
// targets, parameter servers — under otherwise benign background load).
type hotspot struct {
	t    *topology.Dragonfly
	frac float64
	hot  []int32
}

// NewHotspot returns a pattern that aims `frac` of the traffic at `hot`
// hot nodes (spread evenly over the node id space, so they land in
// distinct groups when hot <= Groups) and the remaining 1-frac
// uniformly. Sources never pick themselves.
func NewHotspot(t *topology.Dragonfly, frac float64, hot int) (Pattern, error) {
	if err := validatePatternTopology(t, "hotspot"); err != nil {
		return nil, err
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %v outside [0,1]", frac)
	}
	if hot < 1 || hot > t.Nodes {
		return nil, fmt.Errorf("traffic: hotspot node count %d outside [1,%d]", hot, t.Nodes)
	}
	h := hotspot{t: t, frac: frac, hot: make([]int32, hot)}
	for i := 0; i < hot; i++ {
		h.hot[i] = int32(i * t.Nodes / hot)
	}
	return h, nil
}

func (h hotspot) Name() string {
	return fmt.Sprintf("hotspot(%.0f%%->%d)", h.frac*100, len(h.hot))
}

func (h hotspot) Dest(src int, r *rng.PCG) int {
	if r.Bernoulli(h.frac) {
		d := int(h.hot[r.Intn(len(h.hot))])
		if d != src {
			return d
		}
		// The source is itself hot: redraw among the other hot nodes,
		// or fall back to uniform when it is the only one.
		if len(h.hot) > 1 {
			for d == src {
				d = int(h.hot[r.Intn(len(h.hot))])
			}
			return d
		}
	}
	for {
		d := r.Intn(h.t.Nodes)
		if d != src {
			return d
		}
	}
}

// permutation is a fixed bijection over node ids: every node has exactly
// one destination, so there is no statistical smoothing across flows.
type permutation struct {
	name  string
	dests []int32
}

// newPermutation materializes dest = f(src) for every node and verifies
// it is a true bijection (every destination in range, no two sources
// sharing one). Fixed points (f(src) == src) are allowed — the packet is
// delivered through the source router's ejection port — but the named
// constructors below choose parameterizations that avoid them where
// possible.
func newPermutation(t *topology.Dragonfly, name string, f func(src int) int) (Pattern, error) {
	if err := validatePatternTopology(t, name); err != nil {
		return nil, err
	}
	p := permutation{name: name, dests: make([]int32, t.Nodes)}
	seen := make([]bool, t.Nodes)
	for src := 0; src < t.Nodes; src++ {
		d := f(src)
		if d < 0 || d >= t.Nodes {
			return nil, fmt.Errorf("traffic: %s maps node %d to %d, outside [0,%d)", name, src, d, t.Nodes)
		}
		if seen[d] {
			return nil, fmt.Errorf("traffic: %s is not a bijection (destination %d repeated)", name, d)
		}
		seen[d] = true
		p.dests[src] = int32(d)
	}
	return p, nil
}

func (p permutation) Name() string { return p.name }

func (p permutation) Dest(src int, _ *rng.PCG) int { return int(p.dests[src]) }

// NewShift returns the node-shift permutation dest = (src + k) mod Nodes.
// k must not be a multiple of the node count (which would degenerate to
// self-traffic).
func NewShift(t *topology.Dragonfly, k int) (Pattern, error) {
	if err := validatePatternTopology(t, "shift"); err != nil {
		return nil, err
	}
	kk := k % t.Nodes
	if kk < 0 {
		kk += t.Nodes
	}
	if kk == 0 {
		return nil, fmt.Errorf("traffic: shift offset %d is a multiple of the %d nodes", k, t.Nodes)
	}
	return newPermutation(t, fmt.Sprintf("shift+%d", k), func(src int) int {
		return (src + kk) % t.Nodes
	})
}

// NewComplement returns the complement permutation dest = Nodes-1-src,
// the arbitrary-size analogue of bit-complement (on power-of-two node
// counts it is exactly src XOR (Nodes-1)). Every node pairs with its
// mirror at the far end of the id space; with an odd node count the
// middle node is a fixed point and its packets deliver locally.
func NewComplement(t *topology.Dragonfly) (Pattern, error) {
	if err := validatePatternTopology(t, "complement"); err != nil {
		return nil, err
	}
	return newPermutation(t, "complement", func(src int) int {
		return t.Nodes - 1 - src
	})
}

// NewTornado returns the group-tornado permutation: every node sends to
// the node at the same in-group position of the group floor(Groups/2)
// positions away, the maximal group offset. Like ADV+i it pressures one
// outgoing global link per group, but as a deterministic permutation
// rather than a random in-group spray.
func NewTornado(t *topology.Dragonfly) (Pattern, error) {
	if err := validatePatternTopology(t, "tornado"); err != nil {
		return nil, err
	}
	if t.Groups < 2 {
		return nil, fmt.Errorf("traffic: tornado needs >= 2 groups, topology has %d", t.Groups)
	}
	perGroup := t.A * t.P
	off := t.Groups / 2
	return newPermutation(t, "tornado", func(src int) int {
		g := src / perGroup
		return ((g+off)%t.Groups)*perGroup + src%perGroup
	})
}

// isHot reports whether node is one of a hotspot pattern's hot nodes
// (false for every node of non-hotspot patterns). Test helper: the
// distribution tests use it to split hot/background traffic shares.
func isHot(p Pattern, node int) bool {
	h, ok := p.(hotspot)
	if !ok {
		return false
	}
	i := sort.Search(len(h.hot), func(i int) bool { return int(h.hot[i]) >= node })
	return i < len(h.hot) && int(h.hot[i]) == node
}
