package traffic

import (
	"math"
	"testing"

	"cbar/internal/rng"
	"cbar/internal/router"
	"cbar/internal/routing"
	"cbar/internal/topology"
)

// deliveryRecord is one delivered packet, for trace comparison.
type deliveryRecord struct {
	src, dst int32
	gen, now int64
}

// traceNet builds a fresh tiny network recording its delivery trace.
func traceNet(t *testing.T, seed uint64) (*router.Network, *[]deliveryRecord) {
	t.Helper()
	cfg := router.DefaultConfig(topology.Params{P: 4, A: 4, H: 2})
	n, err := router.Build(cfg, routing.MustNew(routing.Min, routing.DefaultOptions()), seed)
	if err != nil {
		t.Fatal(err)
	}
	var trace []deliveryRecord
	n.OnDeliver = func(p *router.Packet, now int64) {
		trace = append(trace, deliveryRecord{p.Src, p.Dst, p.GenTime, now})
	}
	return n, &trace
}

func sameTrace(t *testing.T, label string, a, b []deliveryRecord) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: trace lengths %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: trace diverges at %d: %+v vs %+v", label, i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatalf("%s: empty traces prove nothing", label)
	}
}

// TestFastPathBitIdenticalToReference pins the homogeneous-Bernoulli
// injection path bit-for-bit against an inline copy of the pre-refactor
// injector loop (shared stream, geometric skip-sampling): the refactor
// that added the calendar path must not have perturbed it.
func TestFastPathBitIdenticalToReference(t *testing.T) {
	const (
		load   = 0.3
		seed   = 41
		cycles = 1500
	)
	netA, traceA := traceNet(t, 7)
	patA, err := NewUniform(netA.Topo)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(netA, Constant(patA), load, seed)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cycles; c++ {
		inj.Cycle()
		netA.Step()
	}

	// Reference: the pre-refactor Cycle body, inlined.
	netB, traceB := traceNet(t, 7)
	patB, err := NewUniform(netB.Topo)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed, 0xC0FFEE)
	prob := load / float64(netB.Cfg.PacketSize)
	for c := 0; c < cycles; c++ {
		nodes := netB.Topo.Nodes
		for node := r.Geometric(prob); node < nodes; node += 1 + r.Geometric(prob) {
			netB.Inject(node, patB.Dest(node, r))
		}
		netB.Step()
	}
	sameTrace(t, "fast path vs pre-refactor reference", *traceA, *traceB)
}

// TestCalendarCycleExactVsNaiveScan drives the calendar injector and a
// naive every-node-every-cycle scan from identical per-node sources
// (same seeds, same RNG draw order) over identical networks: the
// delivery traces must match bit for bit, for both homogeneous
// Bernoulli and bursty on-off arrival processes. The calendar changes
// only *when* nodes are visited, never what they draw.
func TestCalendarCycleExactVsNaiveScan(t *testing.T) {
	specs := map[string]SourceSpec{
		"bernoulli": {},
		"onoff":     {Kind: OnOffArrivals, OnMean: 30, OffMean: 90},
		"weighted": {Weights: func() []float64 {
			w := make([]float64, 144)
			for i := range w {
				w[i] = float64(1 + i%5)
			}
			return w
		}()},
	}
	const (
		load   = 0.25
		seed   = 99
		cycles = 1200
	)
	//lint:ordered each subtest is self-contained and seeded by constants; order only permutes independent t.Run calls
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			netA, traceA := traceNet(t, 3)
			patA, err := NewUniform(netA.Topo)
			if err != nil {
				t.Fatal(err)
			}
			inj, err := NewSourceInjector(netA, Constant(patA), load, seed, spec)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < cycles; c++ {
				inj.Cycle()
				netA.Step()
			}

			// Naive reference: the same source semantics, but visited by
			// an O(nodes) per-cycle scan holding each node's next time.
			netB, traceB := traceNet(t, 3)
			patB, err := NewUniform(netB.Topo)
			if err != nil {
				t.Fatal(err)
			}
			src, err := newSource(spec, netB.Topo.Nodes, netB.Cfg.PacketSize, load/float64(netB.Cfg.PacketSize), seed)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(seed, 0xC0FFEE) // the injector's destination stream
			next := make([]int64, netB.Topo.Nodes)
			alive := make([]bool, netB.Topo.Nodes)
			for n := range next {
				next[n], alive[n] = src.First(n)
			}
			for c := int64(0); c < cycles; c++ {
				for n := 0; n < netB.Topo.Nodes; n++ {
					if !alive[n] || next[n] != c {
						continue
					}
					netB.Inject(n, patB.Dest(n, r))
					next[n], alive[n] = src.Next(n, c)
				}
				netB.Step()
			}
			sameTrace(t, name, *traceA, *traceB)
		})
	}
}

// naiveOnOffRate simulates the literal per-cycle Markov chain the
// on-off source is defined as — inject by the current phase's rate,
// then leave the phase with probability 1/mean — and returns the number
// of injections over the horizon. It shares nothing with the sampled
// implementation but the definition.
func naiveOnOffRate(nodes int, qOn, onMean, offMean float64, cycles int64, seed uint64) int64 {
	var injections int64
	for n := 0; n < nodes; n++ {
		r := rng.New(seed, uint64(n)+1<<32) // distinct streams from the sampled impl
		on := r.Bernoulli(onMean / (onMean + offMean))
		for c := int64(0); c < cycles; c++ {
			if on {
				if r.Bernoulli(qOn) {
					injections++
				}
				if r.Bernoulli(1 / onMean) {
					on = false
				}
			} else if r.Bernoulli(1 / offMean) {
				on = true
			}
		}
	}
	return injections
}

// TestOnOffStatisticallyMatched checks the sampled on-off source
// against the naive per-cycle chain on aggregate rate (both must hit
// the configured load) and against the Bernoulli process on dispersion
// (bursty arrivals must be visibly over-dispersed).
func TestOnOffStatisticallyMatched(t *testing.T) {
	const (
		nodes   = 144
		q       = 0.05 // packets/(node·cycle)
		onMean  = 25.0
		offMean = 75.0
		cycles  = 30000
		seed    = 5
	)
	spec := SourceSpec{Kind: OnOffArrivals, OnMean: onMean, OffMean: offMean}
	src, err := newSource(spec, nodes, 8, q, seed)
	if err != nil {
		t.Fatal(err)
	}
	const window = 50 // cycles per count window, ~ the ON-phase scale
	var sampled int64
	perWindow := make([]int64, cycles/window)
	for n := 0; n < nodes; n++ {
		c, ok := src.First(n)
		for ok && c < cycles {
			sampled++
			perWindow[c/window]++
			c, ok = src.Next(n, c)
		}
	}
	qOn := q * (onMean + offMean) / onMean
	naive := naiveOnOffRate(nodes, qOn, onMean, offMean, cycles, seed)

	mean := float64(nodes) * q * float64(cycles)
	// Burst correlation inflates the count variance well beyond
	// Poisson; a generous ±10% band still catches rate bugs (a duty
	// cycle or peak-rate error shifts the mean by 2x-4x).
	//lint:ordered independent per-series band checks; order cannot affect outcomes
	for name, got := range map[string]int64{"sampled": sampled, "naive": naive} {
		if math.Abs(float64(got)-mean) > 0.10*mean {
			t.Errorf("%s injections %d, want %.0f +-10%%", name, got, mean)
		}
	}

	// Dispersion: windowed injection counts of an on-off process are
	// over-dispersed relative to Bernoulli (whose window counts are
	// binomial, index ~1): the ON/OFF phase correlation inflates the
	// variance severalfold at windows near the phase scale.
	var m, v float64
	for _, c := range perWindow {
		m += float64(c)
	}
	m /= float64(len(perWindow))
	for _, c := range perWindow {
		v += (float64(c) - m) * (float64(c) - m)
	}
	v /= float64(len(perWindow))
	if d := v / m; d < 1.5 {
		t.Errorf("on-off dispersion index %.2f over %d-cycle windows, want > 1.5 (bursts missing)", d, window)
	}
}

// TestBernoulliSourceGapsAreGeometric χ²-tests the sampled per-node
// Bernoulli source's inter-injection gaps against the geometric law
// they must follow (gap g >= 1 with probability q(1-q)^(g-1)).
func TestBernoulliSourceGapsAreGeometric(t *testing.T) {
	const (
		nodes  = 64
		q      = 0.2
		cycles = 50000
		seed   = 11
	)
	src, err := newSource(SourceSpec{}, nodes, 8, q, seed)
	if err != nil {
		t.Fatal(err)
	}
	const maxGap = 30
	obs := make([]float64, maxGap+1) // gap 1..maxGap, tail pooled at [maxGap]
	var total float64
	for n := 0; n < nodes; n++ {
		prev, ok := src.First(n)
		if !ok {
			t.Fatal("node never injects")
		}
		for {
			c, ok := src.Next(n, prev)
			if !ok || c >= cycles {
				break
			}
			gap := c - prev
			if gap < 1 {
				t.Fatalf("gap %d < 1", gap)
			}
			if gap >= maxGap {
				obs[maxGap]++
			} else {
				obs[gap]++
			}
			total++
			prev = c
		}
	}
	var chi2 float64
	dof := 0
	for g := 1; g <= maxGap; g++ {
		var p float64
		if g < maxGap {
			p = q * math.Pow(1-q, float64(g-1))
		} else {
			p = math.Pow(1-q, float64(maxGap-1)) // tail mass
		}
		exp := p * total
		if exp < 5 {
			continue
		}
		d := obs[g] - exp
		chi2 += d * d / exp
		dof++
	}
	// 99.9% χ² quantile for ~29 dof is ~58; failures mean the sampler's
	// law is wrong, not an unlucky seed (the test is deterministic).
	if chi2 > 60 {
		t.Fatalf("χ² = %.1f over %d cells: gaps are not geometric(q=%.2f)", chi2, dof, q)
	}
}

// TestWeightedRatesMatch drives a skew-weighted Bernoulli source and
// checks each weight class's empirical rate.
func TestWeightedRatesMatch(t *testing.T) {
	const (
		nodes  = 100
		q      = 0.05
		cycles = 40000
	)
	w := make([]float64, nodes)
	for i := range w {
		if i < 10 {
			w[i] = 5 // 10 hot nodes at 5x the cold rate
		} else {
			w[i] = 0.5556 // ~ (1-0.5)*100/90: cold share
		}
	}
	src, err := newSource(SourceSpec{Weights: w}, nodes, 8, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, nodes)
	for n := 0; n < nodes; n++ {
		c, ok := src.First(n)
		for ok && c < cycles {
			counts[n]++
			c, ok = src.Next(n, c)
		}
	}
	// normalizedWeights rescales to mean 1; compute the expected rates
	// the same way.
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	for n := 0; n < nodes; n++ {
		want := q * w[n] * float64(nodes) / sum * cycles
		if math.Abs(counts[n]-want) > 5*math.Sqrt(want) {
			t.Errorf("node %d: %v injections, want %.0f +-5sigma", n, counts[n], want)
		}
	}
}

// TestSourceInjectorValidation exercises the construction-time errors of
// the stateful path.
func TestSourceInjectorValidation(t *testing.T) {
	n := buildNet(t)
	sched := Constant(mustUniform(t, n.Topo))
	cases := map[string]SourceSpec{
		"bad on mean":      {Kind: OnOffArrivals, OnMean: 0, OffMean: 10},
		"negative off":     {Kind: OnOffArrivals, OnMean: 10, OffMean: -1},
		"peak below load":  {Kind: OnOffArrivals, OnMean: 10, OffMean: 10, PeakLoad: 0.1},
		"peak rate over 1": {Kind: OnOffArrivals, OnMean: 10, OffMean: 1000},
		"short weights":    {Weights: []float64{1, 2, 3}},
		"negative weight":  {Weights: negWeights(n.Topo.Nodes)},
		"zero weights":     {Weights: make([]float64, n.Topo.Nodes)},
		"unknown kind":     {Kind: SourceKind(9)},
	}
	//lint:ordered independent per-spec rejection checks; order cannot affect outcomes
	for name, spec := range cases {
		load := 0.5
		if _, err := NewSourceInjector(n, sched, load, 1, spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Happy path sanity: the same constructor accepts a sound spec.
	if _, err := NewSourceInjector(n, sched, 0.3, 1, SourceSpec{Kind: OnOffArrivals, OnMean: 20, OffMean: 60}); err != nil {
		t.Fatalf("sound spec rejected: %v", err)
	}
}

func negWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	w[3] = -1
	return w
}

// TestSourceInjectorZeroLoad: a zero-load stateful injector never
// generates, at O(1) per cycle (the calendar stays empty).
func TestSourceInjectorZeroLoad(t *testing.T) {
	n := buildNet(t)
	inj, err := NewSourceInjector(n, Constant(mustUniform(t, n.Topo)), 0,
		7, SourceSpec{Kind: OnOffArrivals, OnMean: 10, OffMean: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		inj.Cycle()
		n.Step()
	}
	if n.NumGenerated != 0 {
		t.Fatalf("%d packets at zero load", n.NumGenerated)
	}
}

// TestOnOffPeakDutyCycle: with a fixed peak, ON phases inject at the
// peak rate and the duty cycle adapts to the aggregate load.
func TestOnOffPeakDutyCycle(t *testing.T) {
	const (
		nodes  = 50
		q      = 0.02
		peakQ  = 0.10 // packets/(node·cycle): duty must settle at 20%
		cycles = 60000
	)
	// PeakLoad is in phits; newSource divides by packet size 8.
	src, err := newSource(SourceSpec{Kind: OnOffArrivals, OnMean: 40, PeakLoad: peakQ * 8}, nodes, 8, q, 21)
	if err != nil {
		t.Fatal(err)
	}
	var count float64
	for n := 0; n < nodes; n++ {
		c, ok := src.First(n)
		for ok && c < cycles {
			count++
			c, ok = src.Next(n, c)
		}
	}
	want := q * nodes * cycles
	if math.Abs(count-want) > 0.12*want {
		t.Fatalf("peak-pinned on-off injected %v, want %.0f +-12%%", count, want)
	}
}
