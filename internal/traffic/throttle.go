package traffic

import "cbar/internal/router"

// throttle is the source side of the congestion-management loop (see
// internal/router/congestion.go): a per-node AIMD rate limiter driven by
// the fabric's congestion notifications. Each node carries a rate in
// percent of line rate, starting at 100:
//
//   - Multiplicative decrease: a notification cuts the node's rate to
//     rate*DecreasePct/100 (floored at MinRatePct), at most once per
//     HoldCycles — a burst of notifications from one congestion epoch is
//     one cut, as in a per-RTT AIMD loop.
//   - Additive increase: once the hold window has passed, the rate
//     recovers by RecoverPct percentage points every RecoverEvery
//     cycles. Recovery is applied lazily at the next injection attempt,
//     so an idle node costs nothing.
//   - Pacing: below 100% the node's injections are spaced at least
//     ceil(PacketSize*100/pct) cycles apart, i.e. the node offers at
//     most pct% of its line rate. At 100% no gap is imposed, so an
//     unnotified source behaves exactly like an unthrottled one.
//
// The throttle runs entirely at sequential points — OnNotify fires at the
// handle barrier, injection between cycles — and every per-node update
// commutes across nodes, so throttle decisions (and the throttled/shed
// counters) are bit-identical at every worker count.
type throttle struct {
	cfg        router.CongestionConfig
	packetSize int64

	pct       []int32 // current rate, percent of line rate
	allowedAt []int64 // earliest next injection cycle (pacing)
	holdUntil []int64 // end of the current multiplicative-decrease hold
	lastRise  []int64 // anchor of the additive-increase schedule

	throttled uint64 // injection attempts deferred or suppressed
}

func newThrottle(nodes, packetSize int, cfg router.CongestionConfig) *throttle {
	t := &throttle{
		cfg:        cfg,
		packetSize: int64(packetSize),
		pct:        make([]int32, nodes),
		allowedAt:  make([]int64, nodes),
		holdUntil:  make([]int64, nodes),
		lastRise:   make([]int64, nodes),
	}
	for n := range t.pct {
		t.pct[n] = 100
	}
	return t
}

// onNotify applies one congestion notification to node's rate: a
// multiplicative decrease, at most once per hold window. The severity
// (mark count) is deliberately not compounded — notifications within one
// hold window already collapse into a single cut, and same-node
// notifications arrive in a deterministic order, so the outcome is
// identical at every worker count.
func (t *throttle) onNotify(node, sev int, now int64) {
	if now < t.holdUntil[node] {
		return
	}
	p := t.pct[node] * int32(t.cfg.DecreasePct) / 100
	if p < int32(t.cfg.MinRatePct) {
		p = int32(t.cfg.MinRatePct)
	}
	t.pct[node] = p
	t.holdUntil[node] = now + t.cfg.HoldCycles
	t.lastRise[node] = now
}

// admit reports whether node may inject at cycle now, applying lazy
// additive recovery and, on success, the pacing gap for the next
// attempt. A refused attempt is counted in throttled; the caller defers
// (calendar path) or suppresses (Bernoulli path) the injection.
func (t *throttle) admit(node int, now int64) bool {
	if t.pct[node] < 100 && now >= t.holdUntil[node] {
		if steps := (now - t.lastRise[node]) / t.cfg.RecoverEvery; steps > 0 {
			p := t.pct[node] + int32(steps)*int32(t.cfg.RecoverPct)
			if p > 100 {
				p = 100
			}
			t.pct[node] = p
			t.lastRise[node] += steps * t.cfg.RecoverEvery
		}
	}
	if now < t.allowedAt[node] {
		t.throttled++
		return false
	}
	if p := int64(t.pct[node]); p < 100 {
		gap := (t.packetSize*100 + p - 1) / p
		if gap < 1 {
			gap = 1
		}
		t.allowedAt[node] = now + gap
	}
	return true
}

// nextAllowed returns the earliest cycle node may inject at (for
// rescheduling a deferred calendar entry). Strictly in the future when
// admit just refused.
func (t *throttle) nextAllowed(node int) int64 { return t.allowedAt[node] }

// RatePct returns node's current throttle rate in percent of line rate
// (100 = unthrottled); tests use it to observe AIMD dynamics.
func (t *throttle) ratePct(node int) int32 { return t.pct[node] }
