// Package traffic generates the synthetic workloads of the paper's
// evaluation: uniform random (UN), adversarial (ADV+i, every node sends
// to a random node in the group i positions away), probabilistic mixes of
// the two (Figure 6) and time-switching schedules (Figures 7-9). Sources
// inject by a Bernoulli process with a configurable rate in
// phits/(node·cycle), as in §IV-B.
package traffic

import (
	"fmt"

	"cbar/internal/rng"
	"cbar/internal/router"
	"cbar/internal/topology"
)

// Pattern chooses a destination for each generated packet.
type Pattern interface {
	Name() string
	// Dest returns a destination node for a packet sourced at node src,
	// drawing any randomness from r.
	Dest(src int, r *rng.PCG) int
}

// uniform sends to a random node other than the source (UN).
type uniform struct {
	t *topology.Dragonfly
}

// NewUniform returns the UN pattern over topology t. A topology with a
// single node is rejected: "any node but the source" would not exist and
// destination drawing could never terminate.
func NewUniform(t *topology.Dragonfly) (Pattern, error) {
	if err := validatePatternTopology(t, "uniform"); err != nil {
		return nil, err
	}
	return uniform{t}, nil
}

func (uniform) Name() string { return "UN" }

func (u uniform) Dest(src int, r *rng.PCG) int {
	for {
		d := r.Intn(u.t.Nodes)
		if d != src {
			return d
		}
	}
}

// adversarial sends to a random node in the group `offset` positions
// away (ADV+offset).
type adversarial struct {
	t      *topology.Dragonfly
	offset int
}

// NewAdversarial returns the ADV+offset pattern. Offset must not be a
// multiple of the group count (which would degenerate to intra-group
// traffic).
func NewAdversarial(t *topology.Dragonfly, offset int) (Pattern, error) {
	if offset%t.Groups == 0 {
		return nil, fmt.Errorf("traffic: ADV offset %d is a multiple of the %d groups", offset, t.Groups)
	}
	return adversarial{t, offset}, nil
}

func (a adversarial) Name() string { return fmt.Sprintf("ADV+%d", a.offset) }

func (a adversarial) Dest(src int, r *rng.PCG) int {
	g := a.t.GroupOfNode(src)
	dg := g + a.offset
	dg %= a.t.Groups
	if dg < 0 {
		dg += a.t.Groups
	}
	perGroup := a.t.A * a.t.P
	return dg*perGroup + r.Intn(perGroup)
}

// mix draws each packet from pattern A with probability fracA, else B
// (the Figure 6 workload: a UN/ADV+1 blend).
type mix struct {
	a, b  Pattern
	fracA float64
}

// NewMix returns a per-packet probabilistic mix: fracA of the traffic
// follows a, the rest follows b.
func NewMix(a, b Pattern, fracA float64) (Pattern, error) {
	if fracA < 0 || fracA > 1 {
		return nil, fmt.Errorf("traffic: mix fraction %v outside [0,1]", fracA)
	}
	return mix{a, b, fracA}, nil
}

func (m mix) Name() string {
	return fmt.Sprintf("mix(%.0f%% %s, %.0f%% %s)", m.fracA*100, m.a.Name(), (1-m.fracA)*100, m.b.Name())
}

func (m mix) Dest(src int, r *rng.PCG) int {
	if r.Bernoulli(m.fracA) {
		return m.a.Dest(src, r)
	}
	return m.b.Dest(src, r)
}

// Phase is one segment of a time-switching schedule.
type Phase struct {
	// FromCycle is the first cycle this phase's pattern applies to.
	FromCycle int64
	Pattern   Pattern
}

// Schedule switches patterns at fixed cycles (the transient experiments
// of Figures 7-9: UN before the switch, ADV+1 after).
type Schedule struct {
	phases []Phase
}

// NewSchedule builds a schedule from phases ordered by FromCycle; the
// first phase must start at or before cycle 0.
func NewSchedule(phases ...Phase) (*Schedule, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("traffic: empty schedule")
	}
	if phases[0].FromCycle > 0 {
		return nil, fmt.Errorf("traffic: schedule must cover cycle 0 (first phase starts at %d)", phases[0].FromCycle)
	}
	for i := 1; i < len(phases); i++ {
		if phases[i].FromCycle <= phases[i-1].FromCycle {
			return nil, fmt.Errorf("traffic: schedule phases out of order at %d", i)
		}
	}
	for i, p := range phases {
		if p.Pattern == nil {
			return nil, fmt.Errorf("traffic: nil pattern in phase %d", i)
		}
	}
	return &Schedule{phases: phases}, nil
}

// Constant wraps a single pattern as an all-time schedule.
func Constant(p Pattern) *Schedule {
	s, err := NewSchedule(Phase{FromCycle: 0, Pattern: p})
	if err != nil {
		panic(err) // unreachable: the single phase is always valid
	}
	return s
}

// At returns the pattern in force at the given cycle.
func (s *Schedule) At(cycle int64) Pattern {
	cur := s.phases[0].Pattern
	for _, ph := range s.phases[1:] {
		if cycle < ph.FromCycle {
			break
		}
		cur = ph.Pattern
	}
	return cur
}

// Injector drives a network with generated traffic toward destinations
// drawn from the schedule's current pattern. Two injection paths exist:
//
//   - The homogeneous Bernoulli fast path (NewInjector): each cycle,
//     each node generates a packet with probability load/packetSize
//     (load measured in phits/(node·cycle), §IV-B), skip-sampled so the
//     cost is O(packets generated). This path is kept bit-identical to
//     the original injector.
//   - The stateful calendar path (NewSourceInjector): per-node arrival
//     processes (bursty on-off sources, heterogeneous rates) keep their
//     next injection time on a calendar; each cycle pops only the nodes
//     that inject now, preserving the O(packets generated) cost.
type Injector struct {
	net   *router.Network
	sched *Schedule
	prob  float64
	load  float64
	rng   *rng.PCG
	// Stateful path (nil src selects the homogeneous fast path).
	src Source
	cal calendar
	// th is the AIMD congestion throttle (nil unless the network's
	// congestion management is enabled — see throttle.go).
	th *throttle
	// rtx re-offers fault-dropped packets (nil unless the network's
	// fault plan enables retransmission — see retransmit.go).
	rtx *retransmitter

	// Quiet-cycle elision state for the Bernoulli fast path. Certifying
	// a cycle empty costs exactly the one Geometric draw Cycle would
	// have consumed for it, so skipping the cycle leaves the RNG stream
	// bit-identical. drawnThrough is the highest certified-empty cycle;
	// pendingCycle/pendingNode stash the first in-range draw NextArrival
	// found, which Cycle resumes from instead of redrawing.
	drawnThrough int64
	pendingCycle int64
	pendingNode  int
}

// NewInjector builds a homogeneous Bernoulli injector at the given
// offered load in phits/(node·cycle). Loads above the injection
// bandwidth of 1 are rejected.
func NewInjector(net *router.Network, sched *Schedule, load float64, seed uint64) (*Injector, error) {
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("traffic: offered load %v outside [0,1] phits/(node*cycle)", load)
	}
	if sched == nil {
		return nil, fmt.Errorf("traffic: nil schedule")
	}
	in := &Injector{
		net:   net,
		sched: sched,
		prob:  load / float64(net.Cfg.PacketSize),
		load:  load,
		rng:   rng.New(seed, 0xC0FFEE),

		drawnThrough: -1,
		pendingCycle: -1,
	}
	if cc := net.Cfg.Congestion; cc.Enabled {
		// Close the congestion loop: the fabric's notifications (already
		// resolved by Build) drive this injector's per-node AIMD rates.
		in.th = newThrottle(net.Topo.Nodes, net.Cfg.PacketSize, cc)
		net.OnNotify = in.th.onNotify
	}
	if fc := net.Cfg.Faults; fc.RetryLimit > 0 {
		// Close the fault-recovery loop: drop reports (fired at the fault
		// barrier) feed this injector's retransmit calendar.
		in.rtx = newRetransmitter(net, fc.RetryLimit, fc.RetryBase)
		net.OnDrop = in.rtx.onDrop
	}
	return in, nil
}

// NewSourceInjector builds a stateful injector whose per-node arrival
// processes follow spec at the given aggregate offered load in
// phits/(node·cycle). The network must be at cycle 0: source state
// (burst phases, next-injection times) is anchored to the simulation
// start. Construction is O(nodes) (every node's first injection seeds
// the calendar); each Cycle afterwards costs O(packets generated),
// like the Bernoulli fast path.
func NewSourceInjector(net *router.Network, sched *Schedule, load float64, seed uint64, spec SourceSpec) (*Injector, error) {
	in, err := NewInjector(net, sched, load, seed)
	if err != nil {
		return nil, err
	}
	if now := net.Now(); now != 0 {
		return nil, fmt.Errorf("traffic: stateful injector needs a fresh network, cycle is %d", now)
	}
	src, err := newSource(spec, net.Topo.Nodes, net.Cfg.PacketSize, in.prob, seed)
	if err != nil {
		return nil, err
	}
	in.src = src
	for node := 0; node < net.Topo.Nodes; node++ {
		if t, ok := src.First(node); ok {
			in.cal.push(calEntry{t: t, node: int32(node)})
		}
	}
	return in, nil
}

// Load returns the configured aggregate offered load in
// phits/(node·cycle).
func (in *Injector) Load() float64 { return in.load }

// Throttled returns the number of injection attempts the congestion
// throttle deferred or suppressed so far (zero when congestion
// management is disabled).
func (in *Injector) Throttled() uint64 {
	if in.th == nil {
		return 0
	}
	return in.th.throttled
}

// Retried returns the number of fault-dropped packets successfully
// re-injected so far (zero unless the fault plan enables retries).
func (in *Injector) Retried() uint64 {
	if in.rtx == nil {
		return 0
	}
	return in.rtx.retried
}

// PendingRetries returns the number of retries still waiting on the
// calendar; drain loops include it in their emptiness condition.
func (in *Injector) PendingRetries() int {
	if in.rtx == nil {
		return 0
	}
	return in.rtx.pending()
}

// RatePct returns node's current congestion-throttle rate in percent of
// line rate; 100 when unthrottled or when congestion management is
// disabled.
func (in *Injector) RatePct(node int) int {
	if in.th == nil {
		return 100
	}
	return int(in.th.ratePct(node))
}

// Cycle generates this cycle's traffic; call it once per cycle before
// Network.Step.
//
// Instead of a Bernoulli draw per node — O(nodes) every cycle no matter
// the load — the fast path skip-samples: geometric jumps land directly on
// the nodes that generate this cycle, so the cost is proportional to the
// number of packets generated. The node set produced is distributed
// identically to independent per-node draws (inversion sampling).
func (in *Injector) Cycle() {
	if in.rtx != nil {
		in.rtx.cycle(in.net.Now())
	}
	if in.src != nil {
		in.cycleCalendar()
		return
	}
	if in.prob <= 0 {
		return
	}
	now := in.net.Now()
	pat := in.sched.At(now)
	nodes := in.net.Topo.Nodes
	if in.prob >= 1 {
		for node := 0; node < nodes; node++ {
			if in.th != nil && !in.th.admit(node, now) {
				continue
			}
			in.net.Inject(node, pat.Dest(node, in.rng))
		}
		return
	}
	if now <= in.drawnThrough {
		// NextArrival certified this cycle empty, consuming the one
		// Geometric draw the loop below would have made.
		return
	}
	var node int
	if in.pendingCycle == now {
		// Resume from the draw NextArrival stashed for this cycle.
		node = in.pendingNode
		in.pendingCycle = -1
	} else {
		if in.pendingCycle >= 0 && in.pendingCycle < now {
			panic("traffic: elision jumped past a pending arrival; cap jumps at NextArrival")
		}
		node = in.rng.Geometric(in.prob)
	}
	for ; node < nodes; node += 1 + in.rng.Geometric(in.prob) {
		if in.th != nil && !in.th.admit(node, now) {
			// Memoryless process, no calendar entry to defer: the
			// attempt is suppressed (counted by the throttle) and no
			// destination is drawn, so the throttled node sheds load at
			// the source rather than queueing it.
			continue
		}
		in.net.Inject(node, pat.Dest(node, in.rng))
	}
}

// NextArrival returns the earliest cycle c with Now() <= c <= limit at
// which this injector would do observable work — a due retransmission, a
// due (or throttle-deferred) calendar entry, or a Bernoulli draw landing
// on a node (throttled nodes count: suppressing the attempt mutates the
// throttle) — or limit+1 when every cycle through limit is certifiably
// empty. It is the injector half of the quiet-cycle elision contract
// (router.Network.ElideHorizon gives the network half): jumping the
// clock to min of the two skips only cycles on which Cycle is a no-op.
//
// On the Bernoulli fast path certification consumes the RNG: one
// Geometric draw per certified-empty cycle — exactly the draw Cycle
// would have made — with the first in-range draw stashed and resumed by
// Cycle, so the stream stays bit-identical to stepping every cycle.
// Consequently the caller must not advance the network past the
// returned cycle: Cycle panics if a stashed arrival was jumped over.
func (in *Injector) NextArrival(limit int64) int64 {
	now := in.net.Now()
	if limit < now {
		limit = now
	}
	next := limit + 1
	if in.rtx != nil && in.rtx.pending() > 0 {
		at := in.rtx.nextDue()
		if at < now {
			at = now
		}
		if at < next {
			next = at
		}
	}
	if in.src != nil {
		// Calendar path: the heap top is the next injection attempt
		// (throttle-deferred entries were re-pushed at their next
		// allowed cycle, so they are covered).
		if top, ok := in.cal.peek(); ok {
			at := top.t
			if at < now {
				at = now
			}
			if at < next {
				next = at
			}
		}
		return next
	}
	if in.prob <= 0 {
		return next
	}
	if in.prob >= 1 {
		return now
	}
	if in.pendingCycle >= 0 {
		if in.pendingCycle < now {
			panic("traffic: elision jumped past a pending arrival; cap jumps at NextArrival")
		}
		if in.pendingCycle < next {
			next = in.pendingCycle
		}
		return next
	}
	// Certify cycles empty one Geometric draw at a time, up to (not
	// including) the earliest other work.
	c := now
	if in.drawnThrough+1 > c {
		c = in.drawnThrough + 1
	}
	for ; c < next; c++ {
		if node := in.rng.Geometric(in.prob); node < in.net.Topo.Nodes {
			in.pendingCycle, in.pendingNode = c, node
			return c
		}
		in.drawnThrough = c
	}
	return next
}

// cycleCalendar pops every node whose next injection is due and
// reschedules it from its arrival process. Destinations draw from the
// injector's shared stream in pop order, which the calendar keeps
// deterministic (ascending node id within a cycle).
func (in *Injector) cycleCalendar() {
	now := in.net.Now()
	var pat Pattern
	for {
		top, ok := in.cal.peek()
		if !ok || top.t > now {
			return
		}
		in.cal.pop()
		node := int(top.node)
		if in.th != nil && !in.th.admit(node, now) {
			// Throttled: defer the entry to the node's next allowed
			// cycle without consuming the arrival (no Next call, no
			// destination draw) — the packet is delayed, not dropped.
			in.cal.push(calEntry{t: in.th.nextAllowed(node), node: top.node})
			continue
		}
		if pat == nil {
			pat = in.sched.At(now)
		}
		in.net.Inject(node, pat.Dest(node, in.rng))
		if next, ok := in.src.Next(node, now); ok {
			in.cal.push(calEntry{t: next, node: top.node})
		}
	}
}
