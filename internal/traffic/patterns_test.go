package traffic

import (
	"math"
	"testing"

	"cbar/internal/rng"
	"cbar/internal/topology"
)

// TestDegenerateTopologyRejected: destination selection cannot work on a
// 1-node system (uniform would spin forever redrawing the source), so
// every constructor must reject it at build time.
func TestDegenerateTopologyRejected(t *testing.T) {
	one := &topology.Dragonfly{Nodes: 1, Groups: 1}
	if _, err := NewUniform(one); err == nil {
		t.Error("uniform accepted 1-node topology")
	}
	if _, err := NewUniform(nil); err == nil {
		t.Error("uniform accepted nil topology")
	}
	if _, err := NewHotspot(one, 0.5, 1); err == nil {
		t.Error("hotspot accepted 1-node topology")
	}
	if _, err := NewShift(one, 1); err == nil {
		t.Error("shift accepted 1-node topology")
	}
	if _, err := NewComplement(one); err == nil {
		t.Error("complement accepted 1-node topology")
	}
	if _, err := NewTornado(one); err == nil {
		t.Error("tornado accepted 1-node topology")
	}
}

func TestHotspotValidation(t *testing.T) {
	tp := topo()
	for _, c := range []struct {
		frac float64
		hot  int
	}{{-0.1, 4}, {1.1, 4}, {0.5, 0}, {0.5, tp.Nodes + 1}} {
		if _, err := NewHotspot(tp, c.frac, c.hot); err == nil {
			t.Errorf("hotspot(%v,%d) accepted", c.frac, c.hot)
		}
	}
}

// TestHotspotShare: the hot set receives its configured traffic share
// plus the uniform spillover, and hot nodes are spread across groups.
func TestHotspotShare(t *testing.T) {
	tp := topo() // 144 nodes, 9 groups
	const frac, hot = 0.3, 8
	p, err := NewHotspot(tp, frac, hot)
	if err != nil {
		t.Fatal(err)
	}
	// The evenly-strided hot set must cover several groups.
	groups := map[int]bool{}
	hits := 0
	for n := 0; n < tp.Nodes; n++ {
		if isHot(p, n) {
			hits++
			groups[tp.GroupOfNode(n)] = true
		}
	}
	if hits != hot {
		t.Fatalf("IsHot marks %d nodes, want %d", hits, hot)
	}
	if len(groups) < 4 {
		t.Fatalf("hot nodes concentrated in %d groups", len(groups))
	}

	r := rng.New(8, 8)
	const draws = 60000
	hotHits := 0
	for i := 0; i < draws; i++ {
		src := i % tp.Nodes
		d := p.Dest(src, r)
		if d == src {
			t.Fatal("hotspot returned the source")
		}
		if d < 0 || d >= tp.Nodes {
			t.Fatalf("destination %d out of range", d)
		}
		if isHot(p, d) {
			hotHits++
		}
	}
	// frac direct + (1-frac) uniform spillover onto hot/Nodes of the
	// id space: 0.3 + 0.7*8/144 = 0.339.
	want := frac + (1-frac)*float64(hot)/float64(tp.Nodes)
	if got := float64(hotHits) / draws; math.Abs(got-want) > 0.02 {
		t.Fatalf("hot share %.3f, want ~%.3f", got, want)
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

// TestHotspotSingleHotNodeSelf: a hot node sending its hotspot share
// cannot target itself; with a single hot node it must fall back to
// uniform rather than loop.
func TestHotspotSingleHotNodeSelf(t *testing.T) {
	tp := topo()
	p, err := NewHotspot(tp, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9, 9)
	src := 0 // node 0 is the strided hot set's first member
	if !isHot(p, src) {
		t.Fatal("node 0 not hot")
	}
	for i := 0; i < 2000; i++ {
		if d := p.Dest(src, r); d == src {
			t.Fatal("hot source targeted itself")
		}
	}
}

// checkBijection asserts a permutation pattern maps the node set onto
// itself exactly once, ignoring its RNG argument.
func checkBijection(t *testing.T, p Pattern, nodes int) {
	t.Helper()
	seen := make([]bool, nodes)
	r := rng.New(1, 1)
	for src := 0; src < nodes; src++ {
		d := p.Dest(src, r)
		if d < 0 || d >= nodes {
			t.Fatalf("%s: dest %d out of range", p.Name(), d)
		}
		if seen[d] {
			t.Fatalf("%s: dest %d repeated", p.Name(), d)
		}
		seen[d] = true
		if again := p.Dest(src, nil); again != d {
			t.Fatalf("%s: nondeterministic permutation (%d then %d)", p.Name(), d, again)
		}
	}
}

func TestPermutationsAreBijections(t *testing.T) {
	for _, params := range []topology.Params{
		{P: 4, A: 4, H: 2},
		{P: 1, A: 1, H: 1}, // 2 nodes, the minimum
		{P: 3, A: 2, H: 1}, // odd per-group sizes
	} {
		tp := topology.MustNew(params)
		shift, err := NewShift(tp, 3%tp.Nodes+1)
		if err != nil {
			// 2-node topology with shift 4 % 2 == 0 is the degenerate
			// case; try shift 1.
			shift, err = NewShift(tp, 1)
			if err != nil {
				t.Fatal(err)
			}
		}
		comp, err := NewComplement(tp)
		if err != nil {
			t.Fatal(err)
		}
		tor, err := NewTornado(tp)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Pattern{shift, comp, tor} {
			checkBijection(t, p, tp.Nodes)
		}
	}
}

func TestShiftValidation(t *testing.T) {
	tp := topo()
	for _, k := range []int{0, tp.Nodes, -tp.Nodes, 3 * tp.Nodes} {
		if _, err := NewShift(tp, k); err == nil {
			t.Errorf("shift %d accepted", k)
		}
	}
	// Negative offsets normalize.
	p, err := NewShift(tp, -1)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Dest(0, nil); d != tp.Nodes-1 {
		t.Fatalf("shift-1 from 0 -> %d", d)
	}
}

// TestTornadoTargetsOppositeGroup: every node keeps its in-group
// position and lands floor(Groups/2) groups away.
func TestTornadoTargetsOppositeGroup(t *testing.T) {
	tp := topo()
	p, err := NewTornado(tp)
	if err != nil {
		t.Fatal(err)
	}
	per := tp.A * tp.P
	for src := 0; src < tp.Nodes; src++ {
		d := p.Dest(src, nil)
		wantG := (tp.GroupOfNode(src) + tp.Groups/2) % tp.Groups
		if tp.GroupOfNode(d) != wantG {
			t.Fatalf("node %d -> group %d, want %d", src, tp.GroupOfNode(d), wantG)
		}
		if d%per != src%per {
			t.Fatalf("node %d changed in-group position", src)
		}
	}
}

// TestComplementMirror: complement maps the ends of the id space onto
// each other.
func TestComplementMirror(t *testing.T) {
	tp := topo()
	p, err := NewComplement(tp)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Dest(0, nil); d != tp.Nodes-1 {
		t.Fatalf("complement(0) = %d", d)
	}
	if d := p.Dest(tp.Nodes-1, nil); d != 0 {
		t.Fatalf("complement(last) = %d", d)
	}
}
