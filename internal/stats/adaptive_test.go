package stats

import (
	"math"
	"testing"

	"cbar/internal/rng"
)

// noise returns a deterministic pseudo-random sequence of n samples
// uniform on [-a, a).
func noise(n int, a float64, seed uint64) []float64 {
	r := rng.New(seed, 7)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = a * (2*r.Float64() - 1)
	}
	return xs
}

// TestMSERTruncateIID: a stationary i.i.d. series has no transient, so
// the truncation point must sit near the start.
func TestMSERTruncateIID(t *testing.T) {
	xs := noise(400, 1, 1)
	for i := range xs {
		xs[i] += 10
	}
	trunc, ok := MSERTruncate(xs, 5)
	if !ok {
		t.Fatal("MSER undetermined on stationary series")
	}
	if trunc > len(xs)/4 {
		t.Fatalf("truncation %d of %d on a stationary series", trunc, len(xs))
	}
}

// TestMSERTruncateTransient: an exponentially decaying initialization
// bias must be truncated — the cut has to land after the bias has
// mostly decayed but well before the end of the series.
func TestMSERTruncateTransient(t *testing.T) {
	const n = 400
	xs := noise(n, 1, 2)
	for i := range xs {
		xs[i] += 10 + 50*math.Exp(-float64(i)/30)
	}
	trunc, ok := MSERTruncate(xs, 5)
	if !ok {
		t.Fatal("MSER undetermined despite long stationary tail")
	}
	// The bias is ~2% of the noise amplitude by sample 120 (4 time
	// constants in, 50*e^-4 = 0.9); MSER should cut somewhere in the
	// decay, not at zero and not deep into the stationary tail.
	if trunc < 30 || trunc > 200 {
		t.Fatalf("truncation %d outside the transient (expected within [30, 200])", trunc)
	}
}

// TestMSERTruncateUndetermined: a series that drifts to the end (no
// steady state in the data) must not report a confident truncation.
func TestMSERTruncateUndetermined(t *testing.T) {
	const n = 200
	xs := noise(n, 0.1, 3)
	for i := range xs {
		xs[i] += float64(i) // unbounded drift: backlog-style growth
	}
	if trunc, ok := MSERTruncate(xs, 5); ok {
		t.Fatalf("MSER confident (trunc %d) on a non-converging series", trunc)
	}
	// Short series are undetermined by definition.
	if _, ok := MSERTruncate(xs[:20], 5); ok {
		t.Fatal("MSER confident on 4 batches")
	}
}

// TestBatchMeansCIIID pins the CI half-width against the closed form
// for an i.i.d. uniform series: half ~= t_{k-1} * sigma / sqrt(n) with
// sigma = 1/sqrt(12).
func TestBatchMeansCIIID(t *testing.T) {
	const n, k = 2000, 20
	r := rng.New(4, 9)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
	}
	mean, half, ok := BatchMeansCI(xs, k)
	if !ok {
		t.Fatal("CI unavailable")
	}
	if math.Abs(mean-0.5) > 0.03 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
	want := TQuantile975(k-1) / math.Sqrt(12) / math.Sqrt(n)
	if half < want/2 || half > want*2 {
		t.Fatalf("half-width %v outside [%v, %v] around the closed form", half, want/2, want*2)
	}
	if _, _, ok := BatchMeansCI(xs[:2*k-1], k); ok {
		t.Fatal("CI claimed with fewer than 2 samples per batch")
	}
}

// TestBatchMeansCIAR1: for an AR(1) series with phi = 0.8 the true
// standard error of the mean is sqrt((1+phi)/(1-phi)) = 3x the naive
// i.i.d. formula. Batch means (batch size >> the 5-cycle correlation
// time) must widen the CI by roughly that factor, where treating the
// samples as independent would not.
func TestBatchMeansCIAR1(t *testing.T) {
	const n, k, phi = 4000, 20, 0.8
	r := rng.New(5, 11)
	xs := make([]float64, n)
	x := 0.0
	for i := 0; i < 100; i++ { // burn-in
		x = phi*x + (2*r.Float64() - 1)
	}
	for i := range xs {
		x = phi*x + (2*r.Float64() - 1)
		xs[i] = x
	}
	var w Welford
	for _, v := range xs {
		w.Add(v)
	}
	naive := 1.96 * w.Std() / math.Sqrt(n)
	_, half, ok := BatchMeansCI(xs, k)
	if !ok {
		t.Fatal("CI unavailable")
	}
	ratio := half / naive
	want := math.Sqrt((1 + phi) / (1 - phi)) // 3.0
	if ratio < want*0.6 || ratio > want*1.8 {
		t.Fatalf("batch-means half %v is %.2fx the naive CI %v; expected ~%.1fx (autocorrelation inflation)",
			half, ratio, naive, want)
	}
}

func TestTQuantile975(t *testing.T) {
	for _, tc := range []struct {
		df   int
		want float64
	}{{1, 12.706}, {10, 2.228}, {30, 2.042}, {50, 2.000}, {1000, 1.960}} {
		if got := TQuantile975(tc.df); got != tc.want {
			t.Errorf("TQuantile975(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
	if !math.IsInf(TQuantile975(0), 1) {
		t.Error("TQuantile975(0) must be +Inf")
	}
}

func TestTrendSlope(t *testing.T) {
	line := make([]float64, 50)
	for i := range line {
		line[i] = 3 + 2.5*float64(i)
	}
	if got := TrendSlope(line); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("slope of exact line = %v, want 2.5", got)
	}
	flat := make([]float64, 50)
	for i := range flat {
		flat[i] = 7
	}
	if got := TrendSlope(flat); math.Abs(got) > 1e-9 {
		t.Errorf("slope of constant = %v, want 0", got)
	}
	if got := TrendSlope(nil); got != 0 {
		t.Errorf("slope of empty = %v, want 0", got)
	}
}
