package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Var() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count %d", w.Count())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean %f", w.Mean())
	}
	// Unbiased variance of that classic sample is 32/7.
	if !almost(w.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var %f", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max %f/%f", w.Min(), w.Max())
	}
}

func TestWelfordSingleSampleVar(t *testing.T) {
	var w Welford
	w.Add(3)
	if w.Var() != 0 || w.Std() != 0 {
		t.Fatal("variance of single sample not 0")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 20, 30, -5, 0.5, 7, 9, 11, 13}
	var all Welford
	for _, x := range xs {
		all.Add(x)
	}
	var a, b Welford
	for i, x := range xs {
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d vs %d", a.Count(), all.Count())
	}
	if !almost(a.Mean(), all.Mean(), 1e-9) || !almost(a.Var(), all.Var(), 1e-9) {
		t.Fatalf("merged mean/var %f/%f vs %f/%f", a.Mean(), a.Var(), all.Mean(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(5)
	a.Merge(&b) // empty other
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed state")
	}
	var c Welford
	c.Merge(&a) // empty receiver
	if c.Count() != 1 || c.Mean() != 5 {
		t.Fatal("merge into empty failed")
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestQuickWelfordMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, x := range xs {
			// Restrict to the magnitudes the simulator produces
			// (cycle counts); near-MaxFloat64 inputs overflow the
			// m2 accumulator, which is out of scope.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			w.Add(x)
			n++
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if n == 0 {
			return true
		}
		return w.Mean() >= lo-1e-9 && w.Mean() <= hi+1e-9 && w.Var() >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMeanAndPercentile(t *testing.T) {
	h := NewHistogram(100)
	for v := int64(1); v <= 10; v++ {
		h.Add(v)
	}
	if h.Count() != 10 {
		t.Fatalf("count %d", h.Count())
	}
	if !almost(h.Mean(), 5.5, 1e-12) {
		t.Fatalf("mean %f", h.Mean())
	}
	if p := h.Percentile(0.5); p != 5 {
		t.Fatalf("p50 = %d, want 5", p)
	}
	if p := h.Percentile(1.0); p != 10 {
		t.Fatalf("p100 = %d, want 10", p)
	}
	if p := h.Percentile(0.0); p != 1 {
		t.Fatalf("p0 = %d, want 1", p)
	}
}

func TestHistogramOverflowAndClamp(t *testing.T) {
	h := NewHistogram(10)
	h.Add(50)
	h.Add(-3)
	if h.Overflow() != 1 {
		t.Fatalf("overflow %d", h.Overflow())
	}
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	// Mean still uses true values.
	if !almost(h.Mean(), 23.5, 1e-12) {
		t.Fatalf("mean %f", h.Mean())
	}
	// Percentile treats overflow as cap.
	if p := h.Percentile(1.0); p != 10 {
		t.Fatalf("p100 = %d, want cap 10", p)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(20), NewHistogram(20)
	a.Add(1)
	a.Add(2)
	b.Add(3)
	b.Add(100)
	a.Merge(b)
	if a.Count() != 4 || a.Overflow() != 1 {
		t.Fatalf("merged count/overflow %d/%d", a.Count(), a.Overflow())
	}
}

func TestHistogramMergeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	NewHistogram(5).Merge(NewHistogram(6))
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(5)
	if h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not neutral")
	}
}

func TestTimeSeriesBucketing(t *testing.T) {
	ts := NewTimeSeries(-50, 10, 10) // covers [-50, 50)
	ts.Add(-50, 1)
	ts.Add(-41, 3) // same bucket as -50
	ts.Add(0, 10)
	ts.Add(49, 7)
	ts.Add(50, 99)   // out of range, dropped
	ts.Add(-51, 99)  // out of range, dropped
	ts.Add(-1000, 9) // far out of range
	if got := ts.Mean(0); !almost(got, 2, 1e-12) {
		t.Fatalf("bucket 0 mean %f", got)
	}
	if got := ts.Mean(5); !almost(got, 10, 1e-12) {
		t.Fatalf("bucket 5 mean %f", got)
	}
	if got := ts.Mean(9); !almost(got, 7, 1e-12) {
		t.Fatalf("bucket 9 mean %f", got)
	}
	if !math.IsNaN(ts.Mean(1)) {
		t.Fatal("empty bucket did not return NaN")
	}
	if ts.BucketTime(0) != -50 || ts.BucketTime(9) != 40 {
		t.Fatal("bucket times wrong")
	}
}

func TestTimeSeriesSeriesSkipsEmpty(t *testing.T) {
	ts := NewTimeSeries(0, 10, 5)
	ts.Add(5, 2)
	ts.Add(45, 4)
	cycles, means := ts.Series()
	if len(cycles) != 2 || len(means) != 2 {
		t.Fatalf("series lengths %d/%d", len(cycles), len(means))
	}
	if cycles[0] != 5 || cycles[1] != 45 {
		t.Fatalf("cycle centers %v", cycles)
	}
}

func TestTimeSeriesMerge(t *testing.T) {
	a := NewTimeSeries(0, 10, 3)
	b := NewTimeSeries(0, 10, 3)
	a.Add(5, 2)
	b.Add(5, 4)
	a.Merge(b)
	if got := a.Mean(0); !almost(got, 3, 1e-12) {
		t.Fatalf("merged mean %f", got)
	}
	if a.CountAt(0) != 2 {
		t.Fatalf("merged count %d", a.CountAt(0))
	}
}

func TestTimeSeriesMergeGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on geometry mismatch")
		}
	}()
	NewTimeSeries(0, 10, 3).Merge(NewTimeSeries(0, 20, 3))
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 %f", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 %f", q)
	}
	if q := Quantile(xs, 0.5); !almost(q, 2.5, 1e-12) {
		t.Fatalf("q50 %f", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile sorted its input in place")
	}
}

func TestMeanHelper(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("mean helper wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean not NaN")
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(2048)
	for i := 0; i < b.N; i++ {
		h.Add(int64(i % 3000))
	}
}

func TestHistogramCapAndOverflowFrac(t *testing.T) {
	h := NewHistogram(100)
	if h.Cap() != 100 {
		t.Fatalf("Cap() = %d", h.Cap())
	}
	if h.OverflowFrac() != 0 {
		t.Fatal("empty histogram has nonzero overflow fraction")
	}
	for i := 0; i < 75; i++ {
		h.Add(int64(i % 50))
	}
	for i := 0; i < 25; i++ {
		h.Add(1000) // beyond the cap
	}
	if got := h.OverflowFrac(); got != 0.25 {
		t.Fatalf("OverflowFrac = %v, want 0.25", got)
	}
	// A percentile landing in the overflow bin saturates at exactly Cap.
	if p := h.Percentile(0.99); p != h.Cap() {
		t.Fatalf("saturated percentile %d, want cap %d", p, h.Cap())
	}
	// A percentile below the overflow mass is exact.
	if p := h.Percentile(0.5); p >= 50 {
		t.Fatalf("P50 = %d, want < 50", p)
	}
}

func TestHistogramMergePreservesOverflow(t *testing.T) {
	a, b := NewHistogram(10), NewHistogram(10)
	a.Add(3)
	b.Add(99)
	a.Merge(b)
	if a.Count() != 2 || a.Overflow() != 1 {
		t.Fatalf("merged count %d overflow %d", a.Count(), a.Overflow())
	}
	if a.OverflowFrac() != 0.5 {
		t.Fatalf("merged OverflowFrac %v", a.OverflowFrac())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging different caps did not panic")
		}
	}()
	a.Merge(NewHistogram(20))
}
