package stats

import "math"

// Adaptive-measurement statistics: MSER warmup truncation, batch-means
// confidence intervals and a least-squares trend test. These back the
// simulator's adaptive measurement engine (internal/sim), which replaces
// fixed warmup+measure windows with a statistically driven stopping rule.

// MSERTruncate locates the warmup-truncation point of a time series by
// the MSER (Marginal Standard Error Rule) heuristic of White: group the
// series into consecutive batches of `batch` samples, and over candidate
// truncation points d (in batches) minimize the squared standard error
// of the remaining batch means,
//
//	MSER(d) = Var(Z[d:]) / (m-d).
//
// The returned truncation is in samples (d*batch). The rule is
// well-determined — ok == true — only when the optimum lies strictly in
// the first half of the series; an optimum at or beyond the midpoint
// means the transient plausibly extends past the collected data and the
// caller should keep simulating. At least 8 full batches are required.
func MSERTruncate(xs []float64, batch int) (trunc int, ok bool) {
	if batch < 1 {
		batch = 1
	}
	m := len(xs) / batch
	if m < 8 {
		return 0, false
	}
	z := make([]float64, m)
	for j := range z {
		s := 0.0
		for i := j * batch; i < (j+1)*batch; i++ {
			s += xs[i]
		}
		z[j] = s / float64(batch)
	}
	// Suffix mean/variance via one reverse accumulation pass.
	stat := make([]float64, m)
	var sum, sumsq float64
	for d := m - 1; d >= 0; d-- {
		sum += z[d]
		sumsq += z[d] * z[d]
		n := float64(m - d)
		mean := sum / n
		v := sumsq/n - mean*mean
		if v < 0 { // numerical noise on constant series
			v = 0
		}
		stat[d] = v / n
	}
	best := 0
	for d := 1; d <= m/2; d++ {
		if stat[d] < stat[best] {
			best = d
		}
	}
	return best * batch, best < m/2
}

// BatchMeansCI estimates a 95% confidence interval for the mean of a
// (possibly autocorrelated) stationary series by the method of
// nonoverlapping batch means: the most recent k*floor(n/k) samples are
// grouped into k consecutive batches, and the CI is built from the
// batch-mean variance with a Student-t critical value on k-1 degrees of
// freedom. Batch size grows with the data (fixed batch count), so
// correlation between neighboring samples is progressively absorbed
// within batches. ok is false when fewer than 2 samples per batch are
// available.
func BatchMeansCI(xs []float64, k int) (mean, half float64, ok bool) {
	if k < 2 || len(xs) < 2*k {
		return 0, 0, false
	}
	bs := len(xs) / k
	start := len(xs) - k*bs // keep the freshest k*bs samples
	var w Welford
	for j := 0; j < k; j++ {
		s := 0.0
		for i := start + j*bs; i < start+(j+1)*bs; i++ {
			s += xs[i]
		}
		w.Add(s / float64(bs))
	}
	mean = w.Mean()
	half = TQuantile975(k-1) * w.Std() / math.Sqrt(float64(k))
	return mean, half, true
}

// tTable975 holds two-sided 95% (upper 97.5%) Student-t critical values
// for 1..30 degrees of freedom.
var tTable975 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TQuantile975 returns the upper 97.5% Student-t critical value (the
// multiplier of a two-sided 95% confidence interval) for df degrees of
// freedom, from a table for df <= 30 and coarse steps beyond, converging
// to the normal 1.960.
func TQuantile975(df int) float64 {
	switch {
	case df < 1:
		return math.Inf(1)
	case df <= len(tTable975):
		return tTable975[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	}
	return 1.960
}

// TrendSlope returns the least-squares slope of xs against its index
// (units of x per sample), or 0 for fewer than 2 samples. The adaptive
// engine applies it to per-bucket backlog samples: a persistent positive
// slope is the signature of a non-converging (saturated) operating
// point.
func TrendSlope(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	// slope = sum((i - iMean)(x - xMean)) / sum((i - iMean)^2)
	iMean := float64(n-1) / 2
	var num, den float64
	for i, x := range xs {
		d := float64(i) - iMean
		num += d * x
		den += d * d
	}
	return num / den
}
