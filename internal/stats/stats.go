// Package stats provides the measurement machinery of the simulator:
// streaming mean/variance accumulators (Welford), latency histograms with
// percentile queries, bucketed time series for transient experiments and
// simple rate counters. Everything is allocation-light so it can be
// updated on the per-packet fast path.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford is a streaming mean/variance accumulator using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance, or 0 with fewer than 2 samples.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample, or 0 with no samples.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample, or 0 with no samples.
func (w *Welford) Max() float64 { return w.max }

// Merge folds accumulator o into w (parallel-run reduction), using the
// Chan et al. pairwise update.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.0f max=%.0f",
		w.n, w.Mean(), w.Std(), w.Min(), w.Max())
}

// Histogram counts integer-valued samples (latencies in cycles) in unit
// bins up to a cap, with an overflow bin, supporting exact percentiles
// below the cap. The zero value is not ready; use NewHistogram.
type Histogram struct {
	bins     []int64
	binCap   int64 // the cap passed to NewHistogram; overflow sits at this value
	overflow int64
	total    int64
	sum      float64
}

// NewHistogram returns a histogram with unit bins for values in [0, max).
func NewHistogram(max int) *Histogram {
	if max < 1 {
		max = 1
	}
	return &Histogram{bins: make([]int64, max), binCap: int64(max)}
}

// Add records one sample. Negative samples clamp to bin 0; samples >= cap
// land in the overflow bin (still counted in mean).
func (h *Histogram) Add(v int64) {
	h.total++
	h.sum += float64(v)
	if v < 0 {
		v = 0
	}
	if int(v) >= len(h.bins) {
		h.overflow++
		return
	}
	h.bins[v]++
}

// Count returns the total number of samples.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Overflow returns the number of samples at or above the bin cap.
func (h *Histogram) Overflow() int64 { return h.overflow }

// OverflowFrac returns the fraction of samples at or above the bin cap,
// or 0 with no samples. A nonzero value means percentiles above
// 1-OverflowFrac are saturated at Cap and should not be trusted.
func (h *Histogram) OverflowFrac() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.overflow) / float64(h.total)
}

// Cap returns the bin cap: the value percentile queries saturate at when
// they land in the overflow bin.
func (h *Histogram) Cap() int64 { return h.binCap }

// Percentile returns the smallest value v such that at least q (0..1) of
// the samples are <= v. Samples in the overflow bin are treated as at the
// cap, so a query landing there returns exactly Cap. With no samples it
// returns 0.
func (h *Histogram) Percentile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for v, c := range h.bins {
		cum += c
		if cum >= target {
			return int64(v)
		}
	}
	return h.binCap
}

// Merge folds histogram o into h. Both must share the same bin cap.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bins) != len(o.bins) || h.binCap != o.binCap {
		panic("stats: merging histograms of different size")
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.overflow += o.overflow
	h.total += o.total
	h.sum += o.sum
}

// TimeSeries accumulates per-bucket means over simulation time, used for
// transient experiments (latency vs cycle, misrouted-fraction vs cycle).
// Buckets are fixed-width in cycles, offset so that negative times (before
// the traffic switch) are representable.
type TimeSeries struct {
	Start  int64 // first cycle covered (may be negative relative time)
	Width  int64 // bucket width in cycles
	sum    []float64
	count  []int64
	labels []int64 // bucket center cycle, computed lazily
}

// NewTimeSeries covers [start, start+n*width) with n buckets of the given
// width in cycles.
func NewTimeSeries(start, width int64, n int) *TimeSeries {
	if width < 1 {
		width = 1
	}
	if n < 1 {
		n = 1
	}
	return &TimeSeries{
		Start: start,
		Width: width,
		sum:   make([]float64, n),
		count: make([]int64, n),
	}
}

// Add records sample v at cycle t. Samples outside the covered range are
// dropped.
func (ts *TimeSeries) Add(t int64, v float64) {
	i := (t - ts.Start) / ts.Width
	if t < ts.Start || int(i) >= len(ts.sum) {
		return
	}
	ts.sum[i] += v
	ts.count[i]++
}

// Buckets returns the number of buckets.
func (ts *TimeSeries) Buckets() int { return len(ts.sum) }

// BucketTime returns the starting cycle of bucket i.
func (ts *TimeSeries) BucketTime(i int) int64 { return ts.Start + int64(i)*ts.Width }

// Mean returns the mean of bucket i, or NaN if the bucket is empty
// (plotting code can skip gaps).
func (ts *TimeSeries) Mean(i int) float64 {
	if ts.count[i] == 0 {
		return math.NaN()
	}
	return ts.sum[i] / float64(ts.count[i])
}

// CountAt returns the number of samples in bucket i.
func (ts *TimeSeries) CountAt(i int) int64 { return ts.count[i] }

// Merge folds series o into ts; both must have identical geometry.
func (ts *TimeSeries) Merge(o *TimeSeries) {
	if ts.Start != o.Start || ts.Width != o.Width || len(ts.sum) != len(o.sum) {
		panic("stats: merging time series of different geometry")
	}
	for i := range ts.sum {
		ts.sum[i] += o.sum[i]
		ts.count[i] += o.count[i]
	}
}

// Series flattens the time series into (cycle, mean) pairs, skipping empty
// buckets.
func (ts *TimeSeries) Series() (cycles []int64, means []float64) {
	for i := range ts.sum {
		if ts.count[i] == 0 {
			continue
		}
		cycles = append(cycles, ts.BucketTime(i)+ts.Width/2)
		means = append(means, ts.Mean(i))
	}
	return cycles, means
}

// Quantile returns the q-quantile (0..1) of a sample slice, interpolating
// between order statistics. It sorts a copy; intended for small result
// sets (per-seed summary values), not the packet fast path.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if q <= 0 {
		return ys[0]
	}
	if q >= 1 {
		return ys[len(ys)-1]
	}
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
