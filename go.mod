module cbar

go 1.24
