package cbar

import (
	"reflect"
	"testing"
)

// The spec parsers are the package's untrusted-input surface: every CLI
// flag value flows through one of them. The fuzz targets pin two
// properties: no input panics, and an accepted spec is stable — parsing
// it twice yields the same value, and (for Faults, which has a canonical
// String) the round trip ParseFaults(f.String()) reproduces f exactly.
// Seed corpora are the documented grammars from the workload catalog and
// the congestion/fault layers.

func FuzzParseTraffic(f *testing.F) {
	for _, s := range []string{
		"un", "adv+1", "adv-1", "adv3", "mix:0.4,1", "hotspot:0.2,8",
		"perm:shift+16", "perm:complement", "tornado",
		"burst:50,200", "burst:50,200,0.8",
		"adv+1+burst:50,200,0.8", "un+skew:0.1,0.5",
		"adv+1+burst:50,200,0.8+skew:0.1,0.5",
		"", "off", "bogus", "mix:", "perm:shift+", "+burst:1,2",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseTraffic(s)
		if err != nil {
			return
		}
		if tr.Name() == "" {
			t.Errorf("ParseTraffic(%q) accepted a spec with an empty name", s)
		}
		again, err := ParseTraffic(s)
		if err != nil {
			t.Fatalf("ParseTraffic(%q) accepted once, rejected twice: %v", s, err)
		}
		if again.Name() != tr.Name() {
			t.Errorf("ParseTraffic(%q) unstable: %q vs %q", s, tr.Name(), again.Name())
		}
	})
}

func FuzzParseCongestion(f *testing.F) {
	for _, s := range []string{
		"off", "on", "on:mark=80,shed=8",
		"on:mark=80,notify=32,shed=8,dec=50,rec=5,every=100,hold=32,min=10",
		"", "on:", "on:mark", "on:mark=", "on:bogus=1", "maybe",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCongestion(s)
		if err != nil {
			return
		}
		again, err := ParseCongestion(s)
		if err != nil {
			t.Fatalf("ParseCongestion(%q) accepted once, rejected twice: %v", s, err)
		}
		if !reflect.DeepEqual(c, again) {
			t.Errorf("ParseCongestion(%q) unstable: %+v vs %+v", s, c, again)
		}
	})
}

func FuzzParseFaults(f *testing.F) {
	for _, s := range []string{
		"off", "linkdown:3,7@500", "linkup:3,7@2500",
		"routerdown:7@500+routerup:7@2500",
		"random:5%@1000", "random:5%@1000,42", "random:0.5%@1,18446744073709551615",
		"linkdown:3,7@500+linkup:3,7@2500+retry:3,200",
		"random:5%@1000+retry:3", "retry:1",
		"", "linkdown:", "random:nan%@5", "random:101%@5", "retry:0", "retry:3+retry:3",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fl, err := ParseFaults(s)
		if err != nil {
			return
		}
		canon := fl.String()
		back, err := ParseFaults(canon)
		if err != nil {
			t.Fatalf("ParseFaults(%q) = %+v, but its String %q does not re-parse: %v", s, fl, canon, err)
		}
		if !reflect.DeepEqual(back, fl) {
			t.Errorf("round trip of %q via %q changed the plan: %+v vs %+v", s, canon, fl, back)
		}
		if again := back.String(); again != canon {
			t.Errorf("String of %q not a fixed point: %q vs %q", s, again, canon)
		}
	})
}
