// Package cbar is a cycle-level Dragonfly network simulator implementing
// Contention-Based Nonminimal Adaptive Routing, a reproduction of
// Fuentes, Vallejo, García, Beivide, Rodríguez, Minkenberg and Valero,
// "Contention-based Nonminimal Adaptive Routing in High-radix Networks",
// IEEE IPDPS 2015 (DOI 10.1109/IPDPS.2015.78).
//
// The library simulates canonical Dragonfly networks (palmtree global
// arrangement) with input/output-buffered virtual-cut-through routers,
// credit-based flow control, virtual channels and a separable batch
// allocator, and provides the seven routing mechanisms of the paper's
// evaluation: the oblivious MIN and VAL, the congestion-based adaptive
// baselines PB (PiggyBacking) and OLM (Opportunistic Local Misrouting),
// and the paper's three contention-based mechanisms Base, Hybrid and
// ECtN (Explicit Contention Notification).
//
// # Quick start
//
//	cfg := cbar.NewConfig(cbar.Tiny, cbar.Base)
//	res, err := cbar.RunSteady(cfg, cbar.Uniform(), 0.2, cbar.SteadyOptions{})
//	if err != nil { ... }
//	fmt.Printf("latency %.1f cycles, throughput %.3f phits/node/cycle\n",
//		res.AvgLatency, res.Accepted)
//
// Three experiment shapes cover the paper's evaluation: [RunSteady]
// (latency/throughput at one offered load), [Sweep] (a load grid in
// parallel) and [RunTransient] (traced response to a traffic-pattern
// switch). [RunExperiment] regenerates any of the paper's tables and
// figures by ID ([ExperimentIDs] enumerates them; cmd/figures is the
// CLI front end). README.md collects the CLI surface and the
// workload/congestion/fault spec grammars in one place.
//
// All simulations are deterministic for a fixed configuration and seed;
// repeated seeds run on all available cores. A sweep flattens its whole
// load×seed grid through one bounded worker pool, and multi-seed
// percentiles come from merged latency histograms (exact cross-seed
// order statistics, with SteadyResult.OverflowFrac flagging saturated
// tails).
//
// # Measurement methodology
//
// Steady-state measurement has two modes. The default fixed mode is
// the paper's §IV methodology: simulate [SteadyOptions].Warmup cycles
// unmeasured, record deliveries for Measure cycles, repeat over Seeds
// seeds (15000-cycle windows and 10 seeds at Paper scale). It is
// deterministic and bit-identical across releases — the golden CSVs
// under testdata/golden pin it — but it spends the same cycle budget
// whether a point converged in a fifth of the window or will never
// converge at all.
//
// Adaptive mode ([SteadyOptions].Adaptive, cmd/sweep and cmd/figures
// -adaptive) spends cycles only where the statistics demand them:
//
//   - Warmup truncation: the run streams per-bucket mean delivery
//     latency and ends warmup when the MSER rule (minimize the squared
//     standard error of the remaining batch means) places the
//     truncation point well inside the collected series. The fixed
//     Warmup acts as a cap, so adaptive warmup never exceeds it.
//   - CI-driven stopping: measurement proceeds in bucket-sized chunks,
//     maintaining batch-means 95% confidence intervals (fixed batch
//     count, growing batch size, so autocorrelation is absorbed as
//     batches widen) on mean latency and throughput; the run stops
//     when both relative half-widths drop below CIRelWidth (default
//     5%) or MaxMeasure cycles (default 4x Measure) are spent.
//   - Saturation short-circuit: a point past its saturation load never
//     converges — the in-flight population grows until the bounded NIC
//     queues fill, after which sources throttle. The detector watches
//     the backlog trend and the blocked-injection fraction over a
//     trailing window and bails out early, flagging the result.
//
// [SteadyResult] reports what was spent and decided: CIHalfLatency and
// CIHalfAccepted (95% half-widths), MeasuredCycles (total measured
// cycles across seeds), WarmupCycles (mean truncated warmup),
// Saturated and Converged. cmd/sweep -adaptive appends them as CSV
// columns (ci_half_latency, measured_cycles, warmup_cycles, saturated,
// converged); fixed-mode CSV output is unchanged. Adaptive results are
// statistically equivalent but not bit-identical to fixed mode; use
// fixed windows when reproducing the paper's exact figures and
// adaptive mode when sweeping large grids for shape.
//
// # Workload catalog
//
// A [Traffic] value combines a destination pattern with an arrival
// process. The paper's §IV-B patterns:
//
//   - [Uniform] (UN): every packet targets a uniformly random other node.
//   - [Adversarial](i) (ADV+i): every node targets a random node in the
//     group i positions away, saturating one global link per group.
//   - [Mixed](f, i): per-packet blend of UN and ADV+i (Figure 6).
//
// The workload-engine patterns, modeling the regimes the congestion
// management literature evaluates adaptive routing under (hotspot and
// bursty congestion in Rocher-Gonzalez et al.; permutation/tornado
// workloads in Versaci's OutFlank routing):
//
//   - Hotspot(f, h): fraction f of all traffic aims at h hot nodes
//     spread evenly over the id space, the rest uniform — persistent
//     endpoint contention (storage targets, parameter servers).
//   - ShiftPermutation(k): fixed bijection dest = (src+k) mod N; single
//     persistent flows with no statistical smoothing.
//   - ComplementPermutation: fixed bijection dest = N-1-src, the
//     arbitrary-size analogue of bit-complement.
//   - Tornado: every node targets its own in-group position
//     floor(Groups/2) groups away — ADV-like global-link pressure as a
//     deterministic permutation.
//
// Arrival-process modifiers compose onto any pattern:
//
//   - WithBurst(on, off, peak): two-state Markov-modulated (on-off)
//     sources; geometric ON phases (mean `on` cycles) injecting at the
//     peak rate alternate with silent OFF phases (mean `off`). peak > 0
//     pins the ON-phase load and adapts the duty cycle; peak == 0 keeps
//     the duty cycle and derives the ON rate from the aggregate load.
//   - WithSkew(frac, share): heterogeneous per-node loads; frac of the
//     nodes carry share of the aggregate traffic.
//
// [ParseTraffic] accepts the same catalog as strings ("hotspot:0.2,8",
// "perm:shift+16", "tornado", "burst:50,200", "adv+1+burst:50,200,0.8",
// "un+skew:0.1,0.5"), which cmd/sweep exposes via -traffic; README.md
// tabulates the full grammar.
//
// Stateful sources keep their next injection time on a calendar (a
// min-heap over nodes), so the per-cycle injection cost stays
// proportional to packets generated, not node count — the homogeneous
// Bernoulli case bypasses the calendar entirely on the original
// skip-sampling fast path, bit-identically.
//
// # Congestion management
//
// [Config].Congestion (cmd/sweep, cmd/figures and cmd/dfsim -congestion,
// specs parsed by [ParseCongestion]) enables a closed-loop
// congestion-control layer modeled on the ECN-style notification
// schemes of the congestion-management literature (Rocher-Gonzalez et
// al.). Four mechanisms compose:
//
//   - Marking: every output port above MarkPct of its credit capacity
//     is mark-hot (maintained by the same threshold watchers PB's
//     saturation flags use, so the hot path stays O(1)); packets
//     granted through a hot port carry a congestion mark to delivery,
//     like an ECN bit piggybacked on the payload.
//   - Notification: a marked delivery schedules a notification back to
//     the source on the event calendar, NotifyLatency cycles later —
//     the signal travels at realistic link latency, it does not
//     teleport.
//   - AIMD throttling: each notification multiplicatively cuts the
//     source NIC's injection rate (DecreasePct, floored at MinRatePct,
//     with a HoldCycles hold-off absorbing the in-flight notification
//     wave of a single event); the rate recovers additively
//     (RecoverPct per RecoverEvery cycles). A throttled node's
//     injection attempts are paced — calendar sources are deferred,
//     not dropped; Bernoulli attempts are suppressed at the source.
//   - Graceful degradation: NIC backlog at ShedCap sheds new packets
//     (counted in SteadyResult.Shed) instead of queueing them, so
//     source queues stay bounded under sustained overload.
//
// SteadyResult reports the loop's activity (Marked, Notified,
// Throttled, Shed); cmd/sweep appends them as CSV columns behind
// -congestion. The layer preserves both determinism contracts: with
// congestion off every simulation is bit-identical to previous
// releases (the golden CSVs pin it), and with it on, results are
// bit-identical at every worker count — notifications are replayed at
// the cycle's sequential point in ascending source-node order (pinned
// by TestParallelCongestionEquivalence).
//
// # Fault model
//
// [Config].Faults (cmd/sweep, cmd/figures and cmd/dfsim -faults, specs
// parsed by [ParseFaults]) schedules a deterministic plan of fabric
// faults: explicit LinkDown/LinkUp and RouterDown/RouterUp events at
// fixed cycles, plus a random clause failing a percentage of the global
// cables at one cycle (expanded from its own seed at build time, so the
// same triple always fails the same cables). Events apply at the
// sequential point of Step — after the event barrier, before the
// routing algorithm's BeginCycle — so fault state, and everything
// downstream of it, is bit-identical at every worker count
// (TestParallelFaultEquivalence pins traces, drop order and counters at
// workers 1-4).
//
// A fault does three things. Liveness: the affected output ports on
// both ends of each failed link go dead, and routing filters every
// candidate set on one per-port flag — adaptive mechanisms treat a dead
// link exactly like an unattractive one and misroute around it, PB
// advertises a dead minimal channel as saturated, and a mechanism with
// no live policy-compliant choice falls back to a router-level escape
// that redirects through a random live transit port (a packet
// exhausting its escape budget is dropped). Kills: packets already
// committed to a failed link — staged, in the pipeline, serializing on
// the wire, or queued on a dead router — are removed and counted in
// SteadyResult.Dropped, with each kill reversing exactly the credit and
// grant accounting its location held, so CheckInvariants stays clean
// through any fault sequence. Reachability: a live-component map is
// recomputed per event; packets to a partitioned destination are
// counted Unroutable at injection (and in-flight ones at their next
// routing decision) instead of wandering a fabric with no path.
//
// Faults.RetryLimit enables the optional source-side reaction:
// dropped packets are re-offered by the NIC up to the limit with
// exponential backoff (SteadyResult.Retried); the default mode is
// drop-and-count. With no plan scheduled the layer is bit-inert — the
// golden CSVs and TestFaultsOffIsInert pin that a zero Faults value,
// and even an armed plan before its first event, simulate every cycle
// bit-identically to a build without the layer.
//
// # Performance architecture
//
// The per-cycle cost of the simulator scales with traffic, not topology
// size. Network.Step services three intrusive active sets — NICs with
// backlog, routers with unrouted head packets and routers with staged
// output work — whose membership is updated at the mutation points
// (injection, event handling, allocation grants), so an idle component
// costs nothing. Between cycles, work in flight lives on a calendar
// event ring sized to the maximum link+pipeline horizon. Delivered
// packets are recycled through a freelist and traffic generation
// skip-samples the next injecting node geometrically, so a steady-state
// cycle allocates no memory at all.
//
// The routing-algorithm layer is event-driven on the same principle.
// Each output port's occupancy is a running counter updated at its three
// mutation points (allocation grant, credit return, output-buffer free),
// so the credit estimate congestion-based mechanisms read is O(1), and
// occupancy-threshold watchers fire exactly when a registered threshold
// is crossed: PB's saturation flags flip at the crossing instant instead
// of a per-cycle all-port recompute, as a hardware credit comparator
// would raise the piggybacked bit. ECtN's periodic group combine visits
// only the groups whose partial counters changed since their last
// exchange (a dirty-group set maintained by the counter mutations), so
// an idle period costs O(1). The original full recomputes survive behind
// debug flags (the fabric's FullScan, the policies' ReferenceScan) and
// equivalence tests pin both modes to cycle-for-cycle identical results;
// `go run ./cmd/bench` tracks the hot path's speed in BENCH_step.json.
//
// A single run can additionally be stepped by multiple cores
// (Config.Workers, cmd/sweep and cmd/figures -workers): the network is
// partitioned into contiguous blocks of whole groups and each cycle runs
// its phases in parallel across the shards, with barriers between
// phases. Cross-shard effects — packets crossing global links, credit
// returns to upstream groups — travel through per-(source, target)
// mailboxes drained at the cycle barrier in ascending (shard, seq)
// order, and delivery callbacks are collected per shard and replayed at
// the handle barrier in ascending destination order. Every routing
// decision consults only the deciding router and its own group's
// broadcast state, and per-router RNG streams keep random choices
// shard-local, so the parallel stepper is cycle-for-cycle and
// bit-for-bit identical to the sequential one at every worker count
// (pinned by TestParallelStepEquivalence) — the -workers flag changes
// wall-clock time and nothing else. Sweeps split GOMAXPROCS
// automatically: wide load×seed grids parallelize across runs, narrow
// (paper-scale) grids shard inside each run.
//
// # Quiet-cycle elision
//
// Idle time costs events, not cycles. When a cycle is provably quiet —
// no fault event pending and, on every shard, empty event rings and
// empty active sets — nothing in the fabric can change until the next
// scheduled event, so the runner jumps the clock straight to it instead
// of stepping through the gap. The jump target is the minimum of the
// next event-ring occupancy, the next calendar injection, the next
// retransmit due-time, the next ECtN combine tick, the next fault
// event, and the measurement boundary that called for the advance
// (warmup end, adaptive bucket end, transient trace edge), so every
// measurement series keeps its exact geometry.
//
// Elision is an optimization, never a semantic: an elided span consumes
// exactly the PRNG draws that stepping it would have, so results are
// bit-identical with elision on or off, at every worker count
// (TestElisionEquivalence and the golden CSVs pin it). For Bernoulli
// sources that means the skip-sampling geometric draw for a span is
// taken once, up front, and replayed when the clock reaches it; for
// calendar sources the next injection is a heap peek. Deep-idle regimes
// run at O(events) — the StepSmallElideIdle/StepPaperElideIdle entries
// in BENCH_step.json pin the win beside the per-cycle idle entries.
//
// New implementations join by answering two horizon queries:
//
//   - A routing algorithm with periodic or scheduled work implements
//     the optional CycleHorizon interface (internal/router):
//     NextAlgCycle(n) returns the next cycle at which the algorithm
//     must observe the network, or NoPendingCycle if it is purely
//     reactive (driven entirely by packet events, like the contention
//     counters), or ok=false to veto elision outright (the
//     reference-scan debug modes do this, since they recompute state
//     every cycle by design). Returning a cycle earlier than necessary
//     is always safe; returning one later than the algorithm's next
//     observable action breaks bit-identity.
//   - A traffic source must answer Injector.NextArrival(limit): the
//     cycle of the first arrival at or before limit, or limit+1 if
//     there is none — and, critically, it must consume exactly the
//     random draws that per-cycle generation over the certified-empty
//     span would have consumed, so that stepping and jumping leave the
//     source streams in identical states.
//
// Network.ElideHorizon(target) composes the queries and the quiet
// check; Network.ElideTo(cycle) performs the jump. The horizon is
// conservative by construction: any doubt (non-quiet shard, vetoing
// algorithm, pending fault) falls back to plain stepping, which is
// always correct.
//
// # Determinism contracts
//
// Everything above rests on one promise: a (configuration, seed) pair
// produces bit-identical traces at every worker count and across
// commits. The dynamic guards — the equivalence tests, golden CSVs and
// CheckInvariants sweeps — catch a violation after it happens, on some
// input; the source-level contracts below make violations build breaks
// instead. They are enforced mechanically by detlint (internal/lint,
// run as `go run ./cmd/detlint ./...`, a hard CI gate) over the
// deterministic packages internal/{router,routing,sim,traffic,core,
// topology}:
//
//   - Map-iteration order (maprange): no `range` over a map. Go
//     randomizes iteration order per run, so any map range whose visit
//     order can reach simulation state — counters, schedules, RNG
//     draws, output rows — is a bug. A range that provably normalizes
//     its order (sorts the keys, reduces commutatively into per-key
//     slots, asserts per-key facts in tests) carries a
//     `//lint:ordered <reason>` annotation; the annotation analyzer
//     rejects reason-less or stale annotations.
//   - RNG purity (rngpurity): no math/rand, no time.Now. Every random
//     decision draws from the per-entity PCG streams of internal/rng,
//     and every stream is seeded from (run seed, entity id) or split
//     off an existing stream — never from wall clock, process state or
//     a value whose derivation the analyzer cannot trace to a seed.
//   - Sequential points (sequentialpoint): delivery and notification
//     replay, fault-event application, Alg.BeginCycle and the outbox
//     merge mutate cross-shard state with no synchronization of their
//     own; they are registered barrier-only and may only be called
//     from their registered call sites in Step/stepParallel, may never
//     be taken as function values, and may not be reachable through
//     the call graph from the parallel phase roots (the shard worker
//     bodies and the routing hook surface Route/OnHead/OnArrive/
//     OnDequeue/OnGrant).
//   - Field encapsulation (fieldenc): the accounting fields the
//     invariant auditor and the watcher pipeline lean on — port
//     occupancy (written only via Router.occDelta, which fires the
//     threshold watchers), credit/output-buffer counters, ECN-hot
//     flags, active-set membership — may only be assigned inside their
//     registered mutator functions.
//   - Float accumulation order (floatorder): no compound float
//     assignment inside a loop whose iteration order is
//     nondeterministic; float addition is not associative, and
//     run-dependent low bits poison the golden CSVs and the CI
//     regression gates.
//   - Shard isolation (shardisolation): a whole-program dataflow over
//     the call graph from the parallel roots. Within a parallel
//     section, every write must target state the executing shard
//     provably owns: derived from the worker's own shard, reached
//     through a registered shard table with a locally-derived index,
//     or produced fresh. Reading a registered cross-shard field (a
//     packet's destination coordinates, a port's upstream/peer
//     coordinates) taints the derivation, including through function
//     parameters — handing a tainted index to a helper demotes that
//     helper's parameter program-wide. Cross-shard effects must flow
//     through a registered conduit (the mailbox append, the GroupDirty
//     shard lanes); anything else needs a reviewed
//     `//lint:sharded <reason>` stating the ownership argument (e.g.
//     the occupancy watchers, which fire on the port-owning shard).
//   - Hot-path allocation freedom (allocfree): a whole-program sweep
//     over the call graph from the hot roots (Step and the parallel
//     coordinator, event handling, NIC drain, steady-state injection,
//     the per-cycle traffic driver, the routing hook surface).
//     make/new, escaping composite literals, appends onto slices not
//     registered as pooled (or compacted via [:0]), closures, fmt
//     calls, string concatenation and interface boxing are findings;
//     panic arguments are exempt, registered ColdPath functions
//     (fault application, invariant sweeps) prune the walk, and a
//     reviewed `//lint:alloc <reason>` states why a remaining
//     allocation is not steady-state (freelist warm-up, amortized
//     ring doubling, non-escaping predicates). Stale or reason-less
//     annotations are findings themselves.
//
// The registry of contracts lives in lint.DefaultConfig; new
// deterministic packages (e.g. additional topology backends) join by
// adding their import path and registering their own barrier-only
// functions and encapsulated fields — plus, for the whole-program
// rules, their shard tables, cross-shard fields and index-preserving
// id accessors, and any cross-shard conduit they introduce (a
// direction-1 topology backend that delivers across shards by a new
// path must register that function in ShardConduits, or every write it
// performs is a finding).
package cbar
