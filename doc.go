// Package cbar is a cycle-level Dragonfly network simulator implementing
// Contention-Based Nonminimal Adaptive Routing, a reproduction of
// Fuentes, Vallejo, García, Beivide, Rodríguez, Minkenberg and Valero,
// "Contention-based Nonminimal Adaptive Routing in High-radix Networks",
// IEEE IPDPS 2015 (DOI 10.1109/IPDPS.2015.78).
//
// The library simulates canonical Dragonfly networks (palmtree global
// arrangement) with input/output-buffered virtual-cut-through routers,
// credit-based flow control, virtual channels and a separable batch
// allocator, and provides the seven routing mechanisms of the paper's
// evaluation: the oblivious MIN and VAL, the congestion-based adaptive
// baselines PB (PiggyBacking) and OLM (Opportunistic Local Misrouting),
// and the paper's three contention-based mechanisms Base, Hybrid and
// ECtN (Explicit Contention Notification).
//
// # Quick start
//
//	cfg := cbar.NewConfig(cbar.Tiny, cbar.Base)
//	res, err := cbar.RunSteady(cfg, cbar.Uniform(), 0.2, cbar.SteadyOptions{})
//	if err != nil { ... }
//	fmt.Printf("latency %.1f cycles, throughput %.3f phits/node/cycle\n",
//		res.AvgLatency, res.Accepted)
//
// Three experiment shapes cover the paper's evaluation: RunSteady
// (latency/throughput at one offered load), Sweep (a load grid in
// parallel) and RunTransient (traced response to a traffic-pattern
// switch). RunExperiment regenerates any of the paper's tables and
// figures by ID; see EXPERIMENTS.md for paper-versus-measured results.
//
// All simulations are deterministic for a fixed configuration and seed;
// repeated seeds run on all available cores.
//
// # Performance architecture
//
// The per-cycle cost of the simulator scales with traffic, not topology
// size. Network.Step services three intrusive active sets — NICs with
// backlog, routers with unrouted head packets and routers with staged
// output work — whose membership is updated at the mutation points
// (injection, event handling, allocation grants), so an idle component
// costs nothing. Between cycles, work in flight lives on a calendar
// event ring sized to the maximum link+pipeline horizon. Delivered
// packets are recycled through a freelist and traffic generation
// skip-samples the next injecting node geometrically, so a steady-state
// cycle allocates no memory at all.
//
// The routing-algorithm layer is event-driven on the same principle.
// Each output port's occupancy is a running counter updated at its three
// mutation points (allocation grant, credit return, output-buffer free),
// so the credit estimate congestion-based mechanisms read is O(1), and
// occupancy-threshold watchers fire exactly when a registered threshold
// is crossed: PB's saturation flags flip at the crossing instant instead
// of a per-cycle all-port recompute, as a hardware credit comparator
// would raise the piggybacked bit. ECtN's periodic group combine visits
// only the groups whose partial counters changed since their last
// exchange (a dirty-group set maintained by the counter mutations), so
// an idle period costs O(1). The original full recomputes survive behind
// debug flags (the fabric's FullScan, the policies' ReferenceScan) and
// equivalence tests pin both modes to cycle-for-cycle identical results;
// `go run ./cmd/bench` tracks the hot path's speed in BENCH_step.json.
package cbar
