package cbar

import (
	"fmt"
	"strconv"
	"strings"

	"cbar/internal/router"
)

// FaultKind enumerates the fault-plan event types.
type FaultKind int

// Fault event kinds.
const (
	// LinkDown fails one directed cable pair: the link behind output
	// port Port of router Router and its reverse direction.
	LinkDown FaultKind = iota
	// LinkUp repairs a previously failed link.
	LinkUp
	// RouterDown fails a whole router: every attached link (including
	// its NICs' injection/ejection channels) goes dead and its queued
	// packets are killed.
	RouterDown
	// RouterUp repairs a previously failed router (links that were also
	// failed individually stay down until their own LinkUp).
	RouterUp
)

// String returns the kind's spec-clause name ("linkdown", "routerup",
// ...), as ParseFaults accepts.
func (k FaultKind) String() string {
	switch k {
	case LinkDown:
		return "linkdown"
	case LinkUp:
		return "linkup"
	case RouterDown:
		return "routerdown"
	case RouterUp:
		return "routerup"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one scheduled fault: at cycle Cycle, the given kind is
// applied to router Router (and, for link events, its output port
// Port). Events are applied at the sequential point of the cycle, so
// fault state — and every downstream effect — is bit-identical at every
// worker count.
type FaultEvent struct {
	// Kind selects what fails or recovers.
	Kind FaultKind
	// Router is the affected router id.
	Router int
	// Port is the router-side output port of a link event (ignored for
	// router events). Ports order injection, then local, then global
	// channels; only local/global ports can fail individually.
	Port int
	// Cycle is when the event applies (at the cycle's sequential point).
	Cycle int64
}

// Faults is a deterministic fault plan: scheduled link/router failures
// and repairs, an optional random link-failure expansion, and the
// source retransmission policy for killed packets. The zero value
// schedules nothing and is bit-inert — the simulation is identical to a
// build without the fault engine.
type Faults struct {
	// Events are explicitly scheduled faults, in any order (the engine
	// sorts them by cycle).
	Events []FaultEvent
	// RandomPct, when positive, additionally fails that percentage of
	// the topology's global cables (at least one) at cycle RandomAt,
	// drawn from RandomSeed. The expansion is deterministic: same
	// topology, same seed, same cables.
	RandomPct float64
	// RandomAt is the cycle the random expansion applies at.
	RandomAt int64
	// RandomSeed seeds the random cable draw (0 is a valid seed).
	RandomSeed uint64
	// RetryLimit, when positive, makes the traffic sources retransmit
	// killed packets up to this many times with exponential backoff
	// (RetryBase<<attempt cycles; RetryBase defaults to
	// LatencyLocal+LatencyGlobal). 0 — the default — drops and counts.
	RetryLimit int
	// RetryBase overrides the backoff base in cycles (0 = default).
	RetryBase int64
}

// Enabled reports whether the plan schedules any fault.
func (f Faults) Enabled() bool { return len(f.Events) > 0 || f.RandomPct > 0 }

func (f Faults) internal() router.FaultConfig {
	fc := router.FaultConfig{
		RandomPct:  f.RandomPct,
		RandomAt:   f.RandomAt,
		RandomSeed: f.RandomSeed,
		RetryLimit: f.RetryLimit,
		RetryBase:  f.RetryBase,
	}
	for _, e := range f.Events {
		fc.Events = append(fc.Events, router.FaultEvent{
			Kind:   router.FaultKind(e.Kind),
			Router: int32(e.Router),
			Port:   int16(e.Port),
			Cycle:  e.Cycle,
		})
	}
	return fc
}

// String renders the plan in the canonical ParseFaults syntax
// ("off" for the zero value). ParseFaults(f.String()) reproduces f.
func (f Faults) String() string {
	var parts []string
	for _, e := range f.Events {
		switch e.Kind {
		case LinkDown, LinkUp:
			parts = append(parts, fmt.Sprintf("%s:%d,%d@%d", e.Kind, e.Router, e.Port, e.Cycle))
		default:
			parts = append(parts, fmt.Sprintf("%s:%d@%d", e.Kind, e.Router, e.Cycle))
		}
	}
	if f.RandomPct > 0 {
		p := fmt.Sprintf("random:%s%%@%d", strconv.FormatFloat(f.RandomPct, 'g', -1, 64), f.RandomAt)
		if f.RandomSeed != 0 {
			p += "," + strconv.FormatUint(f.RandomSeed, 10)
		}
		parts = append(parts, p)
	}
	if f.RetryLimit > 0 {
		p := "retry:" + strconv.Itoa(f.RetryLimit)
		if f.RetryBase != 0 {
			p += "," + strconv.FormatInt(f.RetryBase, 10)
		}
		parts = append(parts, p)
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, "+")
}

// ParseFaults resolves a fault-plan specification string:
//
//	"off"                      no faults (the default)
//	"linkdown:12,5@1000"       fail router 12's output port 5 at cycle 1000
//	"linkup:12,5@3000"         repair it at cycle 3000
//	"routerdown:7@500"         fail router 7 (all its links) at cycle 500
//	"routerup:7@2500"          repair router 7 at cycle 2500
//	"random:5%@1000"           fail 5% of the global cables at cycle 1000
//	"random:5%@1000,42"        same, drawn from seed 42
//	"retry:3"                  sources retransmit killed packets up to 3
//	                           times with exponential backoff
//	"retry:3,200"              same, with a 200-cycle backoff base
//
// Specs compose with '+': "random:5%@1000+retry:3". Router/port bounds
// are validated against the simulated topology when the network is
// built.
func ParseFaults(s string) (Faults, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	if ls == "" || ls == "off" {
		return Faults{}, nil
	}
	var f Faults
	for _, part := range strings.Split(ls, "+") {
		part = strings.TrimSpace(part)
		name, rest, ok := strings.Cut(part, ":")
		if !ok {
			return Faults{}, fmt.Errorf("cbar: fault spec %q in %q is not kind:args (linkdown linkup routerdown routerup random retry)", part, s)
		}
		switch name {
		case "linkdown", "linkup", "routerdown", "routerup":
			e, err := parseFaultEvent(name, rest)
			if err != nil {
				return Faults{}, fmt.Errorf("cbar: bad fault spec %q in %q: %v", part, s, err)
			}
			f.Events = append(f.Events, e)
		case "random":
			if f.RandomPct > 0 {
				return Faults{}, fmt.Errorf("cbar: duplicate random spec in %q", s)
			}
			pct, at, seed, err := parseRandomFaults(rest)
			if err != nil {
				return Faults{}, fmt.Errorf("cbar: bad random fault spec %q in %q: %v", part, s, err)
			}
			f.RandomPct, f.RandomAt, f.RandomSeed = pct, at, seed
		case "retry":
			if f.RetryLimit > 0 {
				return Faults{}, fmt.Errorf("cbar: duplicate retry spec in %q", s)
			}
			limit, base, err := parseRetry(rest)
			if err != nil {
				return Faults{}, fmt.Errorf("cbar: bad retry spec %q in %q: %v", part, s, err)
			}
			f.RetryLimit, f.RetryBase = limit, base
		default:
			return Faults{}, fmt.Errorf("cbar: unknown fault kind %q in %q (linkdown linkup routerdown routerup random retry)", name, s)
		}
	}
	return f, nil
}

// parseFaultEvent parses "R,P@C" (link kinds) or "R@C" (router kinds).
func parseFaultEvent(name, rest string) (FaultEvent, error) {
	target, cycStr, ok := strings.Cut(rest, "@")
	if !ok {
		return FaultEvent{}, fmt.Errorf("missing @CYCLE")
	}
	cyc, err := strconv.ParseInt(strings.TrimSpace(cycStr), 10, 64)
	if err != nil {
		return FaultEvent{}, fmt.Errorf("bad cycle: %v", err)
	}
	e := FaultEvent{Cycle: cyc}
	switch name {
	case "linkdown":
		e.Kind = LinkDown
	case "linkup":
		e.Kind = LinkUp
	case "routerdown":
		e.Kind = RouterDown
	case "routerup":
		e.Kind = RouterUp
	}
	if e.Kind == LinkDown || e.Kind == LinkUp {
		r, p, err := parseIntPair(target)
		if err != nil {
			return FaultEvent{}, fmt.Errorf("want ROUTER,PORT@CYCLE: %v", err)
		}
		e.Router, e.Port = r, p
	} else {
		r, err := strconv.Atoi(strings.TrimSpace(target))
		if err != nil {
			return FaultEvent{}, fmt.Errorf("want ROUTER@CYCLE: %v", err)
		}
		e.Router = r
	}
	return e, nil
}

// parseRandomFaults parses "F%@C[,SEED]".
func parseRandomFaults(rest string) (pct float64, at int64, seed uint64, err error) {
	pctStr, tail, ok := strings.Cut(rest, "@")
	if !ok {
		return 0, 0, 0, fmt.Errorf("missing @CYCLE")
	}
	pctStr = strings.TrimSuffix(strings.TrimSpace(pctStr), "%")
	pct, err = strconv.ParseFloat(pctStr, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad percentage: %v", err)
	}
	// Negated comparison so NaN (which fails both directed checks) is
	// rejected too.
	if !(pct > 0 && pct <= 100) {
		return 0, 0, 0, fmt.Errorf("percentage %v outside (0,100]", pct)
	}
	atStr, seedStr, hasSeed := strings.Cut(tail, ",")
	at, err = strconv.ParseInt(strings.TrimSpace(atStr), 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad cycle: %v", err)
	}
	if hasSeed {
		seed, err = strconv.ParseUint(strings.TrimSpace(seedStr), 10, 64)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bad seed: %v", err)
		}
	}
	return pct, at, seed, nil
}

// parseRetry parses "N[,BASE]".
func parseRetry(rest string) (limit int, base int64, err error) {
	nStr, baseStr, hasBase := strings.Cut(rest, ",")
	limit, err = strconv.Atoi(strings.TrimSpace(nStr))
	if err != nil {
		return 0, 0, fmt.Errorf("bad limit: %v", err)
	}
	if limit < 1 {
		return 0, 0, fmt.Errorf("limit %d must be >= 1", limit)
	}
	if hasBase {
		base, err = strconv.ParseInt(strings.TrimSpace(baseStr), 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad backoff base: %v", err)
		}
		if base < 1 {
			return 0, 0, fmt.Errorf("backoff base %d must be >= 1", base)
		}
	}
	return limit, base, nil
}

// parseIntPair parses "INT,INT".
func parseIntPair(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("want two comma-separated values")
	}
	x, err := strconv.Atoi(strings.TrimSpace(a))
	if err != nil {
		return 0, 0, err
	}
	y, err := strconv.Atoi(strings.TrimSpace(b))
	if err != nil {
		return 0, 0, err
	}
	return x, y, nil
}
