package cbar

// One benchmark per table/figure of the paper. Each bench runs a
// reduced-scale version of the experiment (tiny network, single seed,
// short windows) and reports the quantities the paper plots via
// b.ReportMetric, so `go test -bench=.` both exercises the full harness
// and prints the reproduction's key numbers. Full-scale regeneration is
// `go run ./cmd/figures -fig all -scale paper`.

import (
	"io"
	"testing"
)

// benchSteadyOpts keeps the macro-benchmarks fast; the windows are long
// enough for qualitative shape, not for publication noise levels.
var benchSteadyOpts = SteadyOptions{Warmup: 800, Measure: 800, Seeds: 1}

func benchSteady(b *testing.B, alg Algorithm, t Traffic, load float64) SteadyResult {
	b.Helper()
	cfg := NewConfig(Tiny, alg)
	res, err := RunSteady(cfg, t, load, benchSteadyOpts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTableI_Defaults checks the Table I defaults end to end: the
// paper-scale config must carry the exact published parameters, and a
// single steady point must run.
func BenchmarkTableI_Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := NewConfig(Paper, Base)
		if cfg.Nodes() != 16512 || cfg.PacketSize != 8 || cfg.BaseTh != 6 {
			b.Fatalf("Table I defaults broken: %+v", cfg)
		}
		r := benchSteady(b, Base, Uniform(), 0.2)
		b.ReportMetric(r.AvgLatency, "lat-cycles")
	}
}

// BenchmarkFig5a_UN: uniform traffic — Base must match MIN's optimal
// latency (the paper's headline low-load claim).
func BenchmarkFig5a_UN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		min := benchSteady(b, MIN, Uniform(), 0.2)
		base := benchSteady(b, Base, Uniform(), 0.2)
		olm := benchSteady(b, OLM, Uniform(), 0.2)
		b.ReportMetric(min.AvgLatency, "MIN-lat")
		b.ReportMetric(base.AvgLatency, "Base-lat")
		b.ReportMetric(olm.AvgLatency, "OLM-lat")
	}
}

// BenchmarkFig5b_ADV1: adversarial ADV+1 — MIN collapses at the single
// global link bound while Base approaches the Valiant limit.
func BenchmarkFig5b_ADV1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		min := benchSteady(b, MIN, Adversarial(1), 0.2)
		val := benchSteady(b, VAL, Adversarial(1), 0.2)
		base := benchSteady(b, Base, Adversarial(1), 0.2)
		b.ReportMetric(min.Accepted, "MIN-acc")
		b.ReportMetric(val.Accepted, "VAL-acc")
		b.ReportMetric(base.Accepted, "Base-acc")
	}
}

// BenchmarkFig5c_ADVh: ADV+h forces local misrouting in the intermediate
// group; the local-misroute fraction is the figure's distinguishing
// signal.
func BenchmarkFig5c_ADVh(b *testing.B) {
	h := NewConfig(Tiny, Base).H
	for i := 0; i < b.N; i++ {
		base := benchSteady(b, Base, Adversarial(h), 0.2)
		b.ReportMetric(base.Accepted, "Base-acc")
		b.ReportMetric(base.MisroutedLocal*100, "Base-localmis-pct")
	}
}

// BenchmarkFig6_Mixed: a 50/50 UN/ADV+1 blend at the figure's load —
// ECtN's group-wide counters should stay competitive with OLM.
func BenchmarkFig6_Mixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ectn := benchSteady(b, ECtN, Mixed(0.5, 1), 0.2)
		olm := benchSteady(b, OLM, Mixed(0.5, 1), 0.2)
		b.ReportMetric(ectn.AvgLatency, "ECtN-lat")
		b.ReportMetric(olm.AvgLatency, "OLM-lat")
	}
}

func benchTransient(b *testing.B, alg Algorithm, mutate func(*Config)) TransientResult {
	b.Helper()
	cfg := NewConfig(Tiny, alg)
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := RunTransient(cfg, Uniform(), Adversarial(1), 0.35,
		TransientOptions{Warmup: 1200, Pre: 100, Post: 600, Bucket: 20, Seeds: 1})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// misWindow averages misrouted% over delivery times [lo,hi).
func misWindow(r TransientResult, lo, hi int64) float64 {
	var s float64
	n := 0
	for i, t := range r.Times {
		if t >= lo && t < hi {
			s += r.MisroutedPct[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// BenchmarkFig7a_TransientLatency: latency trace after UN->ADV+1; report
// the settled post-switch latency for Base vs OLM.
func BenchmarkFig7a_TransientLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := benchTransient(b, Base, nil)
		olm := benchTransient(b, OLM, nil)
		lat := func(r TransientResult) float64 {
			var s float64
			n := 0
			for j, t := range r.Times {
				if t >= 300 && t < 500 {
					s += r.Latency[j]
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return s / float64(n)
		}
		b.ReportMetric(lat(base), "Base-lat")
		b.ReportMetric(lat(olm), "OLM-lat")
	}
}

// BenchmarkFig7b_TransientMisroute: the adaptation-speed signal — the
// misrouted fraction shortly after the switch (contention mechanisms
// jump to ~100%, credit mechanisms lag).
func BenchmarkFig7b_TransientMisroute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := benchTransient(b, Base, nil)
		olm := benchTransient(b, OLM, nil)
		ectn := benchTransient(b, ECtN, nil)
		b.ReportMetric(misWindow(base, 250, 450), "Base-mis-pct")
		b.ReportMetric(misWindow(olm, 250, 450), "OLM-mis-pct")
		b.ReportMetric(misWindow(ectn, 250, 450), "ECtN-mis-pct")
	}
}

// BenchmarkFig8_LargeBuffers: with 8x buffers the contention mechanisms
// keep their adaptation speed while credit-based OLM slows further — the
// buffer-independence claim.
func BenchmarkFig8_LargeBuffers(b *testing.B) {
	grow := func(c *Config) {
		c.BufLocal, c.BufInjection, c.BufGlobal = 256, 256, 2048
	}
	for i := 0; i < b.N; i++ {
		base := benchTransient(b, Base, grow)
		olm := benchTransient(b, OLM, grow)
		b.ReportMetric(misWindow(base, 250, 450), "Base-mis-pct")
		b.ReportMetric(misWindow(olm, 250, 450), "OLM-mis-pct")
	}
}

// BenchmarkFig9_Oscillation: post-convergence latency jitter — PB's ECN
// feedback loop oscillates, ECtN is flat.
func BenchmarkFig9_Oscillation(b *testing.B) {
	long := TransientOptions{Warmup: 1200, Pre: 0, Post: 1600, Bucket: 50, Seeds: 1}
	for i := 0; i < b.N; i++ {
		std := func(alg Algorithm) float64 {
			cfg := NewConfig(Tiny, alg)
			r, err := RunTransient(cfg, Uniform(), Adversarial(1), 0.35, long)
			if err != nil {
				b.Fatal(err)
			}
			var mean, m2 float64
			n := 0.0
			for j, t := range r.Times {
				if t < 600 {
					continue
				}
				n++
				d := r.Latency[j] - mean
				mean += d / n
				m2 += d * (r.Latency[j] - mean)
			}
			if n < 2 {
				return 0
			}
			return m2 / (n - 1)
		}
		b.ReportMetric(std(PB), "PB-lat-var")
		b.ReportMetric(std(ECtN), "ECtN-lat-var")
	}
}

// BenchmarkFig10a_ThresholdUN: a too-low threshold penalizes uniform
// traffic (false triggers).
func BenchmarkFig10a_ThresholdUN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lat := func(th int) float64 {
			cfg := NewConfig(Tiny, Base)
			cfg.BaseTh = th
			r, err := RunSteady(cfg, Uniform(), 0.4, benchSteadyOpts)
			if err != nil {
				b.Fatal(err)
			}
			return r.AvgLatency
		}
		b.ReportMetric(lat(1), "th1-lat")
		b.ReportMetric(lat(6), "th6-lat")
	}
}

// BenchmarkFig10b_ThresholdADV: a too-high threshold penalizes
// adversarial traffic (late misrouting).
func BenchmarkFig10b_ThresholdADV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		acc := func(th int) float64 {
			cfg := NewConfig(Tiny, Base)
			cfg.BaseTh = th
			r, err := RunSteady(cfg, Adversarial(1), 0.2, benchSteadyOpts)
			if err != nil {
				b.Fatal(err)
			}
			return r.Accepted
		}
		b.ReportMetric(acc(3), "th3-acc")
		b.ReportMetric(acc(12), "th12-acc")
	}
}

// BenchmarkVIA_CounterSaturation: §VI-A — the mean saturated contention
// counter approaches the mean VC count per port.
func BenchmarkVIA_CounterSaturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := RunExperiment("via", Tiny, 1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ECtNPeriod: design-choice ablation — a longer
// exchange period delays group-wide adaptation (DESIGN.md).
func BenchmarkAblation_ECtNPeriod(b *testing.B) {
	early := func(period int64) float64 {
		cfg := NewConfig(Tiny, ECtN)
		cfg.ECtNPeriod = period
		r, err := RunTransient(cfg, Uniform(), Adversarial(1), 0.35,
			TransientOptions{Warmup: 1200, Pre: 0, Post: 400, Bucket: 25, Seeds: 1})
		if err != nil {
			b.Fatal(err)
		}
		return misWindow(r, 150, 350)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(early(25), "p25-early-mis-pct")
		b.ReportMetric(early(400), "p400-early-mis-pct")
	}
}

// BenchmarkAblation_Speedup: the Table I 2x allocator speedup versus a
// plain separable allocator, at high uniform load.
func BenchmarkAblation_Speedup(b *testing.B) {
	acc := func(speedup int) float64 {
		cfg := NewConfig(Tiny, Base)
		cfg.Speedup = speedup
		r, err := RunSteady(cfg, Uniform(), 0.8, benchSteadyOpts)
		if err != nil {
			b.Fatal(err)
		}
		return r.Accepted
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(acc(1), "sp1-acc")
		b.ReportMetric(acc(2), "sp2-acc")
	}
}
