package cbar

import (
	"fmt"
	"strconv"
	"strings"

	"cbar/internal/router"
)

// Congestion configures the optional congestion-management layer:
// ECN-style marking at hot output ports, delayed notifications back to
// the traffic source, a per-source AIMD injection throttle and NIC-side
// packet shedding under saturation. The zero value leaves the layer off,
// in which case the simulation is bit-identical to a build without it.
// With Enabled set, zero-valued knobs take their documented defaults.
type Congestion struct {
	// Enabled turns the layer on.
	Enabled bool
	// MarkPct is the output-port occupancy threshold, in percent of the
	// port's credit capacity, above which traversing packets are marked
	// (default 70).
	MarkPct int
	// NotifyLatency is the delay in cycles between a marked packet's
	// delivery and the congestion notification reaching its source's
	// injection throttle (default LatencyLocal+LatencyGlobal).
	NotifyLatency int
	// ShedCap is the NIC backlog, in packets, at which new injections
	// are shed instead of queued (default NICQueuePackets/4).
	ShedCap int
	// DecreasePct is the AIMD multiplicative-decrease factor in percent:
	// a notification cuts the source's injection rate to this fraction
	// of its current value (default 50).
	DecreasePct int
	// RecoverPct is the additive-increase step in percentage points of
	// line rate (default 5).
	RecoverPct int
	// RecoverEvery is the additive-increase period in cycles
	// (default 2x NotifyLatency).
	RecoverEvery int64
	// HoldCycles is the post-decrease hold-off during which further
	// notifications are ignored, absorbing the in-flight notification
	// wave from a single congestion event (default NotifyLatency).
	HoldCycles int64
	// MinRatePct floors the throttled injection rate in percent of line
	// rate (default 10).
	MinRatePct int
}

func (g Congestion) internal() router.CongestionConfig {
	return router.CongestionConfig{
		Enabled:       g.Enabled,
		MarkPct:       g.MarkPct,
		NotifyLatency: g.NotifyLatency,
		ShedCap:       g.ShedCap,
		DecreasePct:   g.DecreasePct,
		RecoverPct:    g.RecoverPct,
		RecoverEvery:  g.RecoverEvery,
		HoldCycles:    g.HoldCycles,
		MinRatePct:    g.MinRatePct,
	}
}

// ParseCongestion resolves a congestion-management specification string:
//
//	"off"                        layer disabled (the default)
//	"on"                         enabled with all defaults
//	"on:mark=80,shed=8"          enabled with overrides
//
// Recognised keys: mark (MarkPct), notify (NotifyLatency), shed
// (ShedCap), dec (DecreasePct), rec (RecoverPct), every (RecoverEvery),
// hold (HoldCycles), min (MinRatePct). Values are validated against the
// simulated configuration when the network is built.
func ParseCongestion(s string) (Congestion, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	switch ls {
	case "", "off":
		return Congestion{}, nil
	case "on":
		return Congestion{Enabled: true}, nil
	}
	rest, ok := strings.CutPrefix(ls, "on:")
	if !ok {
		return Congestion{}, fmt.Errorf("cbar: congestion spec %q must be off | on | on:key=val,... (keys: mark notify shed dec rec every hold min)", s)
	}
	g := Congestion{Enabled: true}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Congestion{}, fmt.Errorf("cbar: congestion option %q in %q is not key=val", kv, s)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return Congestion{}, fmt.Errorf("cbar: bad congestion value in %q: %v", kv, err)
		}
		switch strings.TrimSpace(key) {
		case "mark":
			g.MarkPct = n
		case "notify":
			g.NotifyLatency = n
		case "shed":
			g.ShedCap = n
		case "dec":
			g.DecreasePct = n
		case "rec":
			g.RecoverPct = n
		case "every":
			g.RecoverEvery = int64(n)
		case "hold":
			g.HoldCycles = int64(n)
		case "min":
			g.MinRatePct = n
		default:
			return Congestion{}, fmt.Errorf("cbar: unknown congestion option %q in %q (mark notify shed dec rec every hold min)", key, s)
		}
	}
	return g, nil
}
