// Command bench runs the simulator's step-benchmark suite plus a
// fixed-cycle end-to-end run and writes the results as JSON, so the perf
// trajectory of the Step hot path is tracked release over release:
//
//	go run ./cmd/bench -o BENCH_step.json
//
// The step benchmarks measure one whole-network cycle (injection included)
// at several scales and loads; cycles/sec is the headline simulator speed
// at that operating point. The burst benchmark measures a full
// burst-then-drain episode rather than a single cycle.
//
// -compare turns the binary into a CI regression gate: it reruns the
// step suite and diffs it against a committed baseline report,
//
//	go run ./cmd/bench -compare BENCH_step.json -ns-warn-only
//
// failing on allocs/op growth (hardware-independent, so always a hard
// failure) and on >2.5x ns/op regressions (downgradable to GitHub
// warning annotations with -ns-warn-only for noisy shared runners).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"cbar/internal/rng"
	"cbar/internal/routing"
	"cbar/internal/sim"
)

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// CyclesPerSec is reported for benchmarks whose op is one simulated
	// cycle (zero for composite ops like burst-drain).
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// CyclesPerOp is the number of simulated cycles one op covers (1 for
	// step benchmarks; measured for burst-drain).
	CyclesPerOp float64 `json:"cycles_per_op,omitempty"`
	// Workers is the shard worker count the network was stepped with
	// (the workers dimension of the record; 1 = sequential stepping).
	Workers int `json:"workers"`
}

// EndToEnd is a fixed-cycle whole-simulation measurement.
type EndToEnd struct {
	Scale        string  `json:"scale"`
	Algo         string  `json:"algo"`
	Load         float64 `json:"load"`
	Cycles       int64   `json:"cycles"`
	WallMs       float64 `json:"wall_ms"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Delivered    uint64  `json:"delivered"`
	AvgPhitsLoad float64 `json:"accepted_phits_per_node_cycle"`
}

// Report is the file schema of BENCH_step.json.
type Report struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Benchtime is the effective per-benchmark measurement time the
	// suite ran under ("1s" unless -benchtime overrode it). Compare runs
	// hard-fail on a benchtime mismatch: a shorter window inflates
	// allocs/op (one-off amortized allocations stop averaging out), so a
	// baseline and a gate run at different benchtimes are not comparable.
	Benchtime  string        `json:"benchtime,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
	EndToEnd   EndToEnd      `json:"end_to_end"`
}

// effectiveBenchtime normalizes a -benchtime flag value to the recorded
// form: the testing package's default 1s when unset.
func effectiveBenchtime(flagValue string) string {
	if flagValue == "" {
		return "1s"
	}
	return flagValue
}

// stepBench returns a benchmark function measuring one injected cycle,
// using the same shared harness as the in-tree BenchmarkStep* suite.
// fullScan selects the every-component fabric loop; refScan the
// full-recompute reference algorithm state (polled PB saturation flags,
// combine-every-group ECtN).
func stepBench(s sim.Scale, algo routing.Algo, load float64, fullScan, refScan bool) func(b *testing.B) {
	return stepBenchWorkload(s, algo, sim.UN(), load, fullScan, refScan)
}

// stepBenchWorkload is stepBench for an arbitrary workload — the bursty
// and hotspot entries pin the stateful calendar injector's cycle cost
// beside the Bernoulli fast path.
func stepBenchWorkload(s sim.Scale, algo routing.Algo, w sim.Workload, load float64, fullScan, refScan bool) func(b *testing.B) {
	return func(b *testing.B) {
		net, inj, err := sim.NewStepBenchWorkload(s, algo, w, load, fullScan, refScan)
		if err != nil {
			b.Fatal(err)
		}
		gen0 := net.NumGenerated
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inj.Cycle()
			net.Step()
		}
		// A long measured run generating nothing means the injector is
		// broken and the numbers would record an empty network.
		if b.N > 1000 && net.NumGenerated == gen0 {
			b.Fatal("no traffic generated during measurement")
		}
	}
}

// stepBenchElideIdle measures the quiet-cycle elision path: one op
// advances sim.ElideIdleSpan cycles of a deep-idle network through
// sim.Advance, which jumps the clock between events instead of
// stepping every cycle. The entry's cycles/sec is span-normalized, so
// it compares directly against the per-cycle Idle entries — the
// acceptance bar of the elision change is >= 10x their cycles/sec.
func stepBenchElideIdle(s sim.Scale) func(b *testing.B) {
	return func(b *testing.B) {
		net, inj, err := sim.NewStepBench(s, routing.Base, sim.ElideIdleLoad, false, false)
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.ElideIdleWarm(net, inj); err != nil {
			b.Fatal(err)
		}
		gen0 := net.NumGenerated
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Advance(net, inj, sim.ElideIdleSpan)
		}
		if b.N > 100 && net.NumGenerated == gen0 {
			b.Fatal("no traffic generated during measurement")
		}
	}
}

// stepBenchFaults measures the injected cycle under a quiescent fault
// plan (see sim.NewStepBenchFaults): the fault engine is live but never
// fires, so the entry pins its hot-path overhead against StepSmallIdle.
func stepBenchFaults(s sim.Scale, algo routing.Algo, load float64) func(b *testing.B) {
	return func(b *testing.B) {
		net, inj, err := sim.NewStepBenchFaults(s, algo, load)
		if err != nil {
			b.Fatal(err)
		}
		gen0 := net.NumGenerated
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inj.Cycle()
			net.Step()
		}
		if b.N > 1000 && net.NumGenerated == gen0 {
			b.Fatal("no traffic generated during measurement")
		}
	}
}

// stepBenchWorkers measures the same injected cycle with the network
// stepped by `workers` shard workers — the cycles are bit-identical to
// the sequential stepper's, so the delta against a Workers1 entry is
// pure parallel speedup minus barrier cost.
func stepBenchWorkers(s sim.Scale, load float64, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		net, inj, err := sim.NewStepBenchWorkers(s, routing.Base, sim.UN(), load, false, false, workers)
		if err != nil {
			b.Fatal(err)
		}
		gen0 := net.NumGenerated
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inj.Cycle()
			net.Step()
		}
		if b.N > 1000 && net.NumGenerated == gen0 {
			b.Fatal("no traffic generated during measurement")
		}
	}
}

// burstDrainBench measures a burst followed by a full drain, reporting
// the drained cycles per op via the returned counter.
func burstDrainBench(cycles *float64) func(b *testing.B) {
	return func(b *testing.B) {
		c := sim.NewConfig(sim.Small.Params(), routing.Base)
		net, err := sim.BuildNetwork(c, 1)
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(3, 9)
		start := net.Now()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sim.BurstDrainStep(net, r); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		*cycles = float64(net.Now()-start) / float64(b.N)
	}
}

// nsRegressionFactor is the ns/op ratio over baseline past which a step
// benchmark counts as a perf regression. It is deliberately loose (the
// baseline may come from different hardware than the gate run); the
// allocs/op comparison is the tight one, since allocation counts are
// hardware-independent.
const nsRegressionFactor = 2.5

// allocAllowance returns the allocs/op ceiling tolerated over a
// baseline: exact-plus-one for the (deterministic) sequential
// benchmarks' small counts, plus 10% headroom for the larger
// scheduling-dependent counts of the shard-parallel benchmarks.
func allocAllowance(base int64) int64 {
	slack := base / 10
	if slack < 1 {
		slack = 1
	}
	return base + slack
}

// compareBaseline diffs the fresh measurements against a committed
// baseline report and returns the process exit code. Allocs/op growth
// fails (except on the amortized ElideIdle span benchmarks, where it
// only annotates — see the inline comment); ns/op regressions fail
// unless nsWarnOnly, which turns them into GitHub warning annotations
// (shared CI runners make wall time noisy, while allocation counts stay
// deterministic). Benchmarks present on only one side are reported and
// skipped.
func compareBaseline(path string, fresh Report, nsWarnOnly bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench: parsing baseline %s: %v\n", path, err)
		return 2
	}
	// Baselines written before the field was recorded ran at the default.
	if effectiveBenchtime(base.Benchtime) != fresh.Benchtime {
		fmt.Fprintf(os.Stderr,
			"bench: benchtime mismatch: gate run measured at %s but baseline %s was recorded at %s; rerun with -benchtime %s (or refresh the baseline)\n",
			fresh.Benchtime, path, effectiveBenchtime(base.Benchtime), effectiveBenchtime(base.Benchtime))
		return 2
	}
	baseline := make(map[string]BenchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	fail := false
	for _, cur := range fresh.Benchmarks {
		b, ok := baseline[cur.Name]
		if !ok {
			fmt.Printf("%-26s new benchmark, no baseline — skipped\n", cur.Name)
			continue
		}
		delete(baseline, cur.Name)
		status := "ok"
		if allowed := allocAllowance(b.AllocsPerOp); cur.AllocsPerOp > allowed {
			// The ElideIdle spans inject Poisson-random arrivals whose
			// delivery paths lazily first-touch output-port FIFOs, so
			// their amortized allocs/op depends on b.N and the draw —
			// not a deterministic count like the fixed per-cycle
			// benchmarks. Annotate instead of failing.
			if strings.HasSuffix(cur.Name, "ElideIdle") {
				fmt.Printf("::warning title=allocs/op above baseline (amortized span benchmark)::%s allocs/op %d > baseline %d (allowed %d)\n",
					cur.Name, cur.AllocsPerOp, b.AllocsPerOp, allowed)
				status = "warn"
			} else {
				status = "FAIL"
				fail = true
				fmt.Printf("::error title=allocs/op regression::%s allocs/op %d > baseline %d (allowed %d)\n",
					cur.Name, cur.AllocsPerOp, b.AllocsPerOp, allowed)
			}
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = cur.NsPerOp / b.NsPerOp
		}
		if ratio > nsRegressionFactor {
			if nsWarnOnly {
				if status == "ok" {
					status = "warn"
				}
				fmt.Printf("::warning title=ns/op regression::%s ns/op %.0f is %.2fx baseline %.0f (> %.1fx)\n",
					cur.Name, cur.NsPerOp, ratio, b.NsPerOp, nsRegressionFactor)
			} else {
				status = "FAIL"
				fail = true
				fmt.Printf("::error title=ns/op regression::%s ns/op %.0f is %.2fx baseline %.0f (> %.1fx)\n",
					cur.Name, cur.NsPerOp, ratio, b.NsPerOp, nsRegressionFactor)
			}
		}
		fmt.Printf("%-26s ns/op %9.0f vs %9.0f (%.2fx)  allocs/op %3d vs %3d  %s\n",
			cur.Name, cur.NsPerOp, b.NsPerOp, ratio, cur.AllocsPerOp, b.AllocsPerOp, status)
	}
	for name := range baseline {
		if name == "StepSmallBurstDrain" {
			continue // excluded from compare runs by design
		}
		fmt.Printf("%-26s in baseline but not measured — skipped\n", name)
	}
	if fail {
		fmt.Println("bench: regression gate FAILED")
		return 1
	}
	fmt.Println("bench: regression gate passed")
	return 0
}

func endToEnd(cycles int64) (EndToEnd, error) {
	const load = 0.3
	net, inj, err := sim.NewStepBench(sim.Small, routing.Base, load, false, false)
	if err != nil {
		return EndToEnd{}, err
	}
	delivered0 := net.NumDelivered
	phits0 := net.DeliveredPhits
	start := time.Now()
	for i := int64(0); i < cycles; i++ {
		inj.Cycle()
		net.Step()
	}
	wall := time.Since(start)
	return EndToEnd{
		Scale:        "small",
		Algo:         "base",
		Load:         load,
		Cycles:       cycles,
		WallMs:       float64(wall.Microseconds()) / 1000,
		CyclesPerSec: float64(cycles) / wall.Seconds(),
		Delivered:    net.NumDelivered - delivered0,
		AvgPhitsLoad: float64(net.DeliveredPhits-phits0) /
			(float64(cycles) * float64(net.Topo.Nodes)),
	}, nil
}

func main() {
	out := flag.String("o", "BENCH_step.json", "output file (- for stdout)")
	e2eCycles := flag.Int64("cycles", 20000, "end-to-end run length in cycles")
	compare := flag.String("compare", "", "baseline BENCH_step.json to gate against: rerun the step suite and exit nonzero on allocs/op growth or a >2.5x ns/op regression instead of writing a report")
	benchtime := flag.String("benchtime", "", "per-benchmark measurement time (default 1s). For -compare, keep it at the baseline's own benchtime: a much shorter window inflates allocs/op, since one-off amortized allocations (ring/active-set growth) stop averaging out over few iterations")
	nsWarnOnly := flag.Bool("ns-warn-only", false, "with -compare: report ns/op regressions as GitHub warning annotations without failing (for noisy shared runners); allocs/op growth still fails")
	testing.Init()
	flag.Parse()
	if *e2eCycles < 1 {
		fmt.Fprintf(os.Stderr, "bench: -cycles %d must be >= 1\n", *e2eCycles)
		os.Exit(2)
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(2)
		}
	}

	var burstCycles float64
	suite := []struct {
		name    string
		workers int // 0 in the table means sequential (recorded as 1)
		fn      func(b *testing.B)
	}{
		{"StepTinyBase", 0, stepBench(sim.Tiny, routing.Base, 0.3, false, false)},
		{"StepSmallBase", 0, stepBench(sim.Small, routing.Base, 0.3, false, false)},
		{"StepSmallMin", 0, stepBench(sim.Small, routing.Min, 0.3, false, false)},
		{"StepSmallECtN", 0, stepBench(sim.Small, routing.ECtN, 0.3, false, false)},
		{"StepSmallPB", 0, stepBench(sim.Small, routing.PB, 0.3, false, false)},
		{"StepSmallIdle", 0, stepBench(sim.Small, routing.Base, 0.01, false, false)},
		{"StepSmallFullScanIdle", 0, stepBench(sim.Small, routing.Base, 0.01, true, false)},
		// The faults-idle entry carries a quiescent fault plan (one event
		// scheduled far past the horizon): pinned beside StepSmallIdle,
		// the delta is the fault engine's hot-path cost, which must stay
		// ~zero — the engine only spends cycles when events fire.
		{"StepSmallFaultsIdle", 0, stepBenchFaults(sim.Small, routing.Base, 0.01)},
		// The PB/ECtN idle benchmarks track the event-driven algorithm
		// layer; the RefScan variants pin the retained full-recompute
		// reference (the original polled implementation) beside them.
		// The ElideIdle entries measure the quiet-cycle elision path: one
		// op is a whole ElideIdleSpan-cycle span at deep-idle load, with
		// the clock jumping between events. Their span-normalized
		// cycles/sec sits beside the per-cycle Idle entries above.
		{"StepSmallElideIdle", 0, stepBenchElideIdle(sim.Small)},
		{"StepPaperElideIdle", 0, stepBenchElideIdle(sim.Paper)},
		{"StepSmallPBIdle", 0, stepBench(sim.Small, routing.PB, 0.01, false, false)},
		{"StepSmallPBRefScanIdle", 0, stepBench(sim.Small, routing.PB, 0.01, false, true)},
		{"StepSmallECtNIdle", 0, stepBench(sim.Small, routing.ECtN, 0.01, false, false)},
		{"StepSmallECtNRefScanIdle", 0, stepBench(sim.Small, routing.ECtN, 0.01, false, true)},
		// The bursty/hotspot idle entries track the stateful calendar
		// injector beside the Bernoulli skip-sampler: same scale, same
		// load, different arrival process — the delta is the cost of
		// per-node source state.
		{"StepSmallBurstyIdle", 0, stepBenchWorkload(sim.Small, routing.Base, sim.UN().WithBurst(50, 150, 0), 0.01, false, false)},
		{"StepSmallHotspotIdle", 0, stepBenchWorkload(sim.Small, routing.Base, sim.HotspotUN(0.2, 8), 0.01, false, false)},
		{"StepPaperIdle", 0, stepBench(sim.Paper, routing.Base, 0.01, false, false)},
		{"StepPaperBurstyIdle", 0, stepBenchWorkload(sim.Paper, routing.Base, sim.UN().WithBurst(50, 150, 0), 0.01, false, false)},
		{"StepPaperPBIdle", 0, stepBench(sim.Paper, routing.PB, 0.01, false, false)},
		{"StepPaperPBRefScanIdle", 0, stepBench(sim.Paper, routing.PB, 0.01, false, true)},
		{"StepPaperECtNIdle", 0, stepBench(sim.Paper, routing.ECtN, 0.01, false, false)},
		// The workers entries track the shard-parallel stepper beside
		// the sequential stepper at a loaded operating point (30% UN,
		// the parallel-stepper acceptance regime); the cycles are
		// bit-identical, so the cycles/sec ratio is pure parallel
		// speedup minus barrier cost. Meaningful on a multi-core host.
		{"StepSmallWorkers1", 1, stepBenchWorkers(sim.Small, 0.3, 1)},
		{"StepSmallWorkers4", 4, stepBenchWorkers(sim.Small, 0.3, 4)},
		{"StepPaperWorkers1", 1, stepBenchWorkers(sim.Paper, 0.3, 1)},
		{"StepPaperWorkers4", 4, stepBenchWorkers(sim.Paper, 0.3, 4)},
		{"StepSmallBurstDrain", 0, burstDrainBench(&burstCycles)},
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  effectiveBenchtime(*benchtime),
	}
	for _, s := range suite {
		if *compare != "" && s.name == "StepSmallBurstDrain" {
			continue // composite op; ns/op is dominated by drain length, not Step cost
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", s.name)
		r := testing.Benchmark(s.fn)
		workers := s.workers
		if workers == 0 {
			workers = 1
		}
		res := BenchResult{
			Name:        s.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Workers:     workers,
		}
		switch s.name {
		case "StepSmallBurstDrain":
			res.CyclesPerOp = burstCycles
		case "StepSmallElideIdle", "StepPaperElideIdle":
			res.CyclesPerOp = sim.ElideIdleSpan
			if res.NsPerOp > 0 {
				res.CyclesPerSec = sim.ElideIdleSpan * 1e9 / res.NsPerOp
			}
		default:
			res.CyclesPerOp = 1
			if res.NsPerOp > 0 {
				res.CyclesPerSec = 1e9 / res.NsPerOp
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}

	if *compare != "" {
		os.Exit(compareBaseline(*compare, rep, *nsWarnOnly))
	}

	fmt.Fprintf(os.Stderr, "running end-to-end (%d cycles)...\n", *e2eCycles)
	e2e, err := endToEnd(*e2eCycles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.EndToEnd = e2e

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
