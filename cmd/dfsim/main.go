// dfsim runs a single Dragonfly simulation — one routing mechanism, one
// traffic pattern, one offered load — and prints the steady-state
// metrics, or a transient trace with -transient.
//
// Examples:
//
//	dfsim -routing base -traffic adv+1 -load 0.2
//	dfsim -scale small -routing olm -traffic un -load 0.5 -seeds 5
//	dfsim -routing ectn -transient -traffic un -traffic2 adv+1 -load 0.2
//	dfsim -p 8 -a 16 -h 8 -routing base -traffic un -load 0.3   (paper scale)
package main

import (
	"flag"
	"fmt"
	"os"

	"cbar"
)

func main() {
	var (
		scaleName = flag.String("scale", "tiny", "network scale: tiny|small|paper (overridden by -p/-a/-h)")
		pFlag     = flag.Int("p", 0, "nodes per router (custom topology)")
		aFlag     = flag.Int("a", 0, "routers per group (custom topology)")
		hFlag     = flag.Int("h", 0, "global links per router (custom topology)")
		algoName  = flag.String("routing", "base", "routing mechanism: min|val|pb|olm|base|hybrid|ectn")
		trafName  = flag.String("traffic", "un", "traffic: un | adv+N | mix:F,N (F = uniform fraction)")
		traf2Name = flag.String("traffic2", "adv+1", "post-switch traffic for -transient")
		load      = flag.Float64("load", 0.2, "offered load in phits/(node*cycle)")
		warmup    = flag.Int64("warmup", 0, "warmup cycles (0 = scale default)")
		measure   = flag.Int64("measure", 0, "measurement cycles (0 = scale default)")
		seeds     = flag.Int("seeds", 0, "independent repeats (0 = scale default)")
		transient = flag.Bool("transient", false, "run a traffic-switch trace instead of steady state")
		bucket    = flag.Int64("bucket", 0, "transient trace bucket width in cycles")
		post      = flag.Int64("post", 0, "transient trace length after the switch")
		baseTh    = flag.Int("th", 0, "override the Base/ECtN contention threshold")
		workers   = flag.Int("workers", 0, "shard workers per simulated network (0 = auto, 1 = sequential; results are identical at any count)")
		congSpec  = flag.String("congestion", "off", "congestion management: off | on | on:key=val,... (keys: mark notify shed dec rec every hold min)")
		faultSpec = flag.String("faults", "off", "fault plan: off | linkdown:R,P@C | linkup:R,P@C | routerdown:R@C | routerup:R@C | random:F%@C[,seed] | retry:N[,base]; compose with '+'")
	)
	flag.Parse()

	algo, err := cbar.ParseAlgorithm(*algoName)
	die(err)
	var cfg cbar.Config
	if *pFlag > 0 || *aFlag > 0 || *hFlag > 0 {
		if *pFlag <= 0 || *aFlag <= 0 || *hFlag <= 0 {
			die(fmt.Errorf("custom topology needs all of -p, -a, -h"))
		}
		cfg = cbar.NewConfigFor(*pFlag, *aFlag, *hFlag, algo)
	} else {
		scale, err := cbar.ParseScale(*scaleName)
		die(err)
		cfg = cbar.NewConfig(scale, algo)
	}
	if *baseTh > 0 {
		cfg.BaseTh = *baseTh
	}
	cfg.Workers = *workers

	cong, err := cbar.ParseCongestion(*congSpec)
	die(err)
	cfg.Congestion = cong

	faults, err := cbar.ParseFaults(*faultSpec)
	die(err)
	cfg.Faults = faults

	traf, err := cbar.ParseTraffic(*trafName)
	die(err)

	fmt.Printf("# dragonfly p=%d a=%d h=%d: %d groups, %d routers, %d nodes\n",
		cfg.P, cfg.A, cfg.H, cfg.Groups(), cfg.Routers(), cfg.Nodes())
	fmt.Printf("# routing=%s traffic=%s load=%.3f\n", cfg.Algorithm, traf.Name(), *load)

	if *transient {
		traf2, err := cbar.ParseTraffic(*traf2Name)
		die(err)
		res, err := cbar.RunTransient(cfg, traf, traf2, *load, cbar.TransientOptions{
			Warmup: *warmup, Post: *post, Bucket: *bucket, Seeds: *seeds,
		})
		die(err)
		fmt.Printf("# switch %s -> %s at cycle 0\n", traf.Name(), traf2.Name())
		fmt.Println("cycle,avg_latency_cycles,misrouted_pct")
		for i := range res.Times {
			fmt.Printf("%d,%.2f,%.2f\n", res.Times[i], res.Latency[i], res.MisroutedPct[i])
		}
		return
	}

	res, err := cbar.RunSteady(cfg, traf, *load, cbar.SteadyOptions{
		Warmup: *warmup, Measure: *measure, Seeds: *seeds,
	})
	die(err)
	fmt.Printf("avg_latency_cycles:   %.2f\n", res.AvgLatency)
	fmt.Printf("p50_latency_cycles:   %d\n", res.P50)
	fmt.Printf("p99_latency_cycles:   %d\n", res.P99)
	fmt.Printf("accepted_load:        %.4f phits/(node*cycle)\n", res.Accepted)
	fmt.Printf("misrouted_global:     %.2f%%\n", 100*res.MisroutedGlobal)
	fmt.Printf("misrouted_local:      %.2f%%\n", 100*res.MisroutedLocal)
	fmt.Printf("avg_hops:             %.2f\n", res.AvgHops)
	fmt.Printf("util_local_links:     %.1f%%\n", 100*res.UtilLocal)
	fmt.Printf("util_global_links:    %.1f%%\n", 100*res.UtilGlobal)
	fmt.Printf("packets_measured:     %d (over %d seeds)\n", res.Delivered, res.Seeds)
	if cong.Enabled {
		fmt.Printf("congestion_marked:    %d packets\n", res.Marked)
		fmt.Printf("congestion_notified:  %d notifications\n", res.Notified)
		fmt.Printf("congestion_throttled: %d injection attempts\n", res.Throttled)
		fmt.Printf("congestion_shed:      %d packets\n", res.Shed)
	}
	if faults.Enabled() {
		fmt.Printf("fault_dropped:        %d packets\n", res.Dropped)
		fmt.Printf("fault_retried:        %d packets\n", res.Retried)
		fmt.Printf("fault_unroutable:     %d packets\n", res.Unroutable)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfsim:", err)
		os.Exit(1)
	}
}
