// figures regenerates the data behind every table and figure of the
// paper's evaluation (Figures 5-10 and the §VI-A analysis), writing one
// CSV per experiment.
//
// Examples:
//
//	figures -fig all -scale tiny            # quick qualitative pass
//	figures -fig fig5b -scale small         # one figure, laptop scale
//	figures -fig all -scale paper -out data # the full Table I system
//
// Absolute numbers depend on scale; the shape of each figure (who wins,
// by how much, where crossovers sit) is the reproduction target — see
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cbar"
)

func main() {
	var (
		figFlag   = flag.String("fig", "all", "experiment ids ("+strings.Join(cbar.ExperimentIDs(), "|")+"), or 'all' (figures), 'ablations', 'everything'")
		scaleName = flag.String("scale", "small", "network scale: tiny|small|paper")
		seeds     = flag.Int("seeds", 0, "repeats per point (0 = scale default)")
		outDir    = flag.String("out", "", "directory for CSV files (default: stdout)")
	)
	flag.Parse()

	scale, err := cbar.ParseScale(*scaleName)
	die(err)

	var ids []string
	switch *figFlag {
	case "all":
		ids = cbar.FigureIDs()
	case "everything":
		ids = cbar.ExperimentIDs()
	case "ablations":
		for _, id := range cbar.ExperimentIDs() {
			if strings.HasPrefix(id, "abl-") {
				ids = append(ids, id)
			}
		}
	default:
		for _, id := range strings.Split(*figFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	for _, id := range ids {
		title, err := cbar.ExperimentTitle(id)
		die(err)
		fmt.Fprintf(os.Stderr, "== %s: %s (scale %s)\n", id, title, scale)
		start := time.Now()
		if *outDir == "" {
			die(cbar.RunExperiment(id, scale, *seeds, os.Stdout))
		} else {
			die(os.MkdirAll(*outDir, 0o755))
			path := filepath.Join(*outDir, fmt.Sprintf("%s_%s.csv", id, scale))
			f, err := os.Create(path)
			die(err)
			err = cbar.RunExperiment(id, scale, *seeds, f)
			cerr := f.Close()
			die(err)
			die(cerr)
			fmt.Fprintf(os.Stderr, "   wrote %s\n", path)
		}
		fmt.Fprintf(os.Stderr, "   done in %s\n", time.Since(start).Round(time.Millisecond))
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
