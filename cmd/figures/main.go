// figures regenerates the data behind every table and figure of the
// paper's evaluation (Figures 5-10 and the §VI-A analysis), writing one
// CSV per experiment.
//
// Examples:
//
//	figures -fig all -scale tiny            # quick qualitative pass
//	figures -fig fig5b -scale small         # one figure, laptop scale
//	figures -fig all -scale paper -out data # the full Table I system
//
// Absolute numbers depend on scale; the shape of each figure (who wins,
// by how much, where crossovers sit) is the reproduction target —
// ExperimentTitle describes each id, and README.md walks the set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cbar"
)

func main() {
	var (
		figFlag   = flag.String("fig", "all", "experiment ids ("+strings.Join(cbar.ExperimentIDs(), "|")+"), or 'all' (figures), 'ablations', 'everything'")
		scaleName = flag.String("scale", "small", "network scale: tiny|small|paper")
		seeds     = flag.Int("seeds", 0, "repeats per point (0 = scale default)")
		workers   = flag.Int("workers", 0, "shard workers per simulated network (0 = auto: shard runs across idle cores when the experiment grid is narrower than GOMAXPROCS, 1 = sequential stepping; results are identical at any count)")
		adaptive  = flag.Bool("adaptive", false, "adaptive measurement for steady-state points: MSER warmup truncation + batch-means CI stopping + saturation short-circuit (statistically equivalent, much cheaper on converged points; transient traces keep fixed windows)")
		ciRel     = flag.Float64("ci", 0, "adaptive: target relative 95% CI half-width (0 = 0.05)")
		maxMeas   = flag.Int64("maxmeasure", 0, "adaptive: hard cap on measured cycles per seed (0 = 4x the scale's fixed window)")
		congSpec  = flag.String("congestion", "off", "congestion management for every simulation of the experiment: off | on | on:key=val,... (keys: mark notify shed dec rec every hold min)")
		faultSpec = flag.String("faults", "off", "fault plan for every simulation of the experiment: off | linkdown:R,P@C | linkup:R,P@C | routerdown:R@C | routerup:R@C | random:F%@C[,seed] | retry:N[,base]; compose with '+'")
		outDir    = flag.String("out", "", "directory for CSV files (default: stdout)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel cooperatively: completed experiments' CSV
	// files stay on disk and the process exits with status 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale, err := cbar.ParseScale(*scaleName)
	die(err)

	cong, err := cbar.ParseCongestion(*congSpec)
	die(err)

	faults, err := cbar.ParseFaults(*faultSpec)
	die(err)

	var ids []string
	switch *figFlag {
	case "all":
		ids = cbar.FigureIDs()
	case "everything":
		ids = cbar.ExperimentIDs()
	case "ablations":
		for _, id := range cbar.ExperimentIDs() {
			if strings.HasPrefix(id, "abl-") {
				ids = append(ids, id)
			}
		}
	default:
		for _, id := range strings.Split(*figFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	for _, id := range ids {
		title, err := cbar.ExperimentTitle(id)
		die(err)
		fmt.Fprintf(os.Stderr, "== %s: %s (scale %s)\n", id, title, scale)
		start := time.Now()
		opt := cbar.ExperimentOptions{
			Seeds: *seeds, Workers: *workers,
			Adaptive: *adaptive, CIRelWidth: *ciRel, MaxMeasure: *maxMeas,
			Congestion: cong, Faults: faults, Ctx: ctx,
		}
		if *outDir == "" {
			dieOrInterrupt(cbar.RunExperimentOpts(id, scale, opt, os.Stdout))
		} else {
			die(os.MkdirAll(*outDir, 0o755))
			path := filepath.Join(*outDir, fmt.Sprintf("%s_%s.csv", id, scale))
			f, err := os.Create(path)
			die(err)
			err = cbar.RunExperimentOpts(id, scale, opt, f)
			cerr := f.Close()
			dieOrInterrupt(err)
			die(cerr)
			fmt.Fprintf(os.Stderr, "   wrote %s\n", path)
		}
		fmt.Fprintf(os.Stderr, "   done in %s\n", time.Since(start).Round(time.Millisecond))
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// dieOrInterrupt is die with the conventional 130 exit for a run cut
// short by SIGINT/SIGTERM; everything written so far stays flushed.
func dieOrInterrupt(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "figures: interrupted, completed output flushed")
		os.Exit(130)
	}
	die(err)
}
