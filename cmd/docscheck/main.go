// docscheck gates the documentation surface. It fails (exit 1) when
//
//   - an exported identifier of the public cbar package — top-level
//     type, function, method, const, var, exported struct field or
//     interface method — has no doc comment, or
//   - a CLI flag registered in any cmd/*/main.go does not appear
//     (backtick-quoted, as `-name`) in README.md.
//
// Run from the repository root as `go run ./cmd/docscheck`; -root
// points it elsewhere. It is a hard CI gate: documentation drift is a
// build break, like a detlint finding.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root (the public package's directory)")
	flag.Parse()

	var findings []string
	findings = append(findings, checkPackageDocs(*root)...)
	findings = append(findings, checkREADMEFlags(*root)...)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// checkPackageDocs parses the public package in root (non-test files
// only) and reports every exported identifier without a doc comment. A
// grouped const/var spec is covered by its block comment; a struct
// field or interface method accepts a trailing line comment.
func checkPackageDocs(root string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, root, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("docscheck: parsing %s: %v", root, err)}
	}

	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
						report(d.Pos(), funcKind(d), funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// exportedRecv reports whether a function is free-standing or a method
// on an exported receiver type; methods on unexported types are not
// part of the documented surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(recvTypeName(d.Recv.List[0].Type))
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		return recvTypeName(d.Recv.List[0].Type) + "." + d.Name.Name
	}
	return d.Name.Name
}

func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			switch t := s.Type.(type) {
			case *ast.StructType:
				checkFieldList(s.Name.Name, "field", t.Fields, report)
			case *ast.InterfaceType:
				checkFieldList(s.Name.Name, "interface method", t.Methods, report)
			}
		case *ast.ValueSpec:
			// A doc comment on the const/var block covers the whole
			// group (the idiomatic enum shape); otherwise each exported
			// name needs its own.
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

func checkFieldList(owner, kind string, fields *ast.FieldList, report func(token.Pos, string, string)) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(name.Pos(), kind, owner+"."+name.Name)
			}
		}
	}
}

// checkREADMEFlags collects every flag name registered in cmd/*/main.go
// and reports the ones README.md does not mention as `-name`.
func checkREADMEFlags(root string) []string {
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		return []string{fmt.Sprintf("docscheck: %v", err)}
	}
	mains, err := filepath.Glob(filepath.Join(root, "cmd", "*", "main.go"))
	if err != nil || len(mains) == 0 {
		return []string{fmt.Sprintf("docscheck: no cmd/*/main.go found under %s", root)}
	}
	sort.Strings(mains)

	var out []string
	for _, path := range mains {
		if filepath.Base(filepath.Dir(path)) == "docscheck" {
			continue // checks itself otherwise; its flags are not user surface
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			out = append(out, fmt.Sprintf("docscheck: parsing %s: %v", path, err))
			continue
		}
		for _, name := range flagNames(file) {
			if !strings.Contains(string(readme), "`-"+name+"`") {
				out = append(out, fmt.Sprintf("%s: flag -%s is not documented in README.md (expected `-%s`)", path, name, name))
			}
		}
	}
	return out
}

// flagNames returns the names registered through the flag package in
// one file: the first string argument of flag.Bool/Int/String/... and
// the second of the *Var forms.
func flagNames(file *ast.File) []string {
	var names []string
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok || recv.Name != "flag" {
			return true
		}
		arg := -1
		switch sel.Sel.Name {
		case "Bool", "Int", "Int64", "Uint", "Uint64", "String", "Float64", "Duration", "Func", "TextVar":
			arg = 0
		case "BoolVar", "IntVar", "Int64Var", "UintVar", "Uint64Var", "StringVar", "Float64Var", "DurationVar", "Var":
			arg = 1
		}
		if arg < 0 || len(call.Args) <= arg {
			return true
		}
		if lit, ok := call.Args[arg].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if name, err := strconv.Unquote(lit.Value); err == nil {
				names = append(names, name)
			}
		}
		return true
	})
	sort.Strings(names)
	return names
}
