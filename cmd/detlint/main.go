// Command detlint runs the determinism-contract static-analysis suite
// (internal/lint) over the repository. It is a hard CI gate: any finding
// is a build break.
//
// Usage:
//
//	detlint [-json] [packages]
//
// With no arguments it analyzes ./... relative to the current directory.
// Only the packages registered as deterministic in the contract registry
// (lint.DefaultConfig) produce findings; patterns merely bound the load.
//
// -json emits one JSON object per finding (file, line, col, analyzer,
// message) instead of the "path:line:col: message [analyzer]" text form
// the CI problem matcher consumes.
//
// Exit status: 0 with no findings, 1 with findings, 2 on load or
// type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cbar/internal/lint"
)

// finding is the -json wire form of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(dir, lint.DefaultConfig(), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			if err := enc.Encode(finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "detlint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
