// Command detlint runs the determinism-contract static-analysis suite
// (internal/lint) over the repository. It is a hard CI gate: any finding
// is a build break.
//
// Usage:
//
//	detlint [packages]
//
// With no arguments it analyzes ./... relative to the current directory.
// Only the packages registered as deterministic in the contract registry
// (lint.DefaultConfig) produce findings; patterns merely bound the load.
//
// Exit status: 0 with no findings, 1 with findings, 2 on load or
// type-check failure.
package main

import (
	"fmt"
	"os"

	"cbar/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(dir, lint.DefaultConfig(), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
