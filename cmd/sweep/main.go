// sweep runs an offered-load sweep for one or more routing mechanisms
// under one traffic pattern and prints a CSV, the building block of the
// paper's Figure 5 plots.
//
// Examples:
//
//	sweep -routing min,base,olm -traffic adv+1
//	sweep -scale small -routing all -traffic un -loads 0.1,0.3,0.5,0.7,0.9
//	sweep -traffic hotspot:0.2,8
//	sweep -traffic tornado -routing base,olm
//	sweep -traffic perm:shift+16
//	sweep -traffic burst:50,200          (uniform destinations, bursty arrivals)
//	sweep -traffic adv+1+burst:50,200,0.8+skew:0.1,0.5
//
// The whole load×seed grid runs through one bounded worker pool; every
// row reports the cross-seed merged-histogram percentiles plus the
// fraction of latencies beyond the histogram cap (overflow_frac > 0
// means the reported percentiles are saturated).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cbar"
)

func main() {
	var (
		scaleName = flag.String("scale", "tiny", "network scale: tiny|small|paper")
		algoList  = flag.String("routing", "all", "comma-separated mechanisms, or 'all'")
		trafName  = flag.String("traffic", "un", "traffic: un | adv+N | mix:F,N | hotspot:F,H | perm:shift+K | perm:complement | tornado | burst:ON,OFF[,PEAK]; +burst:/+skew: suffixes compose")
		loadsCSV  = flag.String("loads", "0.05,0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0", "offered loads")
		warmup    = flag.Int64("warmup", 0, "warmup cycles (0 = scale default)")
		measure   = flag.Int64("measure", 0, "measurement cycles (0 = scale default)")
		seeds     = flag.Int("seeds", 0, "repeats per point (0 = scale default)")
		workers   = flag.Int("workers", 0, "shard workers per simulated network (0 = auto: shard runs across idle cores when the load×seed grid is narrower than GOMAXPROCS, 1 = sequential stepping; results are identical at any count)")
	)
	flag.Parse()

	scale, err := cbar.ParseScale(*scaleName)
	die(err)

	var algos []cbar.Algorithm
	if *algoList == "all" {
		algos = cbar.Algorithms()
	} else {
		for _, name := range strings.Split(*algoList, ",") {
			a, err := cbar.ParseAlgorithm(name)
			die(err)
			algos = append(algos, a)
		}
	}

	traf, err := cbar.ParseTraffic(*trafName)
	die(err)

	var loads []float64
	for _, f := range strings.Split(*loadsCSV, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		die(err)
		loads = append(loads, v)
	}

	fmt.Printf("# %s traffic on %s scale\n", traf.Name(), scale)
	fmt.Println("load,algo,avg_latency_cycles,p99_latency_cycles,accepted_phits_node_cycle,misrouted_global_frac,overflow_frac")
	opt := cbar.SteadyOptions{Warmup: *warmup, Measure: *measure, Seeds: *seeds}
	for _, a := range algos {
		cfg := cbar.NewConfig(scale, a)
		cfg.Workers = *workers
		rs, err := cbar.Sweep(cfg, traf, loads, opt)
		die(err)
		for _, r := range rs {
			fmt.Printf("%.3f,%s,%.2f,%d,%.4f,%.4f,%.4f\n",
				r.Load, r.Algo, r.AvgLatency, r.P99, r.Accepted, r.MisroutedGlobal, r.OverflowFrac)
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
