// sweep runs an offered-load sweep for one or more routing mechanisms
// under one traffic pattern and prints a CSV, the building block of the
// paper's Figure 5 plots.
//
// Examples:
//
//	sweep -routing min,base,olm -traffic adv+1
//	sweep -scale small -routing all -traffic un -loads 0.1,0.3,0.5,0.7,0.9
//	sweep -traffic hotspot:0.2,8
//	sweep -traffic tornado -routing base,olm
//	sweep -traffic perm:shift+16
//	sweep -traffic burst:50,200          (uniform destinations, bursty arrivals)
//	sweep -traffic adv+1+burst:50,200,0.8+skew:0.1,0.5
//	sweep -scale small -routing base,ectn -traffic un -adaptive
//
// The whole load×seed grid runs through one bounded worker pool; every
// row reports the cross-seed merged-histogram percentiles plus the
// fraction of latencies beyond the histogram cap (overflow_frac > 0
// means the reported percentiles are saturated).
//
// -adaptive replaces the fixed warmup/measure windows with the adaptive
// measurement engine (MSER warmup truncation, batch-means CI stopping,
// saturation short-circuit) and appends ci_half_latency,
// measured_cycles, warmup_cycles, saturated, converged columns; without
// it the output is byte-identical to previous releases (pinned by
// testdata/golden).
//
// -congestion enables the congestion-management layer (ECN-style port
// marking, source notifications, AIMD injection throttling, NIC
// shedding) and appends marked, notified, throttled, shed counter
// columns; "off" (the default) keeps the layer out of the simulation
// and the CSV byte-identical to previous releases:
//
//	sweep -traffic hotspot:0.3,8 -routing base -congestion on
//	sweep -congestion on:mark=80,shed=8,min=20
//
// -faults schedules a deterministic fault plan (link/router failures
// and repairs, random link-failure expansion, optional source
// retransmission) and appends dropped, retried, unroutable counter
// columns; "off" (the default) keeps the engine out of the simulation
// and the CSV byte-identical to previous releases:
//
//	sweep -traffic un -routing base,olm -faults random:5%@1000
//	sweep -faults linkdown:3,7@500+linkup:3,7@2500+retry:3
//
// SIGINT/SIGTERM cancel the sweep cooperatively: completed rows are
// flushed and the process exits with status 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"cbar"
)

func main() {
	var (
		scaleName = flag.String("scale", "tiny", "network scale: tiny|small|paper")
		algoList  = flag.String("routing", "all", "comma-separated mechanisms, or 'all'")
		trafName  = flag.String("traffic", "un", "traffic: un | adv+N | mix:F,N | hotspot:F,H | perm:shift+K | perm:complement | tornado | burst:ON,OFF[,PEAK]; +burst:/+skew: suffixes compose")
		loadsCSV  = flag.String("loads", "0.05,0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0", "offered loads")
		warmup    = flag.Int64("warmup", 0, "warmup cycles (0 = scale default)")
		measure   = flag.Int64("measure", 0, "measurement cycles (0 = scale default)")
		seeds     = flag.Int("seeds", 0, "repeats per point (0 = scale default)")
		workers   = flag.Int("workers", 0, "shard workers per simulated network (0 = auto: shard runs across idle cores when the load×seed grid is narrower than GOMAXPROCS, 1 = sequential stepping; results are identical at any count)")
		adaptive  = flag.Bool("adaptive", false, "adaptive measurement: MSER warmup truncation + batch-means CI stopping + saturation short-circuit instead of fixed windows (-warmup caps the warmup, -measure sizes the default cap); adds CI/cost columns to the CSV")
		ciRel     = flag.Float64("ci", 0, "adaptive: target relative 95% CI half-width on mean latency and throughput (0 = 0.05)")
		maxMeas   = flag.Int64("maxmeasure", 0, "adaptive: hard cap on measured cycles per seed (0 = 4x the measurement window)")
		congSpec  = flag.String("congestion", "off", "congestion management: off | on | on:key=val,... (keys: mark notify shed dec rec every hold min); adds marked,notified,throttled,shed columns when enabled")
		faultSpec = flag.String("faults", "off", "fault plan: off | linkdown:R,P@C | linkup:R,P@C | routerdown:R@C | routerup:R@C | random:F%@C[,seed] | retry:N[,base]; compose with '+'; adds dropped,retried,unroutable columns when enabled")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale, err := cbar.ParseScale(*scaleName)
	die(err)

	var algos []cbar.Algorithm
	if *algoList == "all" {
		algos = cbar.Algorithms()
	} else {
		for _, name := range strings.Split(*algoList, ",") {
			a, err := cbar.ParseAlgorithm(name)
			die(err)
			algos = append(algos, a)
		}
	}

	traf, err := cbar.ParseTraffic(*trafName)
	die(err)

	cong, err := cbar.ParseCongestion(*congSpec)
	die(err)

	faults, err := cbar.ParseFaults(*faultSpec)
	die(err)

	var loads []float64
	for _, f := range strings.Split(*loadsCSV, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		die(err)
		loads = append(loads, v)
	}

	// The fixed-mode header and row format are pinned byte-for-byte by
	// testdata/golden (see golden_test.go and the CI golden gate); the
	// adaptive columns only ever append behind -adaptive.
	fmt.Printf("# %s traffic on %s scale\n", traf.Name(), scale)
	header := "load,algo,avg_latency_cycles,p99_latency_cycles,accepted_phits_node_cycle,misrouted_global_frac,overflow_frac"
	if *adaptive {
		header += ",ci_half_latency,measured_cycles,warmup_cycles,saturated,converged"
	}
	if cong.Enabled {
		header += ",marked,notified,throttled,shed"
	}
	if faults.Enabled() {
		header += ",dropped,retried,unroutable"
	}
	fmt.Println(header)
	opt := cbar.SteadyOptions{
		Warmup: *warmup, Measure: *measure, Seeds: *seeds,
		Adaptive: *adaptive, CIRelWidth: *ciRel, MaxMeasure: *maxMeas,
		Ctx: ctx,
	}
	for _, a := range algos {
		cfg := cbar.NewConfig(scale, a)
		cfg.Workers = *workers
		cfg.Congestion = cong
		cfg.Faults = faults
		rs, err := cbar.Sweep(cfg, traf, loads, opt)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "sweep: interrupted, completed rows flushed")
			os.Exit(130)
		}
		die(err)
		for _, r := range rs {
			row := fmt.Sprintf("%.3f,%s,%.2f,%d,%.4f,%.4f,%.4f",
				r.Load, r.Algo, r.AvgLatency, r.P99, r.Accepted, r.MisroutedGlobal, r.OverflowFrac)
			if *adaptive {
				row += fmt.Sprintf(",%.2f,%d,%d,%t,%t",
					r.CIHalfLatency, r.MeasuredCycles, r.WarmupCycles, r.Saturated, r.Converged)
			}
			if cong.Enabled {
				row += fmt.Sprintf(",%d,%d,%d,%d",
					r.Marked, r.Notified, r.Throttled, r.Shed)
			}
			if faults.Enabled() {
				row += fmt.Sprintf(",%d,%d,%d",
					r.Dropped, r.Retried, r.Unroutable)
			}
			fmt.Println(row)
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
