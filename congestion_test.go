package cbar

import (
	"strings"
	"testing"
)

func TestParseCongestion(t *testing.T) {
	cases := []struct {
		spec string
		want Congestion
	}{
		{"off", Congestion{}},
		{"", Congestion{}},
		{"on", Congestion{Enabled: true}},
		{"ON", Congestion{Enabled: true}},
		{"on:mark=80", Congestion{Enabled: true, MarkPct: 80}},
		{"on:mark=80,shed=8,min=20", Congestion{Enabled: true, MarkPct: 80, ShedCap: 8, MinRatePct: 20}},
		{"on:notify=50,dec=60,rec=10,every=200,hold=100",
			Congestion{Enabled: true, NotifyLatency: 50, DecreasePct: 60, RecoverPct: 10, RecoverEvery: 200, HoldCycles: 100}},
	}
	for _, tc := range cases {
		got, err := ParseCongestion(tc.spec)
		if err != nil {
			t.Errorf("ParseCongestion(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseCongestion(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	for _, bad := range []string{"maybe", "on:mark", "on:mark=x", "on:bogus=1", "off:mark=80"} {
		if _, err := ParseCongestion(bad); err == nil {
			t.Errorf("ParseCongestion(%q) accepted", bad)
		}
	}
}

// TestCongestionConfigValidated pins that bad knob values surface from
// the public entry points instead of silently misconfiguring the layer.
func TestCongestionConfigValidated(t *testing.T) {
	cfg := NewConfig(Tiny, Base)
	cfg.Congestion = Congestion{Enabled: true, MarkPct: 150}
	_, err := RunSteady(cfg, Uniform(), 0.1, SteadyOptions{Warmup: 10, Measure: 10, Seeds: 1})
	if err == nil || !strings.Contains(err.Error(), "mark") {
		t.Fatalf("MarkPct=150 surfaced no mark-threshold error, got %v", err)
	}
}

// TestCongestionSteadyCounters pins the public result plumbing: an
// enabled hotspot run reports nonzero congestion counters, a disabled
// one reports all zeros.
func TestCongestionSteadyCounters(t *testing.T) {
	cfg := NewConfig(Tiny, Base)
	opt := SteadyOptions{Warmup: 400, Measure: 400, Seeds: 1}
	off, err := RunSteady(cfg, Hotspot(0.3, 8), 0.7, opt)
	if err != nil {
		t.Fatal(err)
	}
	if off.Marked != 0 || off.Notified != 0 || off.Throttled != 0 || off.Shed != 0 {
		t.Fatalf("congestion-off counters nonzero: %+v", off)
	}
	cfg.Congestion = Congestion{Enabled: true}
	on, err := RunSteady(cfg, Hotspot(0.3, 8), 0.7, opt)
	if err != nil {
		t.Fatal(err)
	}
	if on.Marked == 0 || on.Notified == 0 || on.Throttled == 0 {
		t.Fatalf("congestion-on counters empty: marked=%d notified=%d throttled=%d",
			on.Marked, on.Notified, on.Throttled)
	}
}
